//! Connection trees: joining a *set* of relations through join
//! constraints.
//!
//! Def. 3 of the paper requires a candidate replacement `Max(V_{j,R})` to
//! contain (III) all relations of `Min(H_R)` that survive dropping `R`,
//! and (IV) one cover relation per replaceable attribute of `R` — all
//! woven into a single join expression built from join constraints of
//! `H'_R(MKB')`. Finding the smallest such expression is a Steiner-tree
//! problem; we use the classic greedy approximation (repeatedly attach the
//! nearest unconnected terminal by a shortest path), which is
//! deterministic and within 2× of optimal — more than adequate, since any
//! connected superset is a *valid* candidate under Def. 3 and smaller
//! candidates are simply better.
//!
//! Enumeration is *lazy*: [`ConnectionTreeIter`] streams alternative
//! trees one at a time, in nondecreasing edge count, so callers that
//! only need the first few candidates (top-k search, budgeted search)
//! never pay for the combinatorial tail. For exactly two terminals it
//! runs a best-first expansion over simple join-constraint paths (a
//! diamond-shaped MKB yields one candidate per route, not just the
//! shortest); for other terminal counts it yields the greedy Steiner
//! tree followed by its single-swap parallel-constraint variants
//! (distinct `JC`s between the same relation pair give semantically
//! different joins), so CVS can propose more than one rewriting per
//! cover combination. The collect-all [`ConnectionTree::enumerate`] /
//! [`ConnectionTree::enumerate_with_limit`] entry points are thin
//! wrappers over the iterator.

use crate::graph::Hypergraph;
use eve_misd::JoinConstraint;
use eve_relational::RelName;
use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap};

/// Length cap (in edges) for the exhaustive two-terminal path search.
/// Paths longer than this are only reachable through the shortest-path
/// fallback, which keeps the best-first frontier from exploding on
/// dense graphs.
const PATH_CAP: usize = 8;

/// A tree of join constraints spanning a set of relations.
#[derive(Debug, Clone, PartialEq)]
pub struct ConnectionTree {
    /// The relations joined by the tree (terminals plus any Steiner
    /// relations picked up along connecting paths).
    pub relations: BTreeSet<RelName>,
    /// The join constraints forming the tree, in attachment order.
    pub joins: Vec<JoinConstraint>,
}

impl ConnectionTree {
    /// A tree containing a single relation and no joins.
    pub fn singleton(rel: RelName) -> Self {
        ConnectionTree {
            relations: [rel].into_iter().collect(),
            joins: Vec::new(),
        }
    }

    /// Greedily build a connection tree covering all `terminals` inside
    /// `graph`. Returns `None` when the terminals are not all in one
    /// component (Def. 3: "if relations left in `Min(H'_R)` are in
    /// disconnected components then the set R-replacement is empty") or
    /// when `terminals` is empty.
    pub fn connect(graph: &Hypergraph, terminals: &BTreeSet<RelName>) -> Option<ConnectionTree> {
        Self::connect_with_limit(graph, terminals, usize::MAX)
    }

    /// Like [`ConnectionTree::connect`], but each terminal must be
    /// attachable to the growing tree by a path of at most
    /// `max_path_edges` join constraints. With `max_path_edges = 1` this
    /// reproduces the *one-step-away* rewritings of the authors' earlier
    /// simple view synchronization (the SVS baseline of [4, 12]).
    pub fn connect_with_limit(
        graph: &Hypergraph,
        terminals: &BTreeSet<RelName>,
        max_path_edges: usize,
    ) -> Option<ConnectionTree> {
        let mut iter = terminals.iter();
        let first = iter.next()?;
        if !graph.contains(first) {
            return None;
        }
        let mut tree = ConnectionTree::singleton(first.clone());
        // Attach each remaining terminal by the shortest path from the
        // current tree. (Iterating in name order keeps this deterministic;
        // the greedy nearest-terminal refinement would need all-pairs
        // distances for marginal benefit.)
        for t in iter {
            if tree.relations.contains(t) {
                continue;
            }
            let path = shortest_path_from_set(graph, &tree.relations, t)?;
            if path.len() > max_path_edges {
                return None;
            }
            for jc in path {
                tree.relations.insert(jc.left.clone());
                tree.relations.insert(jc.right.clone());
                tree.joins.push(jc.clone());
            }
        }
        Some(tree)
    }

    /// Collect up to `limit` alternative connection trees for the same
    /// terminal set. Thin wrapper over [`ConnectionTreeIter`]; the base
    /// (fewest-edge) tree is always first.
    pub fn enumerate(
        graph: &Hypergraph,
        terminals: &BTreeSet<RelName>,
        limit: usize,
    ) -> Vec<ConnectionTree> {
        Self::enumerate_with_limit(graph, terminals, limit, usize::MAX)
    }

    /// [`ConnectionTree::enumerate`] with the hop bound of
    /// [`ConnectionTree::connect_with_limit`]. Thin wrapper:
    /// `ConnectionTreeIter::new(..).take(limit).collect()`.
    pub fn enumerate_with_limit(
        graph: &Hypergraph,
        terminals: &BTreeSet<RelName>,
        limit: usize,
        max_path_edges: usize,
    ) -> Vec<ConnectionTree> {
        ConnectionTreeIter::new(graph, terminals, max_path_edges)
            .take(limit)
            .collect()
    }

    /// Is `rel` part of the tree?
    pub fn contains(&self, rel: &RelName) -> bool {
        self.relations.contains(rel)
    }
}

/// A partial simple path in the two-terminal best-first search, keyed by
/// the ordering of the legacy sort: `(length, join-id sequence)`.
/// Derived `Ord` compares fields top to bottom, so a min-heap of these
/// pops shortest-first, ties broken by the lexicographically smallest id
/// sequence; the trailing fields only disambiguate key-equal partials
/// and never change the yield order.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct PartialPath {
    len: usize,
    ids: Vec<String>,
    edges: Vec<usize>,
    cur: RelName,
    visited: BTreeSet<RelName>,
}

enum IterState {
    /// Best-first expansion over vertex-simple paths between exactly two
    /// terminals. Every extension strictly grows the `(len, ids)` key,
    /// so completed paths pop from the heap in nondecreasing key order —
    /// exactly the order the legacy collect-then-sort produced.
    Paths {
        start: RelName,
        goal: RelName,
        max_path_edges: usize,
        heap: BinaryHeap<Reverse<PartialPath>>,
        yielded_any: bool,
    },
    /// Greedy Steiner tree plus single-swap parallel-constraint
    /// variants, emitted in slot-then-alternative order.
    Greedy {
        base: ConnectionTree,
        alternatives: Vec<Vec<JoinConstraint>>,
        slot: usize,
        alt: usize,
        base_emitted: bool,
    },
    Done,
}

/// Lazy enumeration of connection trees spanning a terminal set, in
/// nondecreasing edge count.
///
/// This is the single budgeted core behind
/// [`ConnectionTree::enumerate`] / [`ConnectionTree::enumerate_with_limit`]:
/// pulling `n` trees does only the work needed for `n` trees, so a
/// top-k or budget-bounded caller can abandon the stream early. The
/// yield sequence is a pure, deterministic function of
/// `(graph, terminals, max_path_edges)` — the contract that lets
/// `MkbIndex` memoize prefixes of it.
pub struct ConnectionTreeIter<'g> {
    graph: &'g Hypergraph,
    state: IterState,
    /// Trees yielded so far; flushed to the `hypergraph.trees_yielded`
    /// telemetry counter when the iterator is dropped.
    yielded: u64,
}

impl<'g> ConnectionTreeIter<'g> {
    /// Start streaming trees for `terminals`, each connecting path
    /// bounded by `max_path_edges` join constraints.
    pub fn new(
        graph: &'g Hypergraph,
        terminals: &BTreeSet<RelName>,
        max_path_edges: usize,
    ) -> Self {
        let state = if terminals.len() == 2 {
            let mut it = terminals.iter();
            let (a, b) = (it.next().expect("two"), it.next().expect("two"));
            let mut heap = BinaryHeap::new();
            if graph.contains(a) && graph.contains(b) {
                heap.push(Reverse(PartialPath {
                    len: 0,
                    ids: Vec::new(),
                    edges: Vec::new(),
                    cur: a.clone(),
                    visited: [a.clone()].into_iter().collect(),
                }));
            }
            IterState::Paths {
                start: a.clone(),
                goal: b.clone(),
                max_path_edges,
                heap,
                yielded_any: false,
            }
        } else {
            greedy_state(graph, terminals, max_path_edges)
        };
        ConnectionTreeIter {
            graph,
            state,
            yielded: 0,
        }
    }
}

impl Drop for ConnectionTreeIter<'_> {
    fn drop(&mut self) {
        if crate::telem::enabled() {
            crate::telem::counter_add("hypergraph.tree_iters", 1);
            crate::telem::counter_add("hypergraph.trees_yielded", self.yielded);
        }
    }
}

fn greedy_state(
    graph: &Hypergraph,
    terminals: &BTreeSet<RelName>,
    max_path_edges: usize,
) -> IterState {
    match ConnectionTree::connect_with_limit(graph, terminals, max_path_edges) {
        Some(base) => {
            // For each edge slot, the parallel alternatives (other JCs
            // connecting the same relation pair).
            let alternatives: Vec<Vec<JoinConstraint>> = base
                .joins
                .iter()
                .map(|jc| {
                    graph
                        .joins_between(&jc.left, &jc.right)
                        .filter(|other| other.id != jc.id)
                        .cloned()
                        .collect()
                })
                .collect();
            IterState::Greedy {
                base,
                alternatives,
                slot: 0,
                alt: 0,
                base_emitted: false,
            }
        }
        None => IterState::Done,
    }
}

/// Build the tree for a completed path of edge indices rooted at `start`.
fn tree_from_edges(graph: &Hypergraph, start: &RelName, edges: &[usize]) -> ConnectionTree {
    let mut tree = ConnectionTree::singleton(start.clone());
    for &e in edges {
        let jc = &graph.joins()[e];
        tree.relations.insert(jc.left.clone());
        tree.relations.insert(jc.right.clone());
        tree.joins.push(jc.clone());
    }
    tree
}

impl Iterator for ConnectionTreeIter<'_> {
    type Item = ConnectionTree;

    fn next(&mut self) -> Option<ConnectionTree> {
        let tree = self.advance();
        if tree.is_some() {
            self.yielded += 1;
        }
        tree
    }
}

impl ConnectionTreeIter<'_> {
    fn advance(&mut self) -> Option<ConnectionTree> {
        loop {
            match &mut self.state {
                IterState::Paths {
                    start,
                    goal,
                    max_path_edges,
                    heap,
                    yielded_any,
                } => {
                    let cap = (*max_path_edges).min(PATH_CAP);
                    while let Some(Reverse(p)) = heap.pop() {
                        if p.cur == *goal {
                            // Simple paths stop at the goal; no extension.
                            *yielded_any = true;
                            return Some(tree_from_edges(self.graph, start, &p.edges));
                        }
                        if p.len >= cap {
                            continue;
                        }
                        for (next, edge) in self.graph.adjacency(&p.cur) {
                            if p.visited.contains(next) {
                                continue;
                            }
                            let mut ext = p.clone();
                            ext.len += 1;
                            ext.ids.push(self.graph.joins()[*edge].id.clone());
                            ext.edges.push(*edge);
                            ext.visited.insert(next.clone());
                            ext.cur = next.clone();
                            heap.push(Reverse(ext));
                        }
                    }
                    // Frontier exhausted. If nothing fit the exhaustive
                    // cap, the shortest path may still be legal when it
                    // is longer than PATH_CAP but within the hop bound.
                    if !*yielded_any {
                        if let Some(shortest) = self.graph.join_path(start, goal) {
                            if shortest.len() <= *max_path_edges {
                                let mut tree = ConnectionTree::singleton(start.clone());
                                for jc in shortest {
                                    tree.relations.insert(jc.left.clone());
                                    tree.relations.insert(jc.right.clone());
                                    tree.joins.push(jc.clone());
                                }
                                self.state = IterState::Done;
                                return Some(tree);
                            }
                        }
                        // Mirror the legacy fall-through to the greedy
                        // construction (relevant only for degenerate
                        // graphs; usually yields nothing new).
                        let terminals: BTreeSet<RelName> =
                            [start.clone(), goal.clone()].into_iter().collect();
                        let hop = *max_path_edges;
                        self.state = greedy_state(self.graph, &terminals, hop);
                        continue;
                    }
                    self.state = IterState::Done;
                }
                IterState::Greedy {
                    base,
                    alternatives,
                    slot,
                    alt,
                    base_emitted,
                } => {
                    if !*base_emitted {
                        *base_emitted = true;
                        return Some(base.clone());
                    }
                    // Single-swap variants (cartesian products explode;
                    // one swap at a time already surfaces every
                    // alternative constraint).
                    while *slot < alternatives.len() {
                        if let Some(a) = alternatives[*slot].get(*alt) {
                            *alt += 1;
                            let mut variant = base.clone();
                            variant.joins[*slot] = a.clone();
                            return Some(variant);
                        }
                        *slot += 1;
                        *alt = 0;
                    }
                    self.state = IterState::Done;
                }
                IterState::Done => return None,
            }
        }
    }
}

/// Cache-friendly enumeration entry points.
///
/// All three are pure, deterministic functions of
/// `(self, terminals, limit, max_path_edges)` — same inputs, same output,
/// every time — which is the contract that lets `MkbIndex` memoize their
/// results per change under a `(terminal set, hop bound)` key (serving
/// any requested prefix length) without risking any behavioural
/// difference between a cache hit and a recomputation.
impl Hypergraph {
    /// Stream connection trees spanning `terminals` in nondecreasing
    /// edge count, each hop bounded by `max_path_edges`. Method form of
    /// [`ConnectionTreeIter::new`].
    pub fn tree_iter<'g>(
        &'g self,
        terminals: &BTreeSet<RelName>,
        max_path_edges: usize,
    ) -> ConnectionTreeIter<'g> {
        crate::faults::hit("hypergraph.tree-iter");
        ConnectionTreeIter::new(self, terminals, max_path_edges)
    }

    /// Enumerate up to `limit` connection trees spanning `terminals`,
    /// each hop bounded by `max_path_edges`. Method form of
    /// [`ConnectionTree::enumerate_with_limit`].
    pub fn enumerate_trees(
        &self,
        terminals: &BTreeSet<RelName>,
        limit: usize,
        max_path_edges: usize,
    ) -> Vec<ConnectionTree> {
        ConnectionTree::enumerate_with_limit(self, terminals, limit, max_path_edges)
    }

    /// The single greedy connection tree spanning `terminals` (hop bound
    /// `max_path_edges`), or `None` when they cannot be connected. Method
    /// form of [`ConnectionTree::connect_with_limit`].
    pub fn connect_tree(
        &self,
        terminals: &BTreeSet<RelName>,
        max_path_edges: usize,
    ) -> Option<ConnectionTree> {
        ConnectionTree::connect_with_limit(self, terminals, max_path_edges)
    }
}

/// Shortest path (in edges) from any relation in `sources` to `target`.
fn shortest_path_from_set<'a>(
    graph: &'a Hypergraph,
    sources: &BTreeSet<RelName>,
    target: &RelName,
) -> Option<Vec<&'a JoinConstraint>> {
    // BFS from the whole source set at once.
    use std::collections::{BTreeMap, VecDeque};
    if !graph.contains(target) {
        return None;
    }
    let mut prev: BTreeMap<RelName, (RelName, usize)> = BTreeMap::new();
    let mut seen: BTreeSet<RelName> = sources.clone();
    let mut queue: VecDeque<RelName> = sources.iter().cloned().collect();
    while let Some(r) = queue.pop_front() {
        for (i, jc) in graph.joins().iter().enumerate() {
            let next = match jc.other(&r) {
                Some(n) => n,
                None => continue,
            };
            if seen.insert(next.clone()) {
                prev.insert(next.clone(), (r.clone(), i));
                if next == target {
                    let mut path = Vec::new();
                    let mut cur = target.clone();
                    while let Some((p, e)) = prev.get(&cur) {
                        path.push(&graph.joins()[*e]);
                        cur = p.clone();
                    }
                    path.reverse();
                    return Some(path);
                }
                queue.push_back(next.clone());
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use eve_relational::{AttrRef, Clause, Conjunction};

    fn rel(n: &str) -> RelName {
        RelName::new(n)
    }

    fn jc(id: &str, l: &str, r: &str) -> JoinConstraint {
        JoinConstraint::new(
            id,
            l,
            r,
            Conjunction::new(vec![Clause::eq_attrs(
                AttrRef::new(l, "k"),
                AttrRef::new(r, "k"),
            )]),
        )
    }

    /// Star: HUB connected to A, B, C; D isolated; parallel edge HUB—A.
    fn star() -> Hypergraph {
        let rels: BTreeSet<RelName> = ["HUB", "A", "B", "C", "D"].iter().map(|s| rel(s)).collect();
        Hypergraph::from_parts(
            rels,
            vec![
                jc("J1", "HUB", "A"),
                jc("J1b", "HUB", "A"),
                jc("J2", "HUB", "B"),
                jc("J3", "HUB", "C"),
            ],
        )
    }

    #[test]
    fn connect_terminals_through_hub() {
        let g = star();
        let t = ConnectionTree::connect(&g, &[rel("A"), rel("B"), rel("C")].into_iter().collect())
            .unwrap();
        assert!(t.contains(&rel("HUB"))); // Steiner vertex picked up
        assert_eq!(t.relations.len(), 4);
        assert_eq!(t.joins.len(), 3);
    }

    #[test]
    fn connect_single_terminal_is_trivial() {
        let g = star();
        let t = ConnectionTree::connect(&g, &[rel("B")].into_iter().collect()).unwrap();
        assert_eq!(t.relations.len(), 1);
        assert!(t.joins.is_empty());
    }

    #[test]
    fn disconnected_terminals_yield_none() {
        let g = star();
        assert!(ConnectionTree::connect(&g, &[rel("A"), rel("D")].into_iter().collect()).is_none());
        assert!(ConnectionTree::connect(&g, &BTreeSet::new()).is_none());
    }

    #[test]
    fn enumerate_surfaces_parallel_constraints() {
        let g = star();
        let trees = ConnectionTree::enumerate(&g, &[rel("A"), rel("B")].into_iter().collect(), 10);
        assert_eq!(trees.len(), 2); // J1 vs J1b for the HUB—A hop
        let ids: BTreeSet<String> = trees
            .iter()
            .flat_map(|t| t.joins.iter().map(|j| j.id.clone()))
            .collect();
        assert!(ids.contains("J1") && ids.contains("J1b"));
    }

    #[test]
    fn enumerate_respects_limit() {
        let g = star();
        let trees = ConnectionTree::enumerate(&g, &[rel("A"), rel("B")].into_iter().collect(), 1);
        assert_eq!(trees.len(), 1);
    }

    #[test]
    fn diamond_enumerates_both_routes() {
        // A—X—B and A—Y—B: two distinct two-hop routes.
        let rels: BTreeSet<RelName> = ["A", "X", "Y", "B"].iter().map(|s| rel(s)).collect();
        let g = Hypergraph::from_parts(
            rels,
            vec![
                jc("J1", "A", "X"),
                jc("J2", "X", "B"),
                jc("J3", "A", "Y"),
                jc("J4", "Y", "B"),
            ],
        );
        let trees = ConnectionTree::enumerate(&g, &[rel("A"), rel("B")].into_iter().collect(), 10);
        assert_eq!(trees.len(), 2, "{trees:?}");
        let routes: BTreeSet<BTreeSet<RelName>> =
            trees.iter().map(|t| t.relations.clone()).collect();
        assert!(routes.contains(&["A", "X", "B"].iter().map(|s| rel(s)).collect()));
        assert!(routes.contains(&["A", "Y", "B"].iter().map(|s| rel(s)).collect()));
        // Hop bound 1 prunes both.
        assert!(ConnectionTree::enumerate_with_limit(
            &g,
            &[rel("A"), rel("B")].into_iter().collect(),
            10,
            1
        )
        .is_empty());
    }

    #[test]
    fn long_chain_beyond_path_cap_falls_back_to_shortest() {
        // 10-hop chain: beyond the exhaustive PATH_CAP, but the
        // shortest-path fallback must still connect the endpoints.
        let names: Vec<String> = (0..11).map(|i| format!("N{i}")).collect();
        let rels: BTreeSet<RelName> = names.iter().map(|n| RelName::new(n.clone())).collect();
        let joins = names
            .windows(2)
            .enumerate()
            .map(|(i, w)| jc(&format!("J{i}"), &w[0], &w[1]))
            .collect();
        let g = Hypergraph::from_parts(rels, joins);
        let trees =
            ConnectionTree::enumerate(&g, &[rel("N0"), rel("N10")].into_iter().collect(), 4);
        assert_eq!(trees.len(), 1);
        assert_eq!(trees[0].joins.len(), 10);
    }

    #[test]
    fn method_entry_points_match_free_functions() {
        let g = star();
        let t: BTreeSet<RelName> = [rel("A"), rel("B")].into_iter().collect();
        assert_eq!(
            g.enumerate_trees(&t, 10, usize::MAX),
            ConnectionTree::enumerate(&g, &t, 10)
        );
        assert_eq!(
            g.connect_tree(&t, usize::MAX),
            ConnectionTree::connect(&g, &t)
        );
        assert_eq!(
            g.tree_iter(&t, usize::MAX).collect::<Vec<_>>(),
            ConnectionTree::enumerate(&g, &t, usize::MAX)
        );
    }

    #[test]
    fn chain_connection() {
        // A—B—C—D chain; connect {A, D} should pull in B and C.
        let rels: BTreeSet<RelName> = ["A", "B", "C", "D"].iter().map(|s| rel(s)).collect();
        let g = Hypergraph::from_parts(
            rels,
            vec![jc("J1", "A", "B"), jc("J2", "B", "C"), jc("J3", "C", "D")],
        );
        let t = ConnectionTree::connect(&g, &[rel("A"), rel("D")].into_iter().collect()).unwrap();
        assert_eq!(t.joins.len(), 3);
        assert_eq!(t.relations.len(), 4);
    }

    /// The streaming contract: trees come out in nondecreasing edge
    /// count, and every `take(k)` prefix equals the collect-all result
    /// truncated to `k` — the property the prefix-serving memo cache
    /// relies on.
    #[test]
    fn iter_yields_sorted_prefixes() {
        // A—B directly (1 hop), A—X—B (2 hops), A—Y—Z—B (3 hops).
        let rels: BTreeSet<RelName> = ["A", "B", "X", "Y", "Z"].iter().map(|s| rel(s)).collect();
        let g = Hypergraph::from_parts(
            rels,
            vec![
                jc("J5", "A", "B"),
                jc("J1", "A", "X"),
                jc("J2", "X", "B"),
                jc("J3", "A", "Y"),
                jc("J4", "Y", "Z"),
                jc("J6", "Z", "B"),
            ],
        );
        let t: BTreeSet<RelName> = [rel("A"), rel("B")].into_iter().collect();
        let all: Vec<ConnectionTree> = g.tree_iter(&t, usize::MAX).collect();
        assert_eq!(all.len(), 3);
        let lens: Vec<usize> = all.iter().map(|tr| tr.joins.len()).collect();
        assert_eq!(lens, vec![1, 2, 3]);
        for k in 0..=all.len() {
            let prefix: Vec<ConnectionTree> = g.tree_iter(&t, usize::MAX).take(k).collect();
            assert_eq!(prefix, all[..k].to_vec(), "prefix k={k}");
        }
    }

    /// Pulling one tree from a graph with many routes must not force
    /// enumeration of longer routes: the first yield of the best-first
    /// search is always a shortest route.
    #[test]
    fn iter_first_yield_is_shortest_route() {
        let rels: BTreeSet<RelName> = ["A", "B", "X", "Y"].iter().map(|s| rel(s)).collect();
        let g = Hypergraph::from_parts(
            rels,
            vec![
                jc("J1", "A", "X"),
                jc("J2", "X", "B"),
                jc("J3", "A", "Y"),
                jc("J4", "Y", "B"),
                jc("J0", "A", "B"),
            ],
        );
        let t: BTreeSet<RelName> = [rel("A"), rel("B")].into_iter().collect();
        let first = g.tree_iter(&t, usize::MAX).next().unwrap();
        assert_eq!(first.joins.len(), 1);
        assert_eq!(first.joins[0].id, "J0");
    }
}
