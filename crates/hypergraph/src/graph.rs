//! The hypergraph structure and its connectivity operations.

use eve_misd::{JoinConstraint, MetaKnowledgeBase};
use eve_relational::RelName;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// The hypergraph `H(MKB)` (or a sub-hypergraph of it), materialised as a
/// relation-level multigraph: vertices are relations, edges are join
/// constraints.
///
/// The structure owns its data (names and constraints are cloned from the
/// MKB), so sub-hypergraphs and evolved variants can be derived freely
/// without borrowing the MKB.
#[derive(Debug, Clone, PartialEq)]
pub struct Hypergraph {
    /// All relation vertices (including isolated ones).
    relations: BTreeSet<RelName>,
    /// Join-constraint edges.
    joins: Vec<JoinConstraint>,
    /// Adjacency: relation → (neighbour, edge index into `joins`).
    adj: BTreeMap<RelName, Vec<(RelName, usize)>>,
}

impl Hypergraph {
    /// Build `H(MKB)` from a meta knowledge base.
    pub fn build(mkb: &MetaKnowledgeBase) -> Self {
        let relations: BTreeSet<RelName> = mkb.relation_names().cloned().collect();
        let joins: Vec<JoinConstraint> = mkb.joins().to_vec();
        Self::from_parts(relations, joins)
    }

    /// Build `H(MKB)` restricted to the relations accepted by `keep` —
    /// e.g. the capability-filtered `H'(MKB')` over join-capable
    /// relations, constructed in one pass instead of repeated
    /// [`Hypergraph::without_relation`] calls. Join constraints with a
    /// filtered-out endpoint are dropped.
    pub fn build_filtered(
        mkb: &MetaKnowledgeBase,
        keep: impl Fn(&eve_misd::RelationDescription) -> bool,
    ) -> Self {
        let relations: BTreeSet<RelName> = mkb
            .relations()
            .filter(|desc| keep(desc))
            .map(|desc| desc.name.clone())
            .collect();
        Self::from_parts(relations, mkb.joins().to_vec())
    }

    /// Build from explicit parts (used for sub-hypergraphs and tests).
    /// Join constraints whose endpoints are not both present are dropped.
    pub fn from_parts(relations: BTreeSet<RelName>, joins: Vec<JoinConstraint>) -> Self {
        let joins: Vec<JoinConstraint> = joins
            .into_iter()
            .filter(|j| relations.contains(&j.left) && relations.contains(&j.right))
            .collect();
        let mut adj: BTreeMap<RelName, Vec<(RelName, usize)>> = BTreeMap::new();
        for r in &relations {
            adj.entry(r.clone()).or_default();
        }
        for (i, j) in joins.iter().enumerate() {
            adj.entry(j.left.clone())
                .or_default()
                .push((j.right.clone(), i));
            adj.entry(j.right.clone())
                .or_default()
                .push((j.left.clone(), i));
        }
        Hypergraph {
            relations,
            joins,
            adj,
        }
    }

    /// The relation vertices.
    pub fn relations(&self) -> &BTreeSet<RelName> {
        &self.relations
    }

    /// The join-constraint edges.
    pub fn joins(&self) -> &[JoinConstraint] {
        &self.joins
    }

    /// Does the hypergraph contain this relation?
    pub fn contains(&self, rel: &RelName) -> bool {
        self.relations.contains(rel)
    }

    /// Join constraints incident to `rel`.
    pub fn joins_of<'a>(&'a self, rel: &'a RelName) -> impl Iterator<Item = &'a JoinConstraint> {
        self.adj
            .get(rel)
            .into_iter()
            .flatten()
            .map(move |(_, i)| &self.joins[*i])
    }

    /// Adjacency of `rel`: `(neighbour, index into [`Hypergraph::joins`])`
    /// pairs in join-declaration order. Empty when `rel` is unknown.
    pub(crate) fn adjacency(&self, rel: &RelName) -> &[(RelName, usize)] {
        self.adj.get(rel).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// All join constraints between the unordered pair `{r1, r2}`.
    pub fn joins_between<'a>(
        &'a self,
        r1: &'a RelName,
        r2: &'a RelName,
    ) -> impl Iterator<Item = &'a JoinConstraint> {
        self.joins.iter().filter(move |j| j.connects(r1, r2))
    }

    /// The set of relations reachable from `start` (its connected
    /// component's vertex set `S_R(MKB)`), or `None` when `start` is not a
    /// vertex.
    pub fn component_relations(&self, start: &RelName) -> Option<BTreeSet<RelName>> {
        if !self.relations.contains(start) {
            return None;
        }
        let mut seen = BTreeSet::new();
        let mut queue = VecDeque::new();
        seen.insert(start.clone());
        queue.push_back(start.clone());
        while let Some(r) = queue.pop_front() {
            for (next, _) in self.adj.get(&r).into_iter().flatten() {
                if seen.insert(next.clone()) {
                    queue.push_back(next.clone());
                }
            }
        }
        Some(seen)
    }

    /// The connected sub-hypergraph `H_R(MKB)` containing `start`
    /// (Step 1 of the CVS algorithm), or `None` when `start` is absent.
    pub fn component_of(&self, start: &RelName) -> Option<Hypergraph> {
        let rels = self.component_relations(start)?;
        let joins = self
            .joins
            .iter()
            .filter(|j| rels.contains(&j.left))
            .cloned()
            .collect();
        Some(Hypergraph::from_parts(rels, joins))
    }

    /// All maximal connected components, each as a sub-hypergraph, ordered
    /// by their smallest relation name.
    pub fn components(&self) -> Vec<Hypergraph> {
        let mut remaining: BTreeSet<RelName> = self.relations.clone();
        let mut out = Vec::new();
        while let Some(seed) = remaining.iter().next().cloned() {
            let comp = self
                .component_of(&seed)
                .expect("seed taken from vertex set");
            for r in comp.relations() {
                remaining.remove(r);
            }
            out.push(comp);
        }
        out
    }

    /// Is the given set of relations mutually connected *within this
    /// hypergraph* (all in one component)? The empty set and singletons
    /// are trivially connected.
    pub fn is_connected_set(&self, rels: &BTreeSet<RelName>) -> bool {
        let mut iter = rels.iter();
        let first = match iter.next() {
            Some(f) => f,
            None => return true,
        };
        match self.component_relations(first) {
            Some(comp) => rels.iter().all(|r| comp.contains(r)),
            None => false,
        }
    }

    /// The hypergraph `H'` obtained by erasing the relation hyperedge
    /// `rel` (and with it every incident join constraint) — Def. 3's
    /// `H'_R(MKB')`. Erasing a vertex may disconnect the graph.
    pub fn without_relation(&self, rel: &RelName) -> Hypergraph {
        let mut relations = self.relations.clone();
        relations.remove(rel);
        let joins = self
            .joins
            .iter()
            .filter(|j| !j.touches(rel))
            .cloned()
            .collect();
        Hypergraph::from_parts(relations, joins)
    }

    /// Breadth-first shortest join path from `from` to `to`: the sequence
    /// of join constraints realising
    /// `from ⋈_{JC_1} R_1 ⋈ … ⋈_{JC_n} to`. Returns `None` when
    /// unreachable; the empty path when `from == to`.
    pub fn join_path(&self, from: &RelName, to: &RelName) -> Option<Vec<&JoinConstraint>> {
        if !self.relations.contains(from) || !self.relations.contains(to) {
            return None;
        }
        if from == to {
            return Some(Vec::new());
        }
        let mut prev: BTreeMap<RelName, (RelName, usize)> = BTreeMap::new();
        let mut queue = VecDeque::new();
        let mut seen = BTreeSet::new();
        seen.insert(from.clone());
        queue.push_back(from.clone());
        while let Some(r) = queue.pop_front() {
            for (next, edge) in self.adj.get(&r).into_iter().flatten() {
                if seen.insert(next.clone()) {
                    prev.insert(next.clone(), (r.clone(), *edge));
                    if next == to {
                        // reconstruct
                        let mut path = Vec::new();
                        let mut cur = to.clone();
                        while let Some((p, e)) = prev.get(&cur) {
                            path.push(&self.joins[*e]);
                            cur = p.clone();
                        }
                        path.reverse();
                        return Some(path);
                    }
                    queue.push_back(next.clone());
                }
            }
        }
        None
    }

    /// Enumerate all simple paths (as join-constraint sequences) from
    /// `from` to `to` with at most `max_edges` edges, in deterministic
    /// order. Parallel join constraints yield distinct paths.
    ///
    /// Unbounded in the number of paths — prefer
    /// [`Hypergraph::simple_paths_bounded`] on large graphs, where the
    /// number of simple paths grows combinatorially.
    pub fn all_simple_paths(
        &self,
        from: &RelName,
        to: &RelName,
        max_edges: usize,
    ) -> Vec<Vec<&JoinConstraint>> {
        self.simple_paths_bounded(from, to, max_edges, usize::MAX)
    }

    /// Like [`Hypergraph::all_simple_paths`], but stops after collecting
    /// `max_paths` paths (depth-first order). The DFS visits neighbours
    /// in adjacency order, so the result is deterministic; it is *not*
    /// guaranteed to contain the shortest path when truncated — callers
    /// that need it should union with [`Hypergraph::join_path`].
    pub fn simple_paths_bounded(
        &self,
        from: &RelName,
        to: &RelName,
        max_edges: usize,
        max_paths: usize,
    ) -> Vec<Vec<&JoinConstraint>> {
        let mut out = Vec::new();
        if !self.relations.contains(from) || !self.relations.contains(to) || max_paths == 0 {
            return out;
        }
        let mut visited: BTreeSet<RelName> = BTreeSet::new();
        visited.insert(from.clone());
        let mut path: Vec<usize> = Vec::new();
        self.dfs_paths(
            from,
            to,
            max_edges,
            max_paths,
            &mut visited,
            &mut path,
            &mut out,
        );
        out
    }

    #[allow(clippy::too_many_arguments)]
    fn dfs_paths<'a>(
        &'a self,
        cur: &RelName,
        to: &RelName,
        budget: usize,
        max_paths: usize,
        visited: &mut BTreeSet<RelName>,
        path: &mut Vec<usize>,
        out: &mut Vec<Vec<&'a JoinConstraint>>,
    ) {
        if out.len() >= max_paths {
            return;
        }
        if cur == to {
            out.push(path.iter().map(|i| &self.joins[*i]).collect());
            return;
        }
        if budget == 0 {
            return;
        }
        for (next, edge) in self.adj.get(cur).into_iter().flatten() {
            if out.len() >= max_paths {
                return;
            }
            if visited.contains(next) {
                continue;
            }
            visited.insert(next.clone());
            path.push(*edge);
            self.dfs_paths(next, to, budget - 1, max_paths, visited, path, out);
            path.pop();
            visited.remove(next);
        }
    }

    /// Degree of a relation (number of incident join constraints).
    pub fn degree(&self, rel: &RelName) -> usize {
        self.adj.get(rel).map(|v| v.len()).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eve_relational::{AttrRef, Clause, Conjunction};

    fn rel(n: &str) -> RelName {
        RelName::new(n)
    }

    fn jc(id: &str, l: &str, r: &str) -> JoinConstraint {
        JoinConstraint::new(
            id,
            l,
            r,
            Conjunction::new(vec![Clause::eq_attrs(
                AttrRef::new(l, "k"),
                AttrRef::new(r, "k"),
            )]),
        )
    }

    /// Two components: A—B—C (and a parallel A—B edge) plus D—E; F isolated.
    fn sample() -> Hypergraph {
        let rels: BTreeSet<RelName> = ["A", "B", "C", "D", "E", "F"]
            .iter()
            .map(|s| rel(s))
            .collect();
        let joins = vec![
            jc("J1", "A", "B"),
            jc("J1b", "A", "B"),
            jc("J2", "B", "C"),
            jc("J3", "D", "E"),
        ];
        Hypergraph::from_parts(rels, joins)
    }

    #[test]
    fn components_counted() {
        let h = sample();
        let comps = h.components();
        assert_eq!(comps.len(), 3); // {A,B,C}, {D,E}, {F}
        let sizes: Vec<usize> = comps.iter().map(|c| c.relations().len()).collect();
        assert_eq!(sizes, vec![3, 2, 1]);
    }

    #[test]
    fn component_of_and_connected_set() {
        let h = sample();
        let comp = h.component_relations(&rel("A")).unwrap();
        assert!(comp.contains(&rel("C")));
        assert!(!comp.contains(&rel("D")));
        assert!(h.is_connected_set(&[rel("A"), rel("C")].into_iter().collect()));
        assert!(!h.is_connected_set(&[rel("A"), rel("D")].into_iter().collect()));
        assert!(h.is_connected_set(&BTreeSet::new()));
        assert!(h.component_relations(&rel("Z")).is_none());
    }

    #[test]
    fn without_relation_disconnects() {
        let h = sample();
        let h2 = h.without_relation(&rel("B"));
        assert!(!h2.contains(&rel("B")));
        // A and C are now separated.
        assert!(!h2.is_connected_set(&[rel("A"), rel("C")].into_iter().collect()));
        // No dangling join constraints.
        assert!(h2.joins().iter().all(|j| !j.touches(&rel("B"))));
    }

    #[test]
    fn join_path_shortest() {
        let h = sample();
        let p = h.join_path(&rel("A"), &rel("C")).unwrap();
        assert_eq!(p.len(), 2);
        assert_eq!(p[1].id, "J2");
        assert!(h.join_path(&rel("A"), &rel("D")).is_none());
        assert_eq!(h.join_path(&rel("A"), &rel("A")).unwrap().len(), 0);
    }

    #[test]
    fn all_simple_paths_includes_parallel_edges() {
        let h = sample();
        let ps = h.all_simple_paths(&rel("A"), &rel("C"), 4);
        // two parallel A—B edges → two paths A-B-C
        assert_eq!(ps.len(), 2);
        let ids: BTreeSet<&str> = ps.iter().map(|p| p[0].id.as_str()).collect();
        assert_eq!(ids, ["J1", "J1b"].into_iter().collect());
        // Budget too small → no paths.
        assert!(h.all_simple_paths(&rel("A"), &rel("C"), 1).is_empty());
    }

    #[test]
    fn degree_and_joins_between() {
        let h = sample();
        assert_eq!(h.degree(&rel("A")), 2);
        assert_eq!(h.degree(&rel("F")), 0);
        assert_eq!(h.joins_between(&rel("A"), &rel("B")).count(), 2);
        assert_eq!(h.joins_of(&rel("B")).count(), 3);
    }

    #[test]
    fn from_parts_drops_dangling_joins() {
        let rels: BTreeSet<RelName> = [rel("A")].into_iter().collect();
        let h = Hypergraph::from_parts(rels, vec![jc("J1", "A", "B")]);
        assert!(h.joins().is_empty());
    }
}
