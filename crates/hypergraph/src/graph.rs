//! The hypergraph structure and its connectivity operations.
//!
//! Internally the graph is data-oriented: relation names are interned
//! to dense `u32` ids ([`crate::intern::Interner`], ids in ascending
//! name order), adjacency is a flat CSR triple
//! (`adj_offsets`/`adj_targets`/`adj_edges`) preserving
//! join-declaration order, join endpoints live in SoA arrays, and the
//! connected component of every vertex is precomputed once at
//! construction. The string-keyed public API is a thin boundary that
//! interns on entry and resolves names on exit, so every legacy result
//! — including iteration and tie-break orders — is reproduced exactly.

use crate::intern::{Interner, RelId};
use crate::relset::RelSet;
use eve_misd::{JoinConstraint, MetaKnowledgeBase};
use eve_relational::RelName;
use std::collections::{BTreeSet, VecDeque};
use std::sync::Arc;

/// The hypergraph `H(MKB)` (or a sub-hypergraph of it), materialised as a
/// relation-level multigraph: vertices are relations, edges are join
/// constraints.
///
/// The structure owns its data (names and constraints are cloned from the
/// MKB), so sub-hypergraphs and evolved variants can be derived freely
/// without borrowing the MKB.
#[derive(Debug, Clone)]
pub struct Hypergraph {
    /// All relation vertices (including isolated ones). `Arc`-shared so
    /// delta maintenance can carry the set through changes that don't
    /// touch the vertex population.
    pub(crate) relations: Arc<BTreeSet<RelName>>,
    /// Join-constraint edges. `Arc`-shared for the same reason: most
    /// capability changes leave every join constraint intact, and a
    /// deep clone of the edge list (id strings, predicates) would
    /// dominate the delta-apply cost.
    pub(crate) joins: Arc<Vec<JoinConstraint>>,
    /// Name ↔ id bijection; id order == name order.
    pub(crate) interner: Interner,
    /// CSR adjacency offsets: vertex `v`'s neighbours live at
    /// `adj_targets[adj_offsets[v]..adj_offsets[v + 1]]`.
    pub(crate) adj_offsets: Vec<u32>,
    /// Neighbour vertex per adjacency slot, in join-declaration order
    /// (for each join: the left endpoint's entry precedes the right's).
    pub(crate) adj_targets: Vec<RelId>,
    /// Edge index (into `joins`) per adjacency slot.
    pub(crate) adj_edges: Vec<u32>,
    /// SoA join endpoints: `joins[e]` connects `join_left[e]` and
    /// `join_right[e]`.
    pub(crate) join_left: Vec<RelId>,
    pub(crate) join_right: Vec<RelId>,
    /// Dedup rank of each join's id string: `join_rank[a] < join_rank[b]`
    /// ⇔ `joins[a].id < joins[b].id`, with equal strings sharing a rank.
    /// Lets the path search order candidates by join-id sequence without
    /// comparing strings. Delta maintenance carries ranks over edge
    /// subsets, so ranks need not be dense — only order-preserving.
    pub(crate) join_rank: Vec<u32>,
    /// Connected-component index per vertex. Components are numbered in
    /// ascending order of their smallest vertex id (= smallest name).
    pub(crate) comp_of: Vec<u32>,
    pub(crate) comp_count: u32,
}

/// Build the CSR adjacency triple for `n` vertices from SoA join
/// endpoints, filled in join-declaration order (left endpoint first,
/// then right — the legacy push order). Pure integer work: the delta
/// path re-runs this after patching endpoint arrays without touching a
/// single string.
pub(crate) fn build_csr(
    n: usize,
    join_left: &[RelId],
    join_right: &[RelId],
) -> (Vec<u32>, Vec<RelId>, Vec<u32>) {
    let m = join_left.len();
    let mut degree = vec![0u32; n];
    for e in 0..m {
        degree[join_left[e] as usize] += 1;
        degree[join_right[e] as usize] += 1;
    }
    let mut adj_offsets = vec![0u32; n + 1];
    for v in 0..n {
        adj_offsets[v + 1] = adj_offsets[v] + degree[v];
    }
    let mut cursor: Vec<u32> = adj_offsets[..n].to_vec();
    let mut adj_targets = vec![0 as RelId; adj_offsets[n] as usize];
    let mut adj_edges = vec![0u32; adj_offsets[n] as usize];
    for e in 0..m {
        let (l, r) = (join_left[e], join_right[e]);
        let slot = cursor[l as usize] as usize;
        adj_targets[slot] = r;
        adj_edges[slot] = e as u32;
        cursor[l as usize] += 1;
        let slot = cursor[r as usize] as usize;
        adj_targets[slot] = l;
        adj_edges[slot] = e as u32;
        cursor[r as usize] += 1;
    }
    (adj_offsets, adj_targets, adj_edges)
}

/// Connected components over a CSR adjacency, seeded in ascending id
/// (= name) order so component indices sort by smallest member name.
pub(crate) fn components_from(
    n: usize,
    adj_offsets: &[u32],
    adj_targets: &[RelId],
) -> (Vec<u32>, u32) {
    let mut comp_of = vec![u32::MAX; n];
    let mut comp_count = 0u32;
    let mut queue: VecDeque<RelId> = VecDeque::new();
    for v in 0..n {
        if comp_of[v] != u32::MAX {
            continue;
        }
        comp_of[v] = comp_count;
        queue.push_back(v as RelId);
        while let Some(r) = queue.pop_front() {
            let (lo, hi) = (
                adj_offsets[r as usize] as usize,
                adj_offsets[r as usize + 1] as usize,
            );
            for &next in &adj_targets[lo..hi] {
                if comp_of[next as usize] == u32::MAX {
                    comp_of[next as usize] = comp_count;
                    queue.push_back(next);
                }
            }
        }
        comp_count += 1;
    }
    (comp_of, comp_count)
}

/// Renumber arbitrary distinct component labels into the canonical
/// numbering (ascending by smallest member id): first occurrence over
/// ascending vertex id reproduces exactly what a BFS seeded in id order
/// would assign. Labels must be `< bound`.
pub(crate) fn renumber_components(raw: &[u32], bound: usize) -> (Vec<u32>, u32) {
    let mut map = vec![u32::MAX; bound];
    let mut next = 0u32;
    let mut out = Vec::with_capacity(raw.len());
    for &label in raw {
        if map[label as usize] == u32::MAX {
            map[label as usize] = next;
            next += 1;
        }
        out.push(map[label as usize]);
    }
    (out, next)
}

impl PartialEq for Hypergraph {
    fn eq(&self, other: &Self) -> bool {
        // The derived structures are pure functions of (relations, joins).
        self.relations == other.relations && self.joins == other.joins
    }
}

impl Hypergraph {
    /// Build `H(MKB)` from a meta knowledge base.
    pub fn build(mkb: &MetaKnowledgeBase) -> Self {
        let relations: BTreeSet<RelName> = mkb.relation_names().cloned().collect();
        let joins: Vec<JoinConstraint> = mkb.joins().to_vec();
        Self::from_parts(relations, joins)
    }

    /// Build `H(MKB)` restricted to the relations accepted by `keep` —
    /// e.g. the capability-filtered `H'(MKB')` over join-capable
    /// relations, constructed in one pass instead of repeated
    /// [`Hypergraph::without_relation`] calls. Join constraints with a
    /// filtered-out endpoint are dropped.
    pub fn build_filtered(
        mkb: &MetaKnowledgeBase,
        keep: impl Fn(&eve_misd::RelationDescription) -> bool,
    ) -> Self {
        let relations: BTreeSet<RelName> = mkb
            .relations()
            .filter(|desc| keep(desc))
            .map(|desc| desc.name.clone())
            .collect();
        Self::from_parts(relations, mkb.joins().to_vec())
    }

    /// Build from explicit parts (used for sub-hypergraphs and tests).
    /// Join constraints whose endpoints are not both present are dropped.
    pub fn from_parts(relations: BTreeSet<RelName>, joins: Vec<JoinConstraint>) -> Self {
        let interner = Interner::from_sorted(relations.iter().cloned());
        let joins: Vec<JoinConstraint> = joins
            .into_iter()
            .filter(|j| relations.contains(&j.left) && relations.contains(&j.right))
            .collect();
        let n = interner.len();
        let m = joins.len();

        let mut join_left = Vec::with_capacity(m);
        let mut join_right = Vec::with_capacity(m);
        for j in &joins {
            join_left.push(interner.get(&j.left).expect("endpoint present"));
            join_right.push(interner.get(&j.right).expect("endpoint present"));
        }

        // Dedup lexicographic ranks of the join id strings.
        let mut ids: Vec<&str> = joins.iter().map(|j| j.id.as_str()).collect();
        ids.sort_unstable();
        ids.dedup();
        let join_rank: Vec<u32> = joins
            .iter()
            .map(|j| ids.binary_search(&j.id.as_str()).expect("id ranked") as u32)
            .collect();

        // CSR adjacency, filled in join-declaration order (left endpoint
        // first, then right — matching the legacy push order), then the
        // connected components seeded in ascending id (= name) order.
        let (adj_offsets, adj_targets, adj_edges) = build_csr(n, &join_left, &join_right);
        let (comp_of, comp_count) = components_from(n, &adj_offsets, &adj_targets);

        Hypergraph {
            relations: Arc::new(relations),
            joins: Arc::new(joins),
            interner,
            adj_offsets,
            adj_targets,
            adj_edges,
            join_left,
            join_right,
            join_rank,
            comp_of,
            comp_count,
        }
    }

    /// The relation vertices.
    pub fn relations(&self) -> &BTreeSet<RelName> {
        &self.relations
    }

    /// The join-constraint edges.
    pub fn joins(&self) -> &[JoinConstraint] {
        &self.joins
    }

    /// Does the hypergraph contain this relation?
    pub fn contains(&self, rel: &RelName) -> bool {
        self.relations.contains(rel)
    }

    // ---- id-level core -------------------------------------------------

    /// The name ↔ id interner. Ids are dense (`0..rel_count()`) and
    /// ascend in name order, so id comparisons reproduce name
    /// comparisons.
    pub fn interner(&self) -> &Interner {
        &self.interner
    }

    /// The interned id of `rel`, or `None` when it is not a vertex.
    pub fn rel_id(&self, rel: &RelName) -> Option<RelId> {
        self.interner.get(rel)
    }

    /// The name behind an interned id.
    pub fn rel_name(&self, id: RelId) -> &RelName {
        self.interner.name(id)
    }

    /// Number of relation vertices (the id universe is `0..rel_count()`).
    pub fn rel_count(&self) -> usize {
        self.interner.len()
    }

    /// An empty [`RelSet`] sized for this graph's id universe.
    pub fn relset(&self) -> RelSet {
        RelSet::with_universe(self.rel_count())
    }

    /// CSR neighbours of `id`: `(neighbour, edge index)` pairs in
    /// join-declaration order.
    pub fn neighbors(&self, id: RelId) -> impl Iterator<Item = (RelId, u32)> + '_ {
        let (lo, hi) = (
            self.adj_offsets[id as usize] as usize,
            self.adj_offsets[id as usize + 1] as usize,
        );
        self.adj_targets[lo..hi]
            .iter()
            .copied()
            .zip(self.adj_edges[lo..hi].iter().copied())
    }

    /// Endpoints of join edge `e` as `(left, right)` ids.
    pub fn join_endpoints(&self, e: u32) -> (RelId, RelId) {
        (self.join_left[e as usize], self.join_right[e as usize])
    }

    /// Dedup lexicographic rank of `joins[e].id`: ranks compare exactly
    /// as the id strings do (equal strings share a rank).
    pub fn join_rank(&self, e: u32) -> u32 {
        self.join_rank[e as usize]
    }

    /// The connected-component index of vertex `id`. Components are
    /// numbered ascending by smallest member name.
    pub fn component_index(&self, id: RelId) -> u32 {
        self.comp_of[id as usize]
    }

    /// Number of connected components.
    pub fn component_count(&self) -> usize {
        self.comp_count as usize
    }

    /// Shortest join-path length (in edges) between two vertices by id,
    /// `None` when they are in different components. Allocation-light
    /// variant of [`Hypergraph::join_path`] for distance queries.
    pub fn pair_distance_ids(&self, a: RelId, b: RelId) -> Option<usize> {
        if a == b {
            return Some(0);
        }
        if self.comp_of[a as usize] != self.comp_of[b as usize] {
            return None;
        }
        let mut dist = vec![u32::MAX; self.rel_count()];
        dist[a as usize] = 0;
        let mut queue = VecDeque::new();
        queue.push_back(a);
        while let Some(r) = queue.pop_front() {
            let d = dist[r as usize];
            for (next, _) in self.neighbors(r) {
                if dist[next as usize] == u32::MAX {
                    if next == b {
                        return Some(d as usize + 1);
                    }
                    dist[next as usize] = d + 1;
                    queue.push_back(next);
                }
            }
        }
        None
    }

    /// Breadth-first shortest path between two vertices by id, as edge
    /// indices in walk order. `None` when unreachable; empty when
    /// `a == b`. Visits neighbours in join-declaration order, matching
    /// the legacy string-keyed BFS tie-breaks.
    pub fn join_path_ids(&self, a: RelId, b: RelId) -> Option<Vec<u32>> {
        if a == b {
            return Some(Vec::new());
        }
        if self.comp_of[a as usize] != self.comp_of[b as usize] {
            return None;
        }
        let mut prev: Vec<(RelId, u32)> = vec![(u32::MAX, u32::MAX); self.rel_count()];
        let mut seen = self.relset();
        seen.insert(a);
        let mut queue = VecDeque::new();
        queue.push_back(a);
        while let Some(r) = queue.pop_front() {
            for (next, edge) in self.neighbors(r) {
                if seen.insert(next) {
                    prev[next as usize] = (r, edge);
                    if next == b {
                        let mut path = Vec::new();
                        let mut cur = b;
                        while prev[cur as usize].0 != u32::MAX {
                            let (p, e) = prev[cur as usize];
                            path.push(e);
                            cur = p;
                        }
                        path.reverse();
                        return Some(path);
                    }
                    queue.push_back(next);
                }
            }
        }
        None
    }

    // ---- string-keyed boundary ----------------------------------------

    /// Join constraints incident to `rel`.
    pub fn joins_of<'a>(&'a self, rel: &RelName) -> impl Iterator<Item = &'a JoinConstraint> {
        self.rel_id(rel)
            .into_iter()
            .flat_map(move |id| self.neighbors(id).map(|(_, e)| &self.joins[e as usize]))
    }

    /// All join constraints between the unordered pair `{r1, r2}`.
    pub fn joins_between<'a>(
        &'a self,
        r1: &'a RelName,
        r2: &'a RelName,
    ) -> impl Iterator<Item = &'a JoinConstraint> {
        self.joins.iter().filter(move |j| j.connects(r1, r2))
    }

    /// The set of relations reachable from `start` (its connected
    /// component's vertex set `S_R(MKB)`), or `None` when `start` is not a
    /// vertex. Served from the precomputed component index — no
    /// traversal, no whole-set clone.
    pub fn component_relations(&self, start: &RelName) -> Option<BTreeSet<RelName>> {
        let comp = self.comp_of[self.rel_id(start)? as usize];
        Some(
            (0..self.rel_count())
                .filter(|&v| self.comp_of[v] == comp)
                .map(|v| self.interner.name(v as RelId).clone())
                .collect(),
        )
    }

    /// The connected sub-hypergraph `H_R(MKB)` containing `start`
    /// (Step 1 of the CVS algorithm), or `None` when `start` is absent.
    pub fn component_of(&self, start: &RelName) -> Option<Hypergraph> {
        let comp = self.comp_of[self.rel_id(start)? as usize];
        Some(self.component_subgraph(comp))
    }

    fn component_subgraph(&self, comp: u32) -> Hypergraph {
        let rels: BTreeSet<RelName> = (0..self.rel_count())
            .filter(|&v| self.comp_of[v] == comp)
            .map(|v| self.interner.name(v as RelId).clone())
            .collect();
        let joins = self
            .joins
            .iter()
            .enumerate()
            .filter(|(e, _)| self.comp_of[self.join_left[*e] as usize] == comp)
            .map(|(_, j)| j.clone())
            .collect();
        Hypergraph::from_parts(rels, joins)
    }

    /// All maximal connected components, each as a sub-hypergraph, ordered
    /// by their smallest relation name. One pass over the precomputed
    /// component index — the legacy per-component re-traversal and
    /// whole-relation-set clone are gone.
    pub fn components(&self) -> Vec<Hypergraph> {
        (0..self.comp_count)
            .map(|c| self.component_subgraph(c))
            .collect()
    }

    /// The sub-hypergraph of one component by index (`0..component_count()`).
    /// Lets delta maintenance rebuild only the components a change
    /// touched, Arc-sharing the rest.
    ///
    /// # Panics
    /// When `comp >= component_count()`.
    pub fn component(&self, comp: u32) -> Hypergraph {
        assert!(comp < self.comp_count, "component index out of range");
        self.component_subgraph(comp)
    }

    /// Is the given set of relations mutually connected *within this
    /// hypergraph* (all in one component)? The empty set and singletons
    /// are trivially connected. With the precomputed component index
    /// this is one comparison per relation.
    pub fn is_connected_set(&self, rels: &BTreeSet<RelName>) -> bool {
        let mut iter = rels.iter();
        let first = match iter.next() {
            Some(f) => f,
            None => return true,
        };
        let comp = match self.rel_id(first) {
            Some(id) => self.comp_of[id as usize],
            None => return false,
        };
        iter.all(|r| {
            self.rel_id(r)
                .is_some_and(|id| self.comp_of[id as usize] == comp)
        })
    }

    /// The hypergraph `H'` obtained by erasing the relation hyperedge
    /// `rel` (and with it every incident join constraint) — Def. 3's
    /// `H'_R(MKB')`. Erasing a vertex may disconnect the graph.
    pub fn without_relation(&self, rel: &RelName) -> Hypergraph {
        let mut relations = (*self.relations).clone();
        relations.remove(rel);
        let joins = self
            .joins
            .iter()
            .filter(|j| !j.touches(rel))
            .cloned()
            .collect();
        Hypergraph::from_parts(relations, joins)
    }

    /// Breadth-first shortest join path from `from` to `to`: the sequence
    /// of join constraints realising
    /// `from ⋈_{JC_1} R_1 ⋈ … ⋈_{JC_n} to`. Returns `None` when
    /// unreachable; the empty path when `from == to`.
    pub fn join_path(&self, from: &RelName, to: &RelName) -> Option<Vec<&JoinConstraint>> {
        let (a, b) = (self.rel_id(from)?, self.rel_id(to)?);
        let path = self.join_path_ids(a, b)?;
        Some(path.into_iter().map(|e| &self.joins[e as usize]).collect())
    }

    /// Enumerate all simple paths (as join-constraint sequences) from
    /// `from` to `to` with at most `max_edges` edges, in deterministic
    /// order. Parallel join constraints yield distinct paths.
    ///
    /// Unbounded in the number of paths — prefer
    /// [`Hypergraph::simple_paths_bounded`] on large graphs, where the
    /// number of simple paths grows combinatorially.
    pub fn all_simple_paths(
        &self,
        from: &RelName,
        to: &RelName,
        max_edges: usize,
    ) -> Vec<Vec<&JoinConstraint>> {
        self.simple_paths_bounded(from, to, max_edges, usize::MAX)
    }

    /// Like [`Hypergraph::all_simple_paths`], but stops after collecting
    /// `max_paths` paths (depth-first order). The DFS visits neighbours
    /// in adjacency order, so the result is deterministic; it is *not*
    /// guaranteed to contain the shortest path when truncated — callers
    /// that need it should union with [`Hypergraph::join_path`].
    pub fn simple_paths_bounded(
        &self,
        from: &RelName,
        to: &RelName,
        max_edges: usize,
        max_paths: usize,
    ) -> Vec<Vec<&JoinConstraint>> {
        let mut out = Vec::new();
        let (a, b) = match (self.rel_id(from), self.rel_id(to)) {
            (Some(a), Some(b)) if max_paths > 0 => (a, b),
            _ => return out,
        };
        let mut visited = self.relset();
        visited.insert(a);
        let mut path: Vec<u32> = Vec::new();
        self.dfs_paths(
            a,
            b,
            max_edges,
            max_paths,
            &mut visited,
            &mut path,
            &mut out,
        );
        out
    }

    #[allow(clippy::too_many_arguments)]
    fn dfs_paths<'a>(
        &'a self,
        cur: RelId,
        to: RelId,
        budget: usize,
        max_paths: usize,
        visited: &mut RelSet,
        path: &mut Vec<u32>,
        out: &mut Vec<Vec<&'a JoinConstraint>>,
    ) {
        if out.len() >= max_paths {
            return;
        }
        if cur == to {
            out.push(path.iter().map(|&e| &self.joins[e as usize]).collect());
            return;
        }
        if budget == 0 {
            return;
        }
        for (next, edge) in self.neighbors(cur) {
            if out.len() >= max_paths {
                return;
            }
            if visited.contains(next) {
                continue;
            }
            visited.insert(next);
            path.push(edge);
            self.dfs_paths(next, to, budget - 1, max_paths, visited, path, out);
            path.pop();
            visited.remove(next);
        }
    }

    /// Degree of a relation (number of incident join constraints).
    pub fn degree(&self, rel: &RelName) -> usize {
        match self.rel_id(rel) {
            Some(id) => {
                (self.adj_offsets[id as usize + 1] - self.adj_offsets[id as usize]) as usize
            }
            None => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eve_relational::{AttrRef, Clause, Conjunction};

    fn rel(n: &str) -> RelName {
        RelName::new(n)
    }

    fn jc(id: &str, l: &str, r: &str) -> JoinConstraint {
        JoinConstraint::new(
            id,
            l,
            r,
            Conjunction::new(vec![Clause::eq_attrs(
                AttrRef::new(l, "k"),
                AttrRef::new(r, "k"),
            )]),
        )
    }

    /// Two components: A—B—C (and a parallel A—B edge) plus D—E; F isolated.
    fn sample() -> Hypergraph {
        let rels: BTreeSet<RelName> = ["A", "B", "C", "D", "E", "F"]
            .iter()
            .map(|s| rel(s))
            .collect();
        let joins = vec![
            jc("J1", "A", "B"),
            jc("J1b", "A", "B"),
            jc("J2", "B", "C"),
            jc("J3", "D", "E"),
        ];
        Hypergraph::from_parts(rels, joins)
    }

    #[test]
    fn components_counted() {
        let h = sample();
        let comps = h.components();
        assert_eq!(comps.len(), 3); // {A,B,C}, {D,E}, {F}
        let sizes: Vec<usize> = comps.iter().map(|c| c.relations().len()).collect();
        assert_eq!(sizes, vec![3, 2, 1]);
    }

    #[test]
    fn component_of_and_connected_set() {
        let h = sample();
        let comp = h.component_relations(&rel("A")).unwrap();
        assert!(comp.contains(&rel("C")));
        assert!(!comp.contains(&rel("D")));
        assert!(h.is_connected_set(&[rel("A"), rel("C")].into_iter().collect()));
        assert!(!h.is_connected_set(&[rel("A"), rel("D")].into_iter().collect()));
        assert!(h.is_connected_set(&BTreeSet::new()));
        assert!(h.component_relations(&rel("Z")).is_none());
    }

    #[test]
    fn without_relation_disconnects() {
        let h = sample();
        let h2 = h.without_relation(&rel("B"));
        assert!(!h2.contains(&rel("B")));
        // A and C are now separated.
        assert!(!h2.is_connected_set(&[rel("A"), rel("C")].into_iter().collect()));
        // No dangling join constraints.
        assert!(h2.joins().iter().all(|j| !j.touches(&rel("B"))));
    }

    #[test]
    fn join_path_shortest() {
        let h = sample();
        let p = h.join_path(&rel("A"), &rel("C")).unwrap();
        assert_eq!(p.len(), 2);
        assert_eq!(p[1].id, "J2");
        assert!(h.join_path(&rel("A"), &rel("D")).is_none());
        assert_eq!(h.join_path(&rel("A"), &rel("A")).unwrap().len(), 0);
    }

    #[test]
    fn all_simple_paths_includes_parallel_edges() {
        let h = sample();
        let ps = h.all_simple_paths(&rel("A"), &rel("C"), 4);
        // two parallel A—B edges → two paths A-B-C
        assert_eq!(ps.len(), 2);
        let ids: BTreeSet<&str> = ps.iter().map(|p| p[0].id.as_str()).collect();
        assert_eq!(ids, ["J1", "J1b"].into_iter().collect());
        // Budget too small → no paths.
        assert!(h.all_simple_paths(&rel("A"), &rel("C"), 1).is_empty());
    }

    #[test]
    fn degree_and_joins_between() {
        let h = sample();
        assert_eq!(h.degree(&rel("A")), 2);
        assert_eq!(h.degree(&rel("F")), 0);
        assert_eq!(h.joins_between(&rel("A"), &rel("B")).count(), 2);
        assert_eq!(h.joins_of(&rel("B")).count(), 3);
    }

    #[test]
    fn from_parts_drops_dangling_joins() {
        let rels: BTreeSet<RelName> = [rel("A")].into_iter().collect();
        let h = Hypergraph::from_parts(rels, vec![jc("J1", "A", "B")]);
        assert!(h.joins().is_empty());
    }

    #[test]
    fn interner_ids_ascend_with_names() {
        let h = sample();
        let ids: Vec<RelId> = h.relations().iter().map(|r| h.rel_id(r).unwrap()).collect();
        assert_eq!(ids, (0..6).collect::<Vec<RelId>>());
        assert_eq!(h.rel_name(2), &rel("C"));
        assert_eq!(h.rel_id(&rel("Z")), None);
        assert_eq!(h.rel_count(), 6);
    }

    #[test]
    fn csr_adjacency_matches_join_declaration_order() {
        let h = sample();
        let b = h.rel_id(&rel("B")).unwrap();
        // B's joins in declaration order: J1, J1b (as right endpoint), J2
        // (as left endpoint).
        let edges: Vec<u32> = h.neighbors(b).map(|(_, e)| e).collect();
        assert_eq!(edges, vec![0, 1, 2]);
        let (l, r) = h.join_endpoints(2);
        assert_eq!((h.rel_name(l), h.rel_name(r)), (&rel("B"), &rel("C")));
    }

    #[test]
    fn join_ranks_mirror_id_string_order() {
        let h = sample();
        // Declaration order J1, J1b, J2, J3 is already lexicographic.
        let ranks: Vec<u32> = (0..4).map(|e| h.join_rank(e)).collect();
        assert_eq!(ranks, vec![0, 1, 2, 3]);
        // Equal id strings share a rank.
        let rels: BTreeSet<RelName> = ["A", "B"].iter().map(|s| rel(s)).collect();
        let h2 = Hypergraph::from_parts(rels, vec![jc("dup", "A", "B"), jc("dup", "A", "B")]);
        assert_eq!(h2.join_rank(0), h2.join_rank(1));
    }

    #[test]
    fn component_index_and_pair_distance() {
        let h = sample();
        let id = |n: &str| h.rel_id(&rel(n)).unwrap();
        assert_eq!(h.component_count(), 3);
        assert_eq!(h.component_index(id("A")), h.component_index(id("C")));
        assert_ne!(h.component_index(id("A")), h.component_index(id("D")));
        assert_eq!(h.pair_distance_ids(id("A"), id("C")), Some(2));
        assert_eq!(h.pair_distance_ids(id("A"), id("A")), Some(0));
        assert_eq!(h.pair_distance_ids(id("A"), id("D")), None);
        assert_eq!(h.join_path_ids(id("A"), id("C")).map(|p| p.len()), Some(2));
    }
}
