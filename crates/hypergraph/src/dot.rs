//! Graphviz (DOT) rendering of `H(MKB)` — regenerates Fig. 4 of the
//! paper.
//!
//! Each relation hyperedge becomes a cluster of its attribute hypernodes;
//! join constraints are drawn as solid edges between the attribute nodes
//! they relate; function-of constraints as dashed edges. Highlighted
//! joins (e.g. the `Min(H_R)` expression marked bold in Fig. 4) are drawn
//! with `penwidth=3`.

use crate::graph::Hypergraph;
use eve_misd::MetaKnowledgeBase;
use eve_relational::{AttrRef, RelName};
use std::collections::BTreeSet;
use std::fmt::Write as _;

fn node_id(attr: &AttrRef) -> String {
    let clean = |s: &str| s.replace(|c: char| !c.is_alphanumeric(), "_");
    format!(
        "n_{}_{}",
        clean(attr.relation.as_str()),
        clean(attr.attr.as_str())
    )
}

/// Render the hypergraph (restricted to the relations present in
/// `graph`) as DOT, with attribute-level detail taken from the MKB.
/// `bold_joins` are drawn with heavy pen width (the Fig. 4 highlight).
pub fn to_dot(
    mkb: &MetaKnowledgeBase,
    graph: &Hypergraph,
    bold_joins: &BTreeSet<String>,
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "graph H {{");
    let _ = writeln!(out, "  rankdir=LR;");
    let _ = writeln!(out, "  node [shape=ellipse, fontsize=10];");

    for rel in graph.relations() {
        let desc = match mkb.relation(rel) {
            Some(d) => d,
            None => continue,
        };
        let cluster = rel.as_str().replace(|c: char| !c.is_alphanumeric(), "_");
        let _ = writeln!(out, "  subgraph cluster_{cluster} {{");
        let _ = writeln!(out, "    label=\"{rel}\";");
        for attr in desc.attr_refs() {
            let _ = writeln!(out, "    {} [label=\"{}\"];", node_id(&attr), attr.attr);
        }
        let _ = writeln!(out, "  }}");
    }

    // Join-constraint edges between the attributes they mention (one edge
    // per clause linking attributes of the two endpoint relations).
    for jc in graph.joins() {
        let style = if bold_joins.contains(&jc.id) {
            ", penwidth=3"
        } else {
            ""
        };
        for clause in jc.predicate.clauses() {
            let attrs: Vec<AttrRef> = clause.attrs().into_iter().collect();
            let left: Vec<&AttrRef> = attrs.iter().filter(|a| a.relation == jc.left).collect();
            let right: Vec<&AttrRef> = attrs.iter().filter(|a| a.relation == jc.right).collect();
            for l in &left {
                for r in &right {
                    let _ = writeln!(
                        out,
                        "  {} -- {} [label=\"{}\"{}];",
                        node_id(l),
                        node_id(r),
                        jc.id,
                        style
                    );
                }
            }
        }
    }

    // Function-of edges (dashed), only between attributes of relations in
    // this (sub-)hypergraph.
    for f in mkb.function_ofs() {
        if !graph.contains(&f.target.relation) {
            continue;
        }
        for src in f.source_attrs() {
            if !graph.contains(&src.relation) {
                continue;
            }
            let _ = writeln!(
                out,
                "  {} -- {} [label=\"{}\", style=dashed, constraint=false];",
                node_id(&f.target),
                node_id(&src),
                f.id
            );
        }
    }

    let _ = writeln!(out, "}}");
    out
}

/// Convenience: render the full `H(MKB)` with no highlights.
pub fn mkb_to_dot(mkb: &MetaKnowledgeBase) -> String {
    to_dot(mkb, &Hypergraph::build(mkb), &BTreeSet::new())
}

/// Convenience: the relation-level component structure as a short text
/// summary (used by experiment output alongside the DOT file).
pub fn component_summary(graph: &Hypergraph) -> String {
    let mut out = String::new();
    for (i, comp) in graph.components().iter().enumerate() {
        let rels: Vec<&str> = comp.relations().iter().map(RelName::as_str).collect();
        let joins: Vec<&str> = comp.joins().iter().map(|j| j.id.as_str()).collect();
        let _ = writeln!(
            out,
            "component {}: relations = {{{}}}, joins = {{{}}}",
            i + 1,
            rels.join(", "),
            joins.join(", ")
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use eve_misd::parse_misd;

    fn mkb() -> MetaKnowledgeBase {
        parse_misd(
            "RELATION IS1 Customer(Name str, Age int)
             RELATION IS4 FlightRes(PName str, Dest str)
             RELATION IS6 Hotels(City str, Address str)
             JOIN JC1: Customer, FlightRes ON Customer.Name = FlightRes.PName
             FUNCOF F1: Customer.Name = FlightRes.PName",
        )
        .unwrap()
    }

    #[test]
    fn dot_contains_clusters_edges_and_funcofs() {
        let m = mkb();
        let dot = mkb_to_dot(&m);
        assert!(dot.contains("subgraph cluster_Customer"));
        assert!(dot.contains("subgraph cluster_Hotels"));
        assert!(dot.contains("label=\"JC1\""));
        assert!(dot.contains("style=dashed"));
        assert!(dot.starts_with("graph H {"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn bold_highlight_applied() {
        let m = mkb();
        let g = Hypergraph::build(&m);
        let dot = to_dot(&m, &g, &["JC1".to_string()].into_iter().collect());
        assert!(dot.contains("penwidth=3"));
    }

    #[test]
    fn summary_lists_components() {
        let m = mkb();
        let g = Hypergraph::build(&m);
        let s = component_summary(&g);
        assert!(s.contains("component 1"));
        assert!(s.contains("component 2"));
        assert!(s.contains("Hotels"));
    }
}
