//! Crate-internal facade over `eve-telemetry` (counters only — the
//! hypergraph layer records enumeration totals, the spans live in
//! `eve-core`). Without the default `telemetry` feature every call
//! compiles down to a no-op.

#[cfg(feature = "telemetry")]
pub(crate) use eve_telemetry::{counter_add, enabled};

#[cfg(not(feature = "telemetry"))]
pub(crate) use inert::*;

#[cfg(not(feature = "telemetry"))]
mod inert {
    #![allow(dead_code)]

    #[inline(always)]
    pub(crate) fn enabled() -> bool {
        false
    }

    #[inline(always)]
    pub(crate) fn counter_add(_name: &str, _n: u64) {}
}
