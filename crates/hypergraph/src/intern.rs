//! Relation-name interning: dense `u32` ids for the data-oriented core.
//!
//! Every [`crate::Hypergraph`] builds one [`Interner`] at construction
//! time, mapping its relation names to ids `0..n` **in ascending name
//! order**. That ordering is load-bearing: comparing two [`RelId`]s is
//! then exactly comparing the underlying [`RelName`]s, so the id-keyed
//! enumeration core can reproduce the legacy string-keyed yield order
//! (heap tie-breaks, component ordering, terminal iteration) without
//! ever touching a string on the hot path. The string-keyed public API
//! is a thin boundary: intern on entry, [`Interner::name`] on exit.

use eve_relational::RelName;
use std::collections::HashMap;

/// Dense relation id. Ids are assigned in ascending [`RelName`] order,
/// so `id_a < id_b ⇔ name_a < name_b` within one interner.
pub type RelId = u32;

/// A bijection between the relation names of one hypergraph and the
/// dense id range `0..len`.
///
/// Ids from different interners (different hypergraphs) are not
/// comparable; the boundary layer always resolves back to [`RelName`]
/// before crossing graphs.
#[derive(Debug, Clone, Default)]
pub struct Interner {
    /// Names in id order (ascending name order by construction).
    names: Vec<RelName>,
    /// Reverse lookup.
    lookup: HashMap<RelName, RelId>,
}

impl Interner {
    /// Build from names already in ascending order without duplicates
    /// (e.g. iterating a `BTreeSet<RelName>`).
    pub fn from_sorted(names: impl IntoIterator<Item = RelName>) -> Self {
        let names: Vec<RelName> = names.into_iter().collect();
        debug_assert!(names.windows(2).all(|w| w[0] < w[1]), "names sorted+unique");
        let lookup = names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), i as RelId))
            .collect();
        Interner { names, lookup }
    }

    /// The id of `name`, or `None` when it is not interned here.
    pub fn get(&self, name: &RelName) -> Option<RelId> {
        self.lookup.get(name).copied()
    }

    /// The name behind `id`.
    ///
    /// # Panics
    /// When `id` was not produced by this interner.
    pub fn name(&self, id: RelId) -> &RelName {
        &self.names[id as usize]
    }

    /// Number of interned names (the id universe is `0..len()`).
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Is the interner empty?
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// All names in id order (ascending name order).
    pub fn names(&self) -> &[RelName] {
        &self.names
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn ids_follow_name_order() {
        let set: BTreeSet<RelName> = ["B", "A", "C"].iter().map(|s| RelName::new(*s)).collect();
        let it = Interner::from_sorted(set);
        assert_eq!(it.len(), 3);
        assert_eq!(it.get(&RelName::new("A")), Some(0));
        assert_eq!(it.get(&RelName::new("B")), Some(1));
        assert_eq!(it.get(&RelName::new("C")), Some(2));
        assert_eq!(it.get(&RelName::new("Z")), None);
        assert_eq!(it.name(1).as_str(), "B");
    }
}
