//! Relation-name interning: dense `u32` ids for the data-oriented core.
//!
//! Every [`crate::Hypergraph`] builds one [`Interner`] at construction
//! time, mapping its relation names to ids `0..n` **in ascending name
//! order**. That ordering is load-bearing: comparing two [`RelId`]s is
//! then exactly comparing the underlying [`RelName`]s, so the id-keyed
//! enumeration core can reproduce the legacy string-keyed yield order
//! (heap tie-breaks, component ordering, terminal iteration) without
//! ever touching a string on the hot path. The string-keyed public API
//! is a thin boundary: intern on entry, [`Interner::name`] on exit.

use eve_relational::RelName;
use std::collections::HashMap;

/// Dense relation id. Ids are assigned in ascending [`RelName`] order,
/// so `id_a < id_b ⇔ name_a < name_b` within one interner.
pub type RelId = u32;

/// A bijection between the relation names of one hypergraph and the
/// dense id range `0..len`.
///
/// Ids from different interners (different hypergraphs) are not
/// comparable; the boundary layer always resolves back to [`RelName`]
/// before crossing graphs.
#[derive(Debug, Clone, Default)]
pub struct Interner {
    /// Names in id order (ascending name order by construction).
    names: Vec<RelName>,
    /// Reverse lookup.
    lookup: HashMap<RelName, RelId>,
}

impl Interner {
    /// Build from names already in ascending order without duplicates
    /// (e.g. iterating a `BTreeSet<RelName>`).
    pub fn from_sorted(names: impl IntoIterator<Item = RelName>) -> Self {
        let names: Vec<RelName> = names.into_iter().collect();
        debug_assert!(names.windows(2).all(|w| w[0] < w[1]), "names sorted+unique");
        let lookup = names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), i as RelId))
            .collect();
        Interner { names, lookup }
    }

    /// The id of `name`, or `None` when it is not interned here.
    pub fn get(&self, name: &RelName) -> Option<RelId> {
        self.lookup.get(name).copied()
    }

    /// The name behind `id`.
    ///
    /// # Panics
    /// When `id` was not produced by this interner.
    pub fn name(&self, id: RelId) -> &RelName {
        &self.names[id as usize]
    }

    /// Number of interned names (the id universe is `0..len()`).
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Is the interner empty?
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// All names in id order (ascending name order).
    pub fn names(&self) -> &[RelName] {
        &self.names
    }

    // ---- incremental growth (delta maintenance) -----------------------
    //
    // The three operations below derive a new interner from this one
    // without re-hashing every name: `RelName` is `Arc<str>`-backed, so
    // cloning the table is pointer bumps, and only the inserted name is
    // hashed. Ids shift to keep the id-order == name-order invariant; the
    // returned positions tell the caller exactly how to remap its own
    // id-keyed arrays (`old >= pos` shifts by one).

    /// A new interner with `name` added, plus the id it received.
    /// Every pre-existing id `>= returned id` shifts up by one.
    /// `None` when `name` is already interned.
    pub fn with_inserted(&self, name: &RelName) -> Option<(Interner, RelId)> {
        let pos = match self.names.binary_search(name) {
            Ok(_) => return None,
            Err(pos) => pos,
        };
        let mut names = Vec::with_capacity(self.names.len() + 1);
        names.extend_from_slice(&self.names[..pos]);
        names.push(name.clone());
        names.extend_from_slice(&self.names[pos..]);
        let mut lookup = self.lookup.clone();
        for id in lookup.values_mut() {
            if *id >= pos as RelId {
                *id += 1;
            }
        }
        lookup.insert(name.clone(), pos as RelId);
        Some((Interner { names, lookup }, pos as RelId))
    }

    /// A new interner with `name` removed, plus the id it held.
    /// Every pre-existing id `> returned id` shifts down by one.
    /// `None` when `name` is not interned.
    pub fn with_removed(&self, name: &RelName) -> Option<(Interner, RelId)> {
        let pos = self.get(name)?;
        let mut names = Vec::with_capacity(self.names.len() - 1);
        names.extend_from_slice(&self.names[..pos as usize]);
        names.extend_from_slice(&self.names[pos as usize + 1..]);
        let mut lookup = self.lookup.clone();
        lookup.remove(name);
        for id in lookup.values_mut() {
            if *id > pos {
                *id -= 1;
            }
        }
        Some((Interner { names, lookup }, pos))
    }

    /// A new interner with `from` renamed to `to`, plus `from`'s old id
    /// and `to`'s new id. Equivalent to remove-then-insert; the caller
    /// remaps its arrays through the implied id permutation. `None` when
    /// `from` is absent or `to` already interned.
    pub fn with_renamed(&self, from: &RelName, to: &RelName) -> Option<(Interner, RelId, RelId)> {
        if self.lookup.contains_key(to) {
            return None;
        }
        let (mid, old_id) = self.with_removed(from)?;
        let (out, new_id) = mid.with_inserted(to)?;
        Some((out, old_id, new_id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn ids_follow_name_order() {
        let set: BTreeSet<RelName> = ["B", "A", "C"].iter().map(|s| RelName::new(*s)).collect();
        let it = Interner::from_sorted(set);
        assert_eq!(it.len(), 3);
        assert_eq!(it.get(&RelName::new("A")), Some(0));
        assert_eq!(it.get(&RelName::new("B")), Some(1));
        assert_eq!(it.get(&RelName::new("C")), Some(2));
        assert_eq!(it.get(&RelName::new("Z")), None);
        assert_eq!(it.name(1).as_str(), "B");
    }

    fn interner(names: &[&str]) -> Interner {
        let set: BTreeSet<RelName> = names.iter().map(|s| RelName::new(*s)).collect();
        Interner::from_sorted(set)
    }

    /// The incremental ops must agree with a from-scratch build of the
    /// mutated name set, id for id.
    fn assert_same(a: &Interner, b: &Interner) {
        assert_eq!(a.names(), b.names());
        for (i, n) in a.names().iter().enumerate() {
            assert_eq!(a.get(n), Some(i as RelId));
            assert_eq!(b.get(n), Some(i as RelId));
        }
    }

    #[test]
    fn with_inserted_matches_rebuild() {
        let it = interner(&["B", "D", "F"]);
        for name in ["A", "C", "E", "G"] {
            let (grown, id) = it.with_inserted(&RelName::new(name)).unwrap();
            let rebuilt = interner(&["B", "D", "F", name]);
            assert_same(&grown, &rebuilt);
            assert_eq!(grown.get(&RelName::new(name)), Some(id));
        }
        assert!(it.with_inserted(&RelName::new("B")).is_none());
    }

    #[test]
    fn with_removed_matches_rebuild() {
        let it = interner(&["A", "B", "C"]);
        let (shrunk, id) = it.with_removed(&RelName::new("B")).unwrap();
        assert_eq!(id, 1);
        assert_same(&shrunk, &interner(&["A", "C"]));
        assert!(it.with_removed(&RelName::new("Z")).is_none());
    }

    #[test]
    fn with_renamed_matches_rebuild() {
        let it = interner(&["A", "B", "C"]);
        // Rename that moves forwards, backwards, and in place.
        for (from, to, expect) in [
            ("A", "Z", ["B", "C", "Z"]),
            ("C", "0", ["0", "A", "B"]),
            ("B", "Bb", ["A", "Bb", "C"]),
        ] {
            let (renamed, old_id, new_id) = it
                .with_renamed(&RelName::new(from), &RelName::new(to))
                .unwrap();
            assert_same(&renamed, &interner(&expect));
            assert_eq!(it.get(&RelName::new(from)), Some(old_id));
            assert_eq!(renamed.get(&RelName::new(to)), Some(new_id));
        }
        assert!(it
            .with_renamed(&RelName::new("A"), &RelName::new("B"))
            .is_none());
        assert!(it
            .with_renamed(&RelName::new("Z"), &RelName::new("Y"))
            .is_none());
    }
}
