//! Crate-internal facade over `eve-faults` (one site — the connection
//! tree stream — the richer sites live in `eve-core`). Without the
//! default `faults` feature every call compiles down to a no-op; with it
//! an uninstalled plan costs one relaxed atomic load per site.
//!
//! The `hypergraph.tree-iter` site fires when a tree stream is opened.
//! Under the core index's shared enumeration cache, *which* view's task
//! opens the stream depends on worker scheduling, so plans targeting
//! this site are chaos-only — the deterministic-replay guarantees are
//! documented for the core sites (see DESIGN.md).

#[cfg(feature = "faults")]
pub(crate) fn hit(site: &str) {
    if !eve_faults::active() {
        return;
    }
    if let Some(kind) = eve_faults::check(site) {
        crate::telem::counter_add("faults.injected", 1);
        // Budget faults have no meaning at a stream opening; treat the
        // returned truncation flag as a no-op here.
        let _ = eve_faults::execute(site, kind);
    }
}

#[cfg(not(feature = "faults"))]
#[inline(always)]
pub(crate) fn hit(_site: &str) {}
