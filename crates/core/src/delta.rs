//! Delta maintenance of the MKB-derived index state.
//!
//! [`IndexCore`] is every derived structure of **one** MKB version —
//! the full hypergraph `H`, its connected components, the
//! capability-filtered join graph, the attribute→cover map and the
//! relation-pair→PC buckets — held behind [`Arc`]s so consecutive
//! versions structurally share everything a change did not touch.
//!
//! [`MkbDelta`] is one capability change typed per operator:
//! the change projected onto each hypergraph as a
//! [`GraphDelta`], plus the constraint-map edits. Applying it to an
//! `IndexCore` ([`IndexCore::apply_delta`]) costs `O(delta)` — the
//! touched component is rebuilt, every other component and untouched
//! constraint map is an `Arc` clone — instead of the `O(MKB)`
//! from-scratch rebuild. Rebuild equivalence is the contract: the
//! delta-maintained core is indistinguishable from [`IndexCore::build`]
//! over the evolved MKB (enforced by the property suite in
//! `tests/delta_equivalence.rs`).

use crate::replacement::CoverChoice;
use eve_hypergraph::{GraphDelta, Hypergraph, RelId};
use eve_misd::{CapabilityChange, MetaKnowledgeBase, PartialComplete};
use eve_relational::{AttrRef, RelName};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Order-normalised key for the PC bucket map.
pub(crate) fn pair_key(a: &RelName, b: &RelName) -> (RelName, RelName) {
    if a <= b {
        (a.clone(), b.clone())
    } else {
        (b.clone(), a.clone())
    }
}

/// Build the attribute→cover map of one MKB version (declaration order
/// per attribute, restricted to function-ofs with a single well-defined
/// source relation).
pub(crate) fn build_covers(mkb: &MetaKnowledgeBase) -> BTreeMap<AttrRef, Vec<CoverChoice>> {
    let mut covers: BTreeMap<AttrRef, Vec<CoverChoice>> = BTreeMap::new();
    for f in mkb.function_ofs() {
        let Some(source) = f.source_relation() else {
            continue;
        };
        covers
            .entry(f.target.clone())
            .or_default()
            .push(CoverChoice {
                funcof_id: f.id.clone(),
                source,
                replacement: f.expr.clone(),
            });
    }
    covers
}

/// Build the relation-pair→PC bucket map of one MKB version (buckets in
/// declaration order).
pub(crate) fn build_pcs(
    mkb: &MetaKnowledgeBase,
) -> BTreeMap<(RelName, RelName), Vec<PartialComplete>> {
    let mut pcs: BTreeMap<(RelName, RelName), Vec<PartialComplete>> = BTreeMap::new();
    for pc in mkb.pcs() {
        pcs.entry(pair_key(&pc.left.relation, &pc.right.relation))
            .or_default()
            .push(pc.clone());
    }
    pcs
}

/// All derived index state of one MKB version, `Arc`-shared so the next
/// version's core can reuse every structure its change did not touch.
#[derive(Debug, Clone)]
pub struct IndexCore {
    /// The full join-constraint hypergraph `H` of this version.
    pub(crate) h: Arc<Hypergraph>,
    /// `H` restricted to join-capable relations (what `H'(MKB')` is when
    /// capabilities are respected). Aliases `h` when every relation is
    /// join-capable.
    pub(crate) h_join: Arc<Hypergraph>,
    /// Connected components of `h`, indexed by component number.
    pub(crate) components: Arc<Vec<Arc<Hypergraph>>>,
    /// Function-of covers grouped by the attribute they re-derive.
    pub(crate) covers: Arc<BTreeMap<AttrRef, Vec<CoverChoice>>>,
    /// Partial/complete constraints bucketed by unordered relation pair.
    pub(crate) pcs: Arc<BTreeMap<(RelName, RelName), Vec<PartialComplete>>>,
}

impl IndexCore {
    /// Build every derived structure from scratch for one MKB version.
    pub fn build(mkb: &MetaKnowledgeBase) -> Self {
        let h = Arc::new(Hypergraph::build(mkb));
        let h_join = if mkb.relations().all(|d| d.capabilities.join) {
            Arc::clone(&h)
        } else {
            Arc::new(Hypergraph::build_filtered(mkb, |d| d.capabilities.join))
        };
        let components = Arc::new(h.components().into_iter().map(Arc::new).collect::<Vec<_>>());
        IndexCore {
            h,
            h_join,
            components,
            covers: Arc::new(build_covers(mkb)),
            pcs: Arc::new(build_pcs(mkb)),
        }
    }

    /// The full hypergraph of this version.
    pub fn hypergraph(&self) -> &Hypergraph {
        &self.h
    }

    /// The join-capability-filtered hypergraph of this version.
    pub fn join_graph(&self) -> &Hypergraph {
        &self.h_join
    }

    /// Apply one typed change, producing the next version's core.
    /// `mkb_prime` must be the MKB evolved by `delta.change` from the
    /// version this core was derived for.
    pub fn apply_delta(&self, delta: &MkbDelta) -> IndexCore {
        crate::telem::counter_add("index.delta_applies", 1);
        // Coordinator thread, unscoped; unwinding kinds would escape the
        // parpool panic boundary, so plans should stick to delay/budget
        // here (budget is discarded — the patch has no budget to trip).
        crate::faults::hit("index.delta-apply");
        let h2 = match &delta.graph {
            GraphDelta::None => Arc::clone(&self.h),
            d => Arc::new(self.h.apply_delta(d)),
        };
        let h_join2 = if Arc::ptr_eq(&self.h, &self.h_join) && delta.graph == delta.graph_join {
            Arc::clone(&h2)
        } else {
            match &delta.graph_join {
                GraphDelta::None => Arc::clone(&self.h_join),
                d => Arc::new(self.h_join.apply_delta(d)),
            }
        };
        let components = Arc::new(self.patch_components(&h2, &delta.graph));
        IndexCore {
            h: h2,
            h_join: h_join2,
            components,
            covers: delta
                .covers
                .clone()
                .unwrap_or_else(|| Arc::clone(&self.covers)),
            pcs: delta.pcs.clone().unwrap_or_else(|| Arc::clone(&self.pcs)),
        }
    }

    /// Recompute the component list over the patched graph, rebuilding
    /// only the components the delta touched and `Arc`-sharing the rest.
    ///
    /// A capability change never adds a join edge, so every new
    /// component is either a verbatim old component (reused) or a piece
    /// of a touched one (rebuilt). Touched membership is decided by the
    /// new component's smallest member: split pieces stay inside the old
    /// touched component, so one member speaks for all.
    fn patch_components(&self, new_h: &Hypergraph, delta: &GraphDelta) -> Vec<Arc<Hypergraph>> {
        if matches!(delta, GraphDelta::None) {
            return (*self.components).clone();
        }
        let old_h = &self.h;
        // Names whose (new) component must be rebuilt.
        let touched: BTreeSet<RelName> = match delta {
            GraphDelta::None => BTreeSet::new(),
            GraphDelta::AddVertex(n) => [n.clone()].into_iter().collect(),
            GraphDelta::RemoveVertex(n) => old_h
                .component_relations(n)
                .unwrap_or_default()
                .into_iter()
                .filter(|r| r != n)
                .collect(),
            GraphDelta::RenameVertex { to, .. } => {
                new_h.component_relations(to).unwrap_or_default()
            }
            GraphDelta::RemoveAttrEdges(attr) | GraphDelta::RenameAttr { from: attr, .. } => {
                let mut comps: BTreeSet<u32> = BTreeSet::new();
                for (e, j) in old_h.joins().iter().enumerate() {
                    if j.contains_attr(attr) {
                        let (l, _) = old_h.join_endpoints(e as u32);
                        comps.insert(old_h.component_index(l));
                    }
                }
                (0..old_h.rel_count())
                    .filter(|&v| comps.contains(&old_h.component_index(v as RelId)))
                    .map(|v| old_h.rel_name(v as RelId).clone())
                    .collect()
            }
        };
        let mut out: Vec<Arc<Hypergraph>> = Vec::with_capacity(new_h.component_count());
        // Canonical numbering = first occurrence over ascending vertex
        // id, so the first member seen of each component is its smallest.
        for v in 0..new_h.rel_count() {
            let c = new_h.component_index(v as RelId) as usize;
            if c < out.len() {
                continue;
            }
            debug_assert_eq!(c, out.len(), "component numbering is first-occurrence");
            let name = new_h.rel_name(v as RelId);
            if touched.contains(name) {
                out.push(Arc::new(new_h.component(c as u32)));
            } else {
                let old_id = old_h.rel_id(name).expect("untouched member pre-existed");
                let old_c = old_h.component_index(old_id) as usize;
                out.push(Arc::clone(&self.components[old_c]));
            }
        }
        out
    }
}

/// Compact description of what one [`MkbDelta`] did — rendered by
/// `eve-cli history`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaSummary {
    /// The change operator (`delete-relation`, `rename-attribute`, …).
    pub op: &'static str,
    /// Join constraints dropped by the cascade.
    pub joins_dropped: usize,
    /// Function-of constraints dropped by the cascade.
    pub funcofs_dropped: usize,
    /// Partial/complete constraints dropped by the cascade.
    pub pcs_dropped: usize,
    /// Was the cover map carried over unchanged (`Arc`-shared)?
    pub covers_shared: bool,
    /// Were the PC buckets carried over unchanged (`Arc`-shared)?
    pub pcs_shared: bool,
}

impl std::fmt::Display for DeltaSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: -{} join(s), -{} funcof(s), -{} pc(s), covers {}, pcs {}",
            self.op,
            self.joins_dropped,
            self.funcofs_dropped,
            self.pcs_dropped,
            if self.covers_shared {
                "shared"
            } else {
                "rebuilt"
            },
            if self.pcs_shared { "shared" } else { "rebuilt" },
        )
    }
}

/// PC constraints bucketed by the (ordered) relation pair they relate —
/// the same shape [`IndexCore`] holds behind its `Arc`.
pub(crate) type PcBuckets = BTreeMap<(RelName, RelName), Vec<PartialComplete>>;

/// One capability change as a typed delta over the derived index state:
/// the graph-level projection for the full and the capability-filtered
/// hypergraph, plus the constraint-map edits (rebuilt scoped maps when
/// any constraint is touched, `None` = share the predecessor's map).
#[derive(Debug, Clone)]
pub struct MkbDelta {
    /// The change this delta encodes.
    pub change: CapabilityChange,
    /// The change projected onto the full hypergraph `H`.
    pub graph: GraphDelta,
    /// The change projected onto the join-capability-filtered graph.
    pub graph_join: GraphDelta,
    /// Replacement cover map (`None` = predecessor's map is still valid).
    pub(crate) covers: Option<Arc<BTreeMap<AttrRef, Vec<CoverChoice>>>>,
    /// Replacement PC buckets (`None` = predecessor's map is still valid).
    pub(crate) pcs: Option<Arc<PcBuckets>>,
    /// What the delta did, for display.
    pub summary: DeltaSummary,
}

impl MkbDelta {
    /// Project `change` (already validated by `eve_misd::evolve`, which
    /// produced `mkb_prime` from `mkb`) onto the derived index state.
    pub fn compute(
        mkb: &MetaKnowledgeBase,
        mkb_prime: &MetaKnowledgeBase,
        change: &CapabilityChange,
    ) -> MkbDelta {
        let funcof_touched =
            |test: &dyn Fn(&eve_misd::FunctionOf) -> bool| mkb.function_ofs().iter().any(test);
        let pc_touched = |test: &dyn Fn(&PartialComplete) -> bool| mkb.pcs().iter().any(test);
        let attr_in_pc = |p: &PartialComplete, attr: &AttrRef| {
            let mentions = |side: &eve_misd::ProjSel| {
                side.attr_refs().contains(attr) || side.cond.attrs().contains(attr)
            };
            mentions(&p.left) || mentions(&p.right)
        };
        // Attribute changes only touch the graphs when some join
        // predicate actually mentions the attribute; projecting the
        // common payload-attribute case to `GraphDelta::None` lets
        // `apply_delta` share the whole graph by `Arc` instead of
        // deep-cloning it to rewrite nothing.
        let attr_in_joins = |attr: &AttrRef| mkb.joins().iter().any(|j| j.contains_attr(attr));

        let (op, graph, graph_join, covers_touched, pcs_touched) = match change {
            CapabilityChange::AddRelation(desc) => (
                "add-relation",
                GraphDelta::AddVertex(desc.name.clone()),
                if desc.capabilities.join {
                    GraphDelta::AddVertex(desc.name.clone())
                } else {
                    GraphDelta::None
                },
                false,
                false,
            ),
            CapabilityChange::DeleteRelation(rel) => (
                "delete-relation",
                GraphDelta::RemoveVertex(rel.clone()),
                GraphDelta::RemoveVertex(rel.clone()),
                funcof_touched(&|f| f.touches(rel)),
                pc_touched(&|p| p.touches(rel)),
            ),
            CapabilityChange::RenameRelation { from, to } => (
                "rename-relation",
                GraphDelta::RenameVertex {
                    from: from.clone(),
                    to: to.clone(),
                },
                GraphDelta::RenameVertex {
                    from: from.clone(),
                    to: to.clone(),
                },
                funcof_touched(&|f| f.touches(from)),
                pc_touched(&|p| p.touches(from)),
            ),
            CapabilityChange::AddAttribute { .. } => (
                "add-attribute",
                GraphDelta::None,
                GraphDelta::None,
                false,
                false,
            ),
            CapabilityChange::DeleteAttribute(attr) => {
                let g = if attr_in_joins(attr) {
                    GraphDelta::RemoveAttrEdges(attr.clone())
                } else {
                    GraphDelta::None
                };
                (
                    "delete-attribute",
                    g.clone(),
                    g,
                    funcof_touched(&|f| &f.target == attr || f.source_attrs().contains(attr)),
                    pc_touched(&|p| attr_in_pc(p, attr)),
                )
            }
            CapabilityChange::RenameAttribute { from, to } => {
                let g = if attr_in_joins(from) {
                    GraphDelta::RenameAttr {
                        from: from.clone(),
                        to: to.clone(),
                    }
                } else {
                    GraphDelta::None
                };
                (
                    "rename-attribute",
                    g.clone(),
                    g,
                    funcof_touched(&|f| &f.target == from || f.source_attrs().contains(from)),
                    pc_touched(&|p| attr_in_pc(p, from)),
                )
            }
        };
        // A touched constraint map is rebuilt from the evolved MKB —
        // `O(constraints)`, never `O(MKB)`; an untouched one is shared.
        let covers = covers_touched.then(|| Arc::new(build_covers(mkb_prime)));
        let pcs = pcs_touched.then(|| Arc::new(build_pcs(mkb_prime)));
        let summary = DeltaSummary {
            op,
            joins_dropped: mkb.joins().len().saturating_sub(mkb_prime.joins().len()),
            funcofs_dropped: mkb
                .function_ofs()
                .len()
                .saturating_sub(mkb_prime.function_ofs().len()),
            pcs_dropped: mkb.pcs().len().saturating_sub(mkb_prime.pcs().len()),
            covers_shared: !covers_touched,
            pcs_shared: !pcs_touched,
        };
        MkbDelta {
            change: change.clone(),
            graph,
            graph_join,
            covers,
            pcs,
            summary,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::travel_mkb;
    use eve_misd::evolve;
    use eve_relational::AttrName;

    /// Delta-maintained core ≡ from-scratch build over the evolved MKB,
    /// for a chain covering all six operators.
    #[test]
    fn chained_deltas_match_rebuild() {
        use eve_misd::RelationDescription;
        use eve_relational::{AttributeDef, DataType};
        let changes = vec![
            CapabilityChange::AddAttribute {
                relation: RelName::new("Tour"),
                attr: AttributeDef::new("Season", DataType::Str),
            },
            CapabilityChange::RenameAttribute {
                from: AttrRef::new("Tour", "TourName"),
                to: AttrName::new("Title"),
            },
            CapabilityChange::AddRelation(RelationDescription::new(
                "IS9",
                "Weather",
                vec![AttributeDef::new("City", DataType::Str)],
            )),
            CapabilityChange::RenameRelation {
                from: RelName::new("Tour"),
                to: RelName::new("Excursion"),
            },
            CapabilityChange::DeleteAttribute(AttrRef::new("Customer", "Name")),
            CapabilityChange::DeleteRelation(RelName::new("FlightRes")),
        ];
        let mut mkb = travel_mkb();
        let mut core = IndexCore::build(&mkb);
        for change in &changes {
            let mkb_prime = evolve(&mkb, change).expect("valid change");
            let delta = MkbDelta::compute(&mkb, &mkb_prime, change);
            core = core.apply_delta(&delta);
            let rebuilt = IndexCore::build(&mkb_prime);
            assert_eq!(core.h.as_ref(), rebuilt.h.as_ref(), "{change}: H diverged");
            assert_eq!(
                core.h_join.as_ref(),
                rebuilt.h_join.as_ref(),
                "{change}: join graph diverged"
            );
            assert_eq!(
                core.components.len(),
                rebuilt.components.len(),
                "{change}: component count diverged"
            );
            for (a, b) in core.components.iter().zip(rebuilt.components.iter()) {
                assert_eq!(a.as_ref(), b.as_ref(), "{change}: component diverged");
            }
            assert_eq!(
                core.covers.as_ref(),
                rebuilt.covers.as_ref(),
                "{change}: covers diverged"
            );
            assert_eq!(
                core.pcs.as_ref(),
                rebuilt.pcs.as_ref(),
                "{change}: pcs diverged"
            );
            mkb = mkb_prime;
        }
    }

    #[test]
    fn untouched_structures_are_shared_not_cloned() {
        let mkb = travel_mkb();
        let core = IndexCore::build(&mkb);
        // add-attribute touches nothing derived: every Arc is reused.
        let change = CapabilityChange::AddAttribute {
            relation: RelName::new("Tour"),
            attr: eve_relational::AttributeDef::new("Season", eve_relational::DataType::Str),
        };
        let mkb_prime = evolve(&mkb, &change).unwrap();
        let delta = MkbDelta::compute(&mkb, &mkb_prime, &change);
        assert_eq!(delta.graph, GraphDelta::None);
        assert!(delta.covers.is_none() && delta.pcs.is_none());
        let next = core.apply_delta(&delta);
        assert!(Arc::ptr_eq(&core.h, &next.h));
        assert!(Arc::ptr_eq(&core.covers, &next.covers));
        assert!(Arc::ptr_eq(&core.pcs, &next.pcs));

        // delete-relation rebuilds only the touched component.
        let change = CapabilityChange::DeleteRelation(RelName::new("Customer"));
        let mkb_prime = evolve(&mkb, &change).unwrap();
        let delta = MkbDelta::compute(&mkb, &mkb_prime, &change);
        let next = core.apply_delta(&delta);
        let untouched_old: Vec<_> = core
            .components
            .iter()
            .filter(|c| !c.contains(&RelName::new("Customer")))
            .collect();
        for old in untouched_old {
            assert!(
                next.components.iter().any(|n| Arc::ptr_eq(n, old)),
                "untouched component must be Arc-shared"
            );
        }
    }
}
