//! Step 6 of CVS — the view-extent property **P3** of Def. 1:
//!
//! ```text
//! π_{B_V ∩ B_V'}(V')   VE_V   π_{B_V ∩ B_V'}(V)   for all IS states.
//! ```
//!
//! The paper notes this is a variant of *answering queries using views*
//! without the equivalence requirement and defers the full development to
//! future work; it names the mechanism, though: "We use the
//! partial/complete information constraints defined in MKB' to compare
//! the extents of the initial view V and the evolved view V'."
//!
//! We implement two complementary checkers (see DESIGN.md —
//! substitutions):
//!
//! * [`infer_extent`] — a **sound, conservative symbolic** checker. It
//!   composes per-effect verdicts:
//!   * dropping a dispensable condition *widens* the extent (`⊇`);
//!   * dropping `R` from the join without replacement widens (`⊇`) —
//!     every original combination still qualifies without the extra join
//!     partner;
//!   * joining in a cover relation `S` is certified by a PC constraint
//!     `π_{Ā_S}(S) θ π_{Ā_R}(R)` whose `R`-side attributes include every
//!     attribute of `R` the affected view fragment used (join attributes
//!     of `Min(H_R)` plus covered attributes) and whose sides correspond
//!     position-wise through function-of constraints;
//!   * a relation joined in without such a certificate yields `Unknown`.
//!
//!   The overall verdict is the meet of the effect verdicts. `Unknown`
//!   never asserts anything false — experiments `sweep_extent` validate
//!   the checker against the empirical one.
//!
//! * [`empirical_extent`] — evaluates both views on a concrete database
//!   and compares the projections onto the shared interface.

use crate::eval::evaluate_view;
use crate::mapping::RMapping;
use crate::replacement::Replacement;
use eve_esql::{ViewDefinition, ViewExtent};
use eve_misd::{ExtentOp, MetaKnowledgeBase, PartialComplete};
use eve_relational::{
    compare_extents, project, AttrName, AttrRef, Database, ExtentRelation, FuncRegistry,
    RelationalError, ScalarExpr,
};
use std::collections::BTreeSet;
use std::fmt;

/// Symbolic verdict on `V' vs V` (read left to right: `V' <verdict> V`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExtentVerdict {
    /// Certified `V' ≡ V`.
    Equivalent,
    /// Certified `V' ⊇ V`.
    Superset,
    /// Certified `V' ⊆ V`.
    Subset,
    /// No certificate found.
    Unknown,
}

impl ExtentVerdict {
    /// Meet (greatest lower bound) of two effect verdicts: the composition
    /// of two transformations certifies only what both agree on.
    pub fn meet(self, other: ExtentVerdict) -> ExtentVerdict {
        use ExtentVerdict::*;
        match (self, other) {
            (Equivalent, x) | (x, Equivalent) => x,
            (Superset, Superset) => Superset,
            (Subset, Subset) => Subset,
            _ => Unknown,
        }
    }

    /// Symbol for reports.
    pub fn symbol(self) -> &'static str {
        match self {
            ExtentVerdict::Equivalent => "≡",
            ExtentVerdict::Superset => "⊇",
            ExtentVerdict::Subset => "⊆",
            ExtentVerdict::Unknown => "?",
        }
    }
}

impl fmt::Display for ExtentVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// Does a symbolic verdict satisfy the view's extent parameter
/// (property P3)? `Unknown` satisfies only `VE = ≈`.
pub fn satisfies_extent_param(param: ViewExtent, verdict: ExtentVerdict) -> bool {
    match param {
        ViewExtent::Any => true,
        ViewExtent::Superset => {
            matches!(verdict, ExtentVerdict::Superset | ExtentVerdict::Equivalent)
        }
        ViewExtent::Subset => matches!(verdict, ExtentVerdict::Subset | ExtentVerdict::Equivalent),
        ViewExtent::Equivalent => verdict == ExtentVerdict::Equivalent,
    }
}

fn verdict_of_op(op: ExtentOp) -> ExtentVerdict {
    match op {
        ExtentOp::Equivalent => ExtentVerdict::Equivalent,
        ExtentOp::Superset | ExtentOp::ProperSuperset => ExtentVerdict::Superset,
        ExtentOp::Subset | ExtentOp::ProperSubset => ExtentVerdict::Subset,
    }
}

/// Equality-congruence classes over attributes, built from the equality
/// clauses of the join constraints involved in the swap. Two attributes
/// equated (transitively) by the join chain correspond: `T.k = W.k` and
/// `W.k = C1.k` make `C1.k` a faithful stand-in for `T.k`.
#[derive(Clone)]
struct EqClasses<'a> {
    /// Small unordered member lists: the classes involved in one swap
    /// are a handful of attributes each, so linear scans beat ordered
    /// sets and their per-node allocations. The `Min(H_R)` part is
    /// built once per search ([`ExtentCtx`]) and cloned per candidate;
    /// only the candidate's own joins are folded in per call.
    classes: Vec<Vec<&'a AttrRef>>,
}

impl<'a> EqClasses<'a> {
    fn build(joins: impl Iterator<Item = &'a eve_misd::JoinConstraint>) -> Self {
        let mut eq = EqClasses {
            classes: Vec::new(),
        };
        eq.extend(joins);
        eq
    }

    /// Fold more join constraints into the classes. Extending a built
    /// set with further joins produces exactly the classes `build`
    /// would on the concatenated sequence.
    fn extend(&mut self, joins: impl Iterator<Item = &'a eve_misd::JoinConstraint>) {
        let classes = &mut self.classes;
        for jc in joins {
            for clause in jc.predicate.clauses() {
                if clause.op != eve_relational::CompareOp::Eq {
                    continue;
                }
                if let (ScalarExpr::Attr(a), ScalarExpr::Attr(b)) = (&clause.lhs, &clause.rhs) {
                    let ia = classes.iter().position(|c| c.contains(&a));
                    let ib = classes.iter().position(|c| c.contains(&b));
                    match (ia, ib) {
                        (Some(i), Some(j)) if i != j => {
                            let moved = classes.swap_remove(j.max(i));
                            classes[j.min(i)].extend(moved);
                        }
                        (Some(i), None) => {
                            classes[i].push(b);
                        }
                        (None, Some(j)) => {
                            classes[j].push(a);
                        }
                        (None, None) => {
                            classes.push(vec![a, b]);
                        }
                        _ => {}
                    }
                }
            }
        }
    }

    fn equated(&self, a: &AttrRef, b: &AttrRef) -> bool {
        self.classes
            .iter()
            .any(|c| c.contains(&a) && c.contains(&b))
    }
}

/// Do attributes `s` (of the cover relation) and `r` (of the dropped
/// relation) correspond — through a function-of constraint, or through
/// the equality-congruence of the join chains involved in the swap?
fn corresponds(mkb: &MetaKnowledgeBase, eq: &EqClasses<'_>, s: &AttrRef, r: &AttrRef) -> bool {
    if eq.equated(s, r) {
        return true;
    }
    mkb.function_ofs().iter().any(|f| {
        (&f.target == r && f.expr.attrs() == [s.clone()].into_iter().collect())
            || (&f.target == s && f.expr == ScalarExpr::Attr(r.clone()))
    })
}

/// Try to certify the swap "drop `R`, join `added`" with a PC constraint
/// between `added` and `R`. `used_r_attrs` are the attributes of `R`
/// that `added` must account for: the attributes it covers plus the join
/// attributes its chain transports.
fn certify_added_relation(
    mkb: &MetaKnowledgeBase,
    eq: &EqClasses<'_>,
    candidate_pcs: &[PartialComplete],
    added: &eve_relational::RelName,
    target: &eve_relational::RelName,
    used_r_attrs: &BTreeSet<&AttrName>,
) -> ExtentVerdict {
    let mut best = ExtentVerdict::Unknown;
    for pc in candidate_pcs {
        let (s_side, op, r_side) = if &pc.left.relation == added && &pc.right.relation == target {
            (&pc.left, pc.op, &pc.right)
        } else if &pc.right.relation == added && &pc.left.relation == target {
            (&pc.right, pc.op.flipped(), &pc.left)
        } else {
            continue;
        };
        if !pc_certifies(pc, mkb, eq, s_side, r_side, used_r_attrs) {
            continue;
        }
        let v = verdict_of_op(op);
        best = combine_certificates(best, v);
    }
    best
}

fn pc_certifies(
    pc: &PartialComplete,
    mkb: &MetaKnowledgeBase,
    eq: &EqClasses<'_>,
    s_side: &eve_misd::ProjSel,
    r_side: &eve_misd::ProjSel,
    used_r_attrs: &BTreeSet<&AttrName>,
) -> bool {
    // Selections on either side would change the compared sets in ways we
    // do not model — require plain projections.
    if !pc.left.cond.is_empty() || !pc.right.cond.is_empty() {
        return false;
    }
    let s_attrs = s_side.attr_refs();
    let r_attrs = r_side.attr_refs();
    if s_attrs.len() != r_attrs.len() {
        return false;
    }
    // The R side must mention every attribute this relation accounts for.
    if !used_r_attrs.iter().all(|a| r_side.attrs.contains(a)) {
        return false;
    }
    // Position-wise correspondence through function-of constraints or
    // join-chain equality congruence.
    s_attrs
        .iter()
        .zip(&r_attrs)
        .all(|(s, r)| corresponds(mkb, eq, s, r))
}

/// Two certificates between the same pair compose: `⊇` and `⊆` together
/// certify `≡`.
fn combine_certificates(a: ExtentVerdict, b: ExtentVerdict) -> ExtentVerdict {
    use ExtentVerdict::*;
    match (a, b) {
        (Unknown, x) | (x, Unknown) => x,
        (Equivalent, _) | (_, Equivalent) => Equivalent,
        (Superset, Subset) | (Subset, Superset) => Equivalent,
        (x, _) => x,
    }
}

/// Symbolically infer the relationship `V' vs V` for a rewriting built
/// from `rep`, where `dropped_conditions` counts *every* condition dropped
/// during assembly (from `C_Max/Min` and `C_Rest` alike).
///
/// Runs against a prebuilt [`crate::index::MkbIndex`]: the old MKB (PC
/// and function-of constraints referencing the deleted relation live
/// only there) comes from the index, and PC certificates are looked up
/// in its per-relation-pair buckets instead of scanning the full
/// constraint list for every added relation.
pub fn infer_extent_indexed(
    rm: &RMapping,
    rep: &Replacement,
    dropped_conditions: usize,
    index: &crate::index::MkbIndex<'_>,
) -> ExtentVerdict {
    infer_extent_with(&ExtentCtx::new(rm), rep, dropped_conditions, index)
}

/// Per-search invariants of the extent inference: everything derived
/// from the R-mapping alone, computed once and reused across every
/// candidate of one rewriting search.
pub(crate) struct ExtentCtx<'a> {
    rm: &'a RMapping,
    /// `Min(H_R)` relations minus `R`.
    survivors: BTreeSet<eve_relational::RelName>,
    /// Join attributes of `R` in `Min(H_R)`: every relation of the
    /// replacement chain must transport them faithfully.
    join_attrs: BTreeSet<AttrName>,
    /// Equality classes of the `Min(H_R)` joins alone — the shared
    /// prefix of every candidate's congruence.
    base_eq: EqClasses<'a>,
}

impl<'a> ExtentCtx<'a> {
    pub(crate) fn new(rm: &'a RMapping) -> Self {
        let mut join_attrs: BTreeSet<AttrName> = BTreeSet::new();
        for jc in &rm.min_joins {
            for a in jc.attrs() {
                if a.relation == rm.target {
                    join_attrs.insert(a.attr);
                }
            }
        }
        ExtentCtx {
            rm,
            survivors: rm.surviving_relations(),
            join_attrs,
            base_eq: EqClasses::build(rm.min_joins.iter()),
        }
    }
}

/// [`infer_extent_indexed`] with the per-search invariants hoisted into
/// an [`ExtentCtx`] — same verdict, none of the per-candidate set
/// rebuilding.
pub(crate) fn infer_extent_with(
    ctx: &ExtentCtx<'_>,
    rep: &Replacement,
    dropped_conditions: usize,
    index: &crate::index::MkbIndex<'_>,
) -> ExtentVerdict {
    let mkb = index.mkb();
    let rm = ctx.rm;
    let added: Vec<_> = rep
        .relations
        .iter()
        .filter(|r| !ctx.survivors.contains(*r))
        .collect();

    // Equality congruence over the join chains involved in the swap:
    // the prebuilt Min(H_R) classes plus the candidate's own joins.
    let mut eq = ctx.base_eq.clone();
    eq.extend(rep.joins.iter());

    let mut verdict = if added.is_empty() {
        // Pure drop: R leaves the join, nothing is added — widening.
        ExtentVerdict::Superset
    } else {
        let mut v = ExtentVerdict::Equivalent;
        for s in added {
            // What must S account for: the attributes it covers, plus the
            // join attributes (its presence in the chain must not lose
            // key combinations of R).
            let mut used: BTreeSet<&AttrName> = ctx.join_attrs.iter().collect();
            for (covered, cover) in rep.covers.iter() {
                if &cover.source == s {
                    used.insert(&covered.attr);
                }
            }
            v = v.meet(certify_added_relation(
                mkb,
                &eq,
                index.pcs_between(s, &rm.target),
                s,
                &rm.target,
                &used,
            ));
        }
        v
    };

    if dropped_conditions > 0 {
        verdict = verdict.meet(ExtentVerdict::Superset);
    }
    verdict
}

/// Empirically compare `V'` against `V` on a concrete database: evaluate
/// both and compare the projections onto the interface columns they
/// share (by interface *name*). Reads as `V' <relation> V`.
pub fn empirical_extent(
    rewritten: &ViewDefinition,
    original: &ViewDefinition,
    db: &Database,
    funcs: &FuncRegistry,
) -> Result<ExtentRelation, RelationalError> {
    let v_new = evaluate_view(rewritten, db, funcs)?;
    let v_old = evaluate_view(original, db, funcs)?;

    let names_new: BTreeSet<AttrName> = rewritten.interface_names().into_iter().collect();
    let names_old: BTreeSet<AttrName> = original.interface_names().into_iter().collect();
    let common: Vec<AttrName> = names_new.intersection(&names_old).cloned().collect();

    let cols_new: Vec<(AttrRef, ScalarExpr)> = common
        .iter()
        .map(|n| {
            let src = AttrRef::new(rewritten.name.as_str(), n.clone());
            (AttrRef::new("common", n.clone()), ScalarExpr::Attr(src))
        })
        .collect();
    let cols_old: Vec<(AttrRef, ScalarExpr)> = common
        .iter()
        .map(|n| {
            let src = AttrRef::new(original.name.as_str(), n.clone());
            (AttrRef::new("common", n.clone()), ScalarExpr::Attr(src))
        })
        .collect();

    let p_new = project(&v_new, &cols_new, funcs)?;
    let p_old = project(&v_old, &cols_old, funcs)?;
    Ok(compare_extents(&p_new, &p_old))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meet_table() {
        use ExtentVerdict::*;
        assert_eq!(Equivalent.meet(Superset), Superset);
        assert_eq!(Superset.meet(Superset), Superset);
        assert_eq!(Subset.meet(Subset), Subset);
        assert_eq!(Superset.meet(Subset), Unknown);
        assert_eq!(Unknown.meet(Equivalent), Unknown);
    }

    #[test]
    fn certificates_compose_to_equivalence() {
        use ExtentVerdict::*;
        assert_eq!(combine_certificates(Superset, Subset), Equivalent);
        assert_eq!(combine_certificates(Unknown, Superset), Superset);
        assert_eq!(combine_certificates(Equivalent, Subset), Equivalent);
    }

    #[test]
    fn p3_satisfaction() {
        use ExtentVerdict::*;
        assert!(satisfies_extent_param(ViewExtent::Any, Unknown));
        assert!(satisfies_extent_param(ViewExtent::Superset, Superset));
        assert!(satisfies_extent_param(ViewExtent::Superset, Equivalent));
        assert!(!satisfies_extent_param(ViewExtent::Superset, Subset));
        assert!(!satisfies_extent_param(ViewExtent::Equivalent, Superset));
        assert!(satisfies_extent_param(ViewExtent::Subset, Subset));
        assert!(!satisfies_extent_param(ViewExtent::Subset, Unknown));
    }
}

#[cfg(test)]
mod infer_tests {
    use super::*;
    use crate::mapping::RMapping;
    use crate::replacement::{CoverChoice, Replacement};
    use eve_misd::{parse_misd, JoinConstraint, MetaKnowledgeBase};
    use eve_relational::RelName;
    use std::collections::BTreeMap;

    /// T (target) joined with W; cover relation Cov; optional PCs.
    fn mkb(pcs: &str) -> MetaKnowledgeBase {
        parse_misd(&format!(
            "RELATION IS1 T(k int, v int)
             RELATION IS2 W(k int, w int)
             RELATION IS3 Cov(k int, v int)
             JOIN JT: T, W ON T.k = W.k
             JOIN JC: W, Cov ON W.k = Cov.k
             FUNCOF Fk: T.k = Cov.k
             FUNCOF Fv: T.v = Cov.v
             {pcs}"
        ))
        .expect("test MKB parses")
    }

    /// Test shorthand: build a read-only index (same MKB on both sides —
    /// extent inference only consults the old MKB) and infer.
    fn infer_extent(
        rm: &RMapping,
        rep: &Replacement,
        dropped_conditions: usize,
        mkb: &MetaKnowledgeBase,
    ) -> ExtentVerdict {
        let opts = crate::options::CvsOptions::default();
        let index = crate::index::MkbIndex::new(mkb, mkb, &opts);
        infer_extent_indexed(rm, rep, dropped_conditions, &index)
    }

    fn rm(mkb: &MetaKnowledgeBase) -> RMapping {
        RMapping {
            target: RelName::new("T"),
            max_relations: ["T", "W"].into_iter().map(RelName::new).collect(),
            min_joins: vec![mkb.join_by_id("JT").expect("JT").clone()],
            c_max_min: Vec::new(),
            rest_relations: Default::default(),
            c_rest: Vec::new(),
        }
    }

    fn rep(mkb: &MetaKnowledgeBase, with_cover: bool) -> Replacement {
        let mut covers = BTreeMap::new();
        let mut relations: std::collections::BTreeSet<RelName> =
            [RelName::new("W")].into_iter().collect();
        let mut joins: Vec<JoinConstraint> = Vec::new();
        if with_cover {
            covers.insert(
                AttrRef::new("T", "v"),
                CoverChoice {
                    funcof_id: "Fv".into(),
                    source: RelName::new("Cov"),
                    replacement: ScalarExpr::attr("Cov", "v"),
                },
            );
            relations.insert(RelName::new("Cov"));
            joins.push(mkb.join_by_id("JC").expect("JC").clone());
        }
        Replacement {
            covers: std::sync::Arc::new(covers),
            relations,
            joins,
            c_max_min: Default::default(),
            dropped_conditions: Default::default(),
        }
    }

    #[test]
    fn pure_drop_is_superset() {
        let m = mkb("");
        let verdict = infer_extent(&rm(&m), &rep(&m, false), 0, &m);
        assert_eq!(verdict, ExtentVerdict::Superset);
    }

    #[test]
    fn uncertified_cover_is_unknown() {
        let m = mkb("");
        let verdict = infer_extent(&rm(&m), &rep(&m, true), 0, &m);
        assert_eq!(verdict, ExtentVerdict::Unknown);
    }

    #[test]
    fn pc_superset_certifies() {
        let m = mkb("PC P1: Cov(k, v) superset T(k, v)");
        let verdict = infer_extent(&rm(&m), &rep(&m, true), 0, &m);
        assert_eq!(verdict, ExtentVerdict::Superset);
    }

    #[test]
    fn both_directions_certify_equivalence() {
        let m = mkb("PC P1: Cov(k, v) superset T(k, v)
             PC P2: Cov(k, v) subset T(k, v)");
        let verdict = infer_extent(&rm(&m), &rep(&m, true), 0, &m);
        assert_eq!(verdict, ExtentVerdict::Equivalent);
    }

    #[test]
    fn equivalence_pc_certifies_directly() {
        let m = mkb("PC P1: Cov(k, v) equivalent T(k, v)");
        let verdict = infer_extent(&rm(&m), &rep(&m, true), 0, &m);
        assert_eq!(verdict, ExtentVerdict::Equivalent);
    }

    #[test]
    fn drops_degrade_equivalence_to_superset() {
        let m = mkb("PC P1: Cov(k, v) equivalent T(k, v)");
        let verdict = infer_extent(&rm(&m), &rep(&m, true), 2, &m);
        assert_eq!(verdict, ExtentVerdict::Superset);
    }

    #[test]
    fn subset_pc_with_drops_is_unknown() {
        let m = mkb("PC P1: Cov(k, v) subset T(k, v)");
        assert_eq!(
            infer_extent(&rm(&m), &rep(&m, true), 0, &m),
            ExtentVerdict::Subset
        );
        // Dropping conditions widens; combined with a subset swap the
        // direction is indeterminate.
        assert_eq!(
            infer_extent(&rm(&m), &rep(&m, true), 1, &m),
            ExtentVerdict::Unknown
        );
    }

    #[test]
    fn narrow_pc_does_not_certify() {
        // PC misses the covered attribute v: not a valid certificate.
        let m = mkb("PC P1: Cov(k) superset T(k)");
        assert_eq!(
            infer_extent(&rm(&m), &rep(&m, true), 0, &m),
            ExtentVerdict::Unknown
        );
    }

    #[test]
    fn conditional_pc_does_not_certify() {
        // Selections on PC sides are outside the rule's model.
        let m = mkb("PC P1: Cov(k, v) WHERE Cov.v > 0 superset T(k, v)");
        assert_eq!(
            infer_extent(&rm(&m), &rep(&m, true), 0, &m),
            ExtentVerdict::Unknown
        );
    }
}
