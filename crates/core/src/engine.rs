//! The synchronization engine: per-operator strategies behind one trait.
//!
//! The three-step strategy of §4 fixes *when* views are synchronized
//! (MKB evolution → affected-view detection → per-view rewriting) but
//! each change operator has its own rewriting algorithm: CVS proper for
//! `delete-relation` (§5), the simplified variant for
//! `delete-attribute`, and transparent reference rewriting for renames.
//! [`SynchronizationStrategy`] captures that per-operator contract —
//! given one view, one change, and the per-change [`MkbIndex`], produce
//! the legal rewritings best-first — so the synchronizer's apply loop is
//! pure dispatch plus one shared outcome-assembly step
//! ([`synchronize_view`]), instead of a per-operator `match` that
//! duplicated the retain/rank/adopt logic.
//!
//! The [`SvsBaseline`] strategy plugs the one-step-away baseline into
//! the same interface, which is what lets experiments swap algorithms
//! without touching the synchronizer.

use crate::cost::CostModel;
use crate::delete_attribute::synchronize_delete_attribute_indexed;
use crate::error::CvsError;
use crate::extent::ExtentVerdict;
use crate::index::MkbIndex;
use crate::legal::LegalRewriting;
use crate::options::CvsOptions;
use crate::rewrite::{cvs_delete_relation_searched, SearchResult};
use crate::svs::svs_delete_relation_searched;
use crate::synchronizer::ViewOutcome;
use eve_esql::ViewDefinition;
use eve_misd::CapabilityChange;

/// Per-call search policy handed from the synchronizer to a strategy:
/// what to filter (`require_p3`) and how to rank (`cost_model`).
///
/// Streaming strategies push both *into* the search, so a budgeted
/// top-k is spent on rewritings the caller will actually keep;
/// list-based strategies may ignore it (the engine re-applies the
/// retain/rank policy uniformly afterwards — a no-op for streams).
#[derive(Debug, Clone, Copy, Default)]
pub struct SearchContext<'a> {
    /// Keep only rewritings whose extent verdict certifies the view's
    /// extent parameter (P3).
    pub require_p3: bool,
    /// Rank candidates by assessed cost instead of the structural
    /// best-first order.
    pub cost_model: Option<&'a CostModel>,
}

/// One per-operator view-synchronization algorithm.
///
/// Implementations return the legal rewritings for `view` under
/// `change`, ordered best-first together with the [`SearchStats`]
/// describing how they were found, or an error when the view cannot be
/// synchronized (which the engine turns into
/// [`ViewOutcome::Disabled`]). The [`MkbIndex`] carries every
/// MKB-derived structure the algorithms need, built once per change.
///
/// [`SearchStats`]: crate::rewrite::SearchStats
pub trait SynchronizationStrategy {
    /// Synchronize one view under one change.
    fn synchronize(
        &self,
        view: &ViewDefinition,
        change: &CapabilityChange,
        index: &MkbIndex<'_>,
        opts: &CvsOptions,
        ctx: SearchContext<'_>,
    ) -> Result<SearchResult, CvsError>;
}

fn unsupported(change: &CapabilityChange) -> CvsError {
    CvsError::UnsupportedChange {
        change: change.to_string(),
    }
}

/// CVS proper (§5) for `delete-relation R`.
#[derive(Debug, Clone, Copy, Default)]
pub struct CvsDeleteRelation;

impl SynchronizationStrategy for CvsDeleteRelation {
    fn synchronize(
        &self,
        view: &ViewDefinition,
        change: &CapabilityChange,
        index: &MkbIndex<'_>,
        opts: &CvsOptions,
        ctx: SearchContext<'_>,
    ) -> Result<SearchResult, CvsError> {
        match change {
            CapabilityChange::DeleteRelation(r) => {
                cvs_delete_relation_searched(view, r, index, opts, ctx.require_p3, ctx.cost_model)
            }
            other => Err(unsupported(other)),
        }
    }
}

/// The simplified algorithm for `delete-attribute R.A`.
#[derive(Debug, Clone, Copy, Default)]
pub struct DeleteAttribute;

impl SynchronizationStrategy for DeleteAttribute {
    fn synchronize(
        &self,
        view: &ViewDefinition,
        change: &CapabilityChange,
        index: &MkbIndex<'_>,
        opts: &CvsOptions,
        _ctx: SearchContext<'_>,
    ) -> Result<SearchResult, CvsError> {
        match change {
            CapabilityChange::DeleteAttribute(a) => {
                synchronize_delete_attribute_indexed(view, a, index, opts)
                    .map(SearchResult::exhaustive)
            }
            other => Err(unsupported(other)),
        }
    }
}

/// Transparent reference rewriting for `rename-relation` /
/// `rename-attribute` (non-invalidating in the paper's taxonomy): the
/// single rewriting is extent-equivalent by construction.
#[derive(Debug, Clone, Copy, Default)]
pub struct RenameForward;

impl SynchronizationStrategy for RenameForward {
    fn synchronize(
        &self,
        view: &ViewDefinition,
        change: &CapabilityChange,
        _index: &MkbIndex<'_>,
        _opts: &CvsOptions,
        _ctx: SearchContext<'_>,
    ) -> Result<SearchResult, CvsError> {
        match change {
            CapabilityChange::RenameRelation { from, to } => {
                Ok(SearchResult::exhaustive(vec![rename_rewriting(
                    rename_relation_in_view(view, from, to),
                )]))
            }
            CapabilityChange::RenameAttribute { from, to } => {
                Ok(SearchResult::exhaustive(vec![rename_rewriting(
                    rename_attr_in_view(view, from, to),
                )]))
            }
            other => Err(unsupported(other)),
        }
    }
}

/// The one-step-away SVS baseline (\[4\], \[12\]) for `delete-relation`,
/// behind the same interface: CVS with the search radius clamped to a
/// single join-constraint hop.
#[derive(Debug, Clone, Copy, Default)]
pub struct SvsBaseline;

impl SynchronizationStrategy for SvsBaseline {
    fn synchronize(
        &self,
        view: &ViewDefinition,
        change: &CapabilityChange,
        index: &MkbIndex<'_>,
        opts: &CvsOptions,
        ctx: SearchContext<'_>,
    ) -> Result<SearchResult, CvsError> {
        match change {
            CapabilityChange::DeleteRelation(r) => {
                svs_delete_relation_searched(view, r, index, opts, ctx.require_p3, ctx.cost_model)
            }
            other => Err(unsupported(other)),
        }
    }
}

/// The strategy the synchronizer dispatches to for `change`, or `None`
/// for changes that never affect existing views (`add-relation`,
/// `add-attribute`).
pub fn strategy_for(change: &CapabilityChange) -> Option<&'static dyn SynchronizationStrategy> {
    match change {
        CapabilityChange::DeleteRelation(_) => Some(&CvsDeleteRelation),
        CapabilityChange::DeleteAttribute(_) => Some(&DeleteAttribute),
        CapabilityChange::RenameRelation { .. } | CapabilityChange::RenameAttribute { .. } => {
            Some(&RenameForward)
        }
        CapabilityChange::AddRelation(_) | CapabilityChange::AddAttribute { .. } => None,
    }
}

/// Synchronize one (affected) view: dispatch to the operator's strategy
/// and assemble the [`ViewOutcome`] — the single place where the
/// retain-by-P3 / rank-by-cost / adopt-best policy lives.
///
/// `require_p3` discards uncertified rewritings before adoption;
/// `cost_model`, when present, re-ranks the candidates (otherwise the
/// strategy's best-first order stands).
pub fn synchronize_view(
    view: &ViewDefinition,
    change: &CapabilityChange,
    index: &MkbIndex<'_>,
    opts: &CvsOptions,
    require_p3: bool,
    cost_model: Option<&CostModel>,
) -> ViewOutcome {
    let Some(strategy) = strategy_for(change) else {
        return ViewOutcome::Unchanged;
    };
    // The per-view task entry site. Under the synchronizer fan-out each
    // task runs scoped by view name, so a plan can target one view's
    // attempt sequence without touching its siblings.
    crate::faults::hit("view.sync");
    let ctx = SearchContext {
        require_p3,
        cost_model,
    };
    // Histogram (not span) so direct engine callers — benches, tests —
    // feed the same per-view latency distribution as the fan-out path.
    let timer = crate::telem::start_timer();
    let result = strategy.synchronize(view, change, index, opts, ctx);
    crate::telem::stop_timer("engine.view_sync_ns", timer);
    match result {
        Ok(SearchResult {
            mut rewritings,
            mut stats,
        }) => {
            // Streaming strategies already applied the policy inside
            // the search (their list is P3-filtered and cost-ranked);
            // for list-based strategies this is where it happens. Both
            // are stable no-ops when already done.
            if require_p3 {
                rewritings.retain(|r| r.satisfies_p3);
            }
            if rewritings.is_empty() {
                return ViewOutcome::Disabled {
                    reason: CvsError::NoLegalRewriting,
                };
            }
            if let Some(model) = cost_model {
                model.rank(view, &mut rewritings);
            }
            stats.kept = rewritings.len();
            let chosen = Box::new(rewritings.remove(0));
            ViewOutcome::Rewritten {
                chosen,
                alternatives: rewritings,
                stats,
            }
        }
        Err(reason) => ViewOutcome::Disabled { reason },
    }
}

fn rename_relation_in_view(
    view: &ViewDefinition,
    from: &eve_relational::RelName,
    to: &eve_relational::RelName,
) -> ViewDefinition {
    let mut v = view.clone();
    for f in &mut v.from {
        if &f.relation == from {
            f.relation = to.clone();
        }
    }
    for s in &mut v.select {
        s.expr = s.expr.rename_relation(from, to);
    }
    for c in &mut v.conditions {
        c.clause = c.clause.rename_relation(from, to);
    }
    v
}

fn rename_attr_in_view(
    view: &ViewDefinition,
    from: &eve_relational::AttrRef,
    to: &eve_relational::AttrName,
) -> ViewDefinition {
    let mut v = view.clone();
    let new_ref = eve_relational::ScalarExpr::Attr(eve_relational::AttrRef::new(
        from.relation.clone(),
        to.clone(),
    ));
    for s in &mut v.select {
        // Preserve the exported name of a renamed bare attribute.
        if s.alias.is_none() && s.expr == eve_relational::ScalarExpr::Attr(from.clone()) {
            s.alias = Some(from.attr.clone());
        }
        s.expr = s.expr.substitute(from, &new_ref);
    }
    for c in &mut v.conditions {
        c.clause = c.clause.substitute(from, &new_ref);
    }
    v
}

/// Wrap a transparently-renamed view as an (extent-preserving) rewriting.
fn rename_rewriting(view: ViewDefinition) -> LegalRewriting {
    let kept: Vec<usize> = (0..view.select.len()).collect();
    let relations = view.from.iter().map(|f| f.relation.clone()).collect();
    LegalRewriting {
        view,
        replacement: crate::replacement::Replacement {
            covers: Default::default(),
            relations,
            joins: Vec::new(),
            c_max_min: Default::default(),
            dropped_conditions: Default::default(),
        },
        verdict: ExtentVerdict::Equivalent,
        satisfies_p3: true,
        kept_select: kept,
        dropped_conditions: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::travel_mkb;
    use eve_esql::parse_view;
    use eve_misd::evolve;
    use eve_relational::{AttrRef, RelName};

    fn cpa_view() -> ViewDefinition {
        parse_view(
            "CREATE VIEW CPA AS
             SELECT C.Name (false, true), F.Dest (true, true), F.PName (true, true)
             FROM Customer C, FlightRes F WHERE (C.Name = F.PName) (false, true)",
        )
        .unwrap()
    }

    #[test]
    fn dispatch_table_covers_all_operators() {
        assert!(strategy_for(&CapabilityChange::DeleteRelation(RelName::new("X"))).is_some());
        assert!(strategy_for(&CapabilityChange::DeleteAttribute(AttrRef::new("X", "a"))).is_some());
        assert!(strategy_for(&CapabilityChange::RenameRelation {
            from: RelName::new("X"),
            to: RelName::new("Y"),
        })
        .is_some());
        assert!(strategy_for(&CapabilityChange::AddRelation(
            eve_misd::RelationDescription::new("IS9", "New", vec![])
        ))
        .is_none());
    }

    #[test]
    fn strategies_reject_foreign_operators() {
        let mkb = travel_mkb();
        let opts = CvsOptions::default();
        let index = MkbIndex::new(&mkb, &mkb, &opts);
        let view = cpa_view();
        let wrong = CapabilityChange::DeleteAttribute(AttrRef::new("Customer", "Name"));
        let err = CvsDeleteRelation
            .synchronize(&view, &wrong, &index, &opts, SearchContext::default())
            .unwrap_err();
        assert!(matches!(err, CvsError::UnsupportedChange { .. }));
    }

    #[test]
    fn engine_outcome_matches_direct_cvs() {
        let mkb = travel_mkb();
        let change = CapabilityChange::DeleteRelation(RelName::new("Customer"));
        let mkb2 = evolve(&mkb, &change).unwrap();
        let opts = CvsOptions::default();
        let index = MkbIndex::new(&mkb, &mkb2, &opts);
        let view = cpa_view();
        let outcome = synchronize_view(&view, &change, &index, &opts, false, None);
        let ViewOutcome::Rewritten {
            chosen,
            alternatives,
            stats,
        } = outcome
        else {
            panic!("expected rewriting");
        };
        let direct = crate::rewrite::cvs_delete_relation_indexed(
            &view,
            &RelName::new("Customer"),
            &index,
            &opts,
        )
        .unwrap();
        assert_eq!(*chosen, direct[0]);
        assert_eq!(alternatives.len(), direct.len() - 1);
        assert_eq!(stats.kept, direct.len());
        assert!(stats.generated >= direct.len());
        assert!(!stats.budget_exhausted);
    }

    #[test]
    fn svs_baseline_is_cvs_with_one_hop() {
        // On a two-hop chain A—M—Cov, CVS finds the rewriting and the SVS
        // baseline does not — through the same engine interface.
        let mkb = eve_misd::parse_misd(
            "RELATION IS1 A(x str, k str)
             RELATION IS2 M(k str)
             RELATION IS3 B(k str, y str)
             RELATION IS4 Cov(x str, k str)
             JOIN J0: A, B ON A.k = B.k
             JOIN J1: B, M ON B.k = M.k
             JOIN J2: M, Cov ON M.k = Cov.k
             FUNCOF F1: A.x = Cov.x
             FUNCOF F2: A.k = Cov.k",
        )
        .unwrap();
        let change = CapabilityChange::DeleteRelation(RelName::new("A"));
        let mkb2 = evolve(&mkb, &change).unwrap();
        let opts = CvsOptions::default();
        let index = MkbIndex::new(&mkb, &mkb2, &opts);
        let view = parse_view(
            "CREATE VIEW V AS SELECT A.x (false, true), B.y FROM A, B WHERE (A.k = B.k)",
        )
        .unwrap();
        assert!(CvsDeleteRelation
            .synchronize(&view, &change, &index, &opts, SearchContext::default())
            .is_ok());
        assert!(SvsBaseline
            .synchronize(&view, &change, &index, &opts, SearchContext::default())
            .is_err());
    }

    #[test]
    fn rename_routes_through_uniform_postprocessing() {
        let mkb = travel_mkb();
        let change = CapabilityChange::RenameRelation {
            from: RelName::new("FlightRes"),
            to: RelName::new("Flights"),
        };
        let mkb2 = evolve(&mkb, &change).unwrap();
        let opts = CvsOptions::default();
        let index = MkbIndex::new(&mkb, &mkb2, &opts);
        // Renames are P3-equivalent, so require_p3 must not disable them.
        let outcome = synchronize_view(&cpa_view(), &change, &index, &opts, true, None);
        let ViewOutcome::Rewritten {
            chosen,
            alternatives,
            ..
        } = outcome
        else {
            panic!("expected rewriting");
        };
        assert!(alternatives.is_empty());
        assert!(chosen.view.uses_relation(&RelName::new("Flights")));
        assert_eq!(chosen.verdict, ExtentVerdict::Equivalent);
    }
}
