//! # eve-core — the CVS algorithm
//!
//! The paper's primary contribution: **view synchronization** — evolving
//! E-SQL view definitions so that they survive capability changes of the
//! underlying information sources — via the **Complex View
//! Synchronization (CVS)** algorithm (§5 of the paper).
//!
//! The three-step strategy of §4:
//!
//! 1. **MKB evolution** — `eve_misd::evolve` produces `MKB'`;
//! 2. **affected-view detection** — [`affected`] decides which views a
//!    change touches, directly or through MKB evolution;
//! 3. **view rewriting** — for curable views, find *legal rewritings*
//!    (Def. 1) guided by the E-SQL evolution preferences.
//!
//! Step 3 for the hardest operator, `delete-relation R`, is CVS proper:
//!
//! * [`mapping`] computes the **R-mapping** (Def. 2): the maximal
//!   sub-join `Max(V_R)` of the view that is "covered" by MKB join
//!   constraints, and the minimal MKB join expression `Min(H_R)`
//!   containing it;
//! * [`replacement`] computes the **R-replacement** set (Def. 3):
//!   candidate join expressions over `H'_R(MKB')` containing every
//!   surviving piece of `Min(H_R)` plus a **cover** (via function-of
//!   constraints) for each replaceable attribute of `R`;
//! * [`rewrite`] assembles a synchronized view `V'` from each candidate
//!   (Steps 4–5: substitution, WHERE-consistency check, evolution
//!   parameters for new components);
//! * [`extent`] addresses Step 6 / property P3: certifying the
//!   relationship between the old and new extents using the MKB's
//!   partial/complete constraints (symbolically) and the relational
//!   engine (empirically);
//! * [`legal`] packages the Def. 1 legality checks (P1, P2, P4).
//!
//! [`delete_attribute`] implements the simplified algorithm for
//! `delete-attribute` the paper describes as "a simplified version" of
//! CVS, and [`svs`] implements the *one-step-away* baseline of the
//! authors' prior work (what CVS is shown to improve upon).
//!
//! The **synchronization engine** ties the steps together:
//!
//! * [`index`] — a per-change [`MkbIndex`]: the hypergraph `H(MKB)`, its
//!   connected components, the capability-filtered `H'(MKB')`, the
//!   attribute→cover map and the relation-pair→PC-constraint map, all
//!   precomputed **once** per capability change and shared by every
//!   affected view;
//! * [`engine`] — one [`SynchronizationStrategy`] per change operator
//!   ([`CvsDeleteRelation`], [`DeleteAttribute`], [`RenameForward`],
//!   [`SvsBaseline`]) behind a uniform trait, so preference filtering,
//!   cost ranking and outcome assembly live in exactly one place;
//! * [`synchronizer`] — drives the pipeline for all six change operators
//!   over a set of registered views (what-if previews, evolution
//!   history, rollback, disabled-view revival), holding its state as
//!   copy-on-write `Arc` snapshots so concurrent readers get cheap
//!   handles instead of deep clones.
//!
//! Beyond the paper (see DESIGN.md, extensions): [`cost`] ranks legal
//! rewritings for *maximal view preservation* (§7 future work),
//! [`materialize`]/[`maintain`]/[`adapt`] close the data loop
//! (materialization, counting-based incremental maintenance, and the
//! Gupta-style adaptation of §6's related work), [`answering`]
//! implements the classical answering-queries-using-views baseline,
//! [`explain`] narrates rewritings, and [`service`] is a thread-safe
//! handle for service deployments.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adapt;
pub mod affected;
pub mod answering;
pub mod clock;
pub mod cost;
pub mod delete_attribute;
pub mod delta;
pub mod engine;
pub mod error;
pub mod eval;
pub mod explain;
pub mod extent;
pub(crate) mod faults;
pub mod index;
pub mod legal;
pub mod maintain;
pub mod mapping;
pub mod materialize;
pub mod options;
pub mod replacement;
pub mod rewrite;
pub mod service;
pub mod svs;
pub mod synchronizer;
pub(crate) mod telem;

#[cfg(test)]
pub(crate) mod testutil;

pub use adapt::{adapt_materialization, AdaptationReport, AdaptationStrategy};
pub use affected::{affected_views, is_affected, is_evaluable, revivable};
pub use answering::{answer_using_view, answer_using_views};
pub use clock::VirtualClock;
pub use cost::{rank_rewritings as rank_by_cost, CostBreakdown, CostModel};
pub use delete_attribute::synchronize_delete_attribute_indexed;
pub use delta::{DeltaSummary, IndexCore, MkbDelta};
pub use engine::{
    strategy_for, synchronize_view, CvsDeleteRelation, DeleteAttribute, RenameForward,
    SearchContext, SvsBaseline, SynchronizationStrategy,
};
pub use error::CvsError;
pub use eval::evaluate_view;
pub use explain::{explain_rewriting, explain_rewriting_with_stats};
pub use extent::{empirical_extent, infer_extent_indexed, satisfies_extent_param, ExtentVerdict};
pub use index::{CacheStats, MemoCarry, MkbIndex};
pub use legal::LegalRewriting;
pub use maintain::{CountedView, Delta, DeltaError};
pub use mapping::{compute_r_mapping, r_mapping_with_index, RMapping};
pub use materialize::{MaterializedView, RefreshDelta};
pub use options::{CvsOptions, FailurePolicy, ImplicationMode, IndexMaintenance, SearchBudget};
pub use replacement::{compute_replacements_indexed, CoverChoice, Replacement};
pub use rewrite::{
    cvs_delete_relation_indexed, cvs_delete_relation_searched, SearchResult, SearchStats,
};
pub use service::{FailedChange, SharedSynchronizer};
pub use svs::{svs_delete_relation_indexed, svs_delete_relation_searched};
pub use synchronizer::{
    ChangeOutcome, Snapshot, SyncFailure, SyncPanic, SyncReport, Synchronizer, SynchronizerBuilder,
    VersionEntry, ViewOutcome,
};
