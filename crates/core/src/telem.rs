//! Crate-internal facade over `eve-telemetry`.
//!
//! With the default `telemetry` feature this re-exports the real API;
//! without it every call site compiles down to a no-op (the overhead
//! guard builds `--no-default-features` to measure against that
//! baseline). Call sites use `crate::telem::…` and never mention the
//! feature themselves.

#[cfg(feature = "telemetry")]
pub(crate) use eve_telemetry::{
    counter_add, enabled, flight_fault, flight_trigger, gauge_set, span, span_under, start_timer,
    stop_timer,
};

#[cfg(not(feature = "telemetry"))]
pub(crate) use inert::*;

#[cfg(not(feature = "telemetry"))]
mod inert {
    //! Signature-compatible no-op mirror of the `eve-telemetry` API.
    #![allow(dead_code)]

    use std::time::Instant;

    #[inline(always)]
    pub(crate) fn enabled() -> bool {
        false
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub(crate) struct SpanCtx;

    impl SpanCtx {
        pub(crate) const fn root() -> SpanCtx {
            SpanCtx
        }
    }

    #[inline(always)]
    pub(crate) fn current() -> SpanCtx {
        SpanCtx
    }

    pub(crate) struct Span;

    impl Span {
        #[inline(always)]
        pub(crate) fn label(&mut self, _f: impl FnOnce() -> String) {}

        #[inline(always)]
        pub(crate) fn field(&mut self, _key: &'static str, _value: u64) {}

        #[inline(always)]
        pub(crate) fn is_recording(&self) -> bool {
            false
        }

        #[inline(always)]
        pub(crate) fn ctx(&self) -> SpanCtx {
            SpanCtx
        }
    }

    #[inline(always)]
    pub(crate) fn span(_name: &'static str) -> Span {
        Span
    }

    #[inline(always)]
    pub(crate) fn span_under(_name: &'static str, _parent: SpanCtx) -> Span {
        Span
    }

    #[inline(always)]
    pub(crate) fn counter_add(_name: &str, _n: u64) {}

    #[inline(always)]
    pub(crate) fn gauge_set(_name: &str, _value: u64) {}

    #[inline(always)]
    pub(crate) fn flight_fault(_scope: &str, _site: &str, _hit: u64, _kind: &str) {}

    #[inline(always)]
    pub(crate) fn flight_trigger(_reason: &str, _change: &str, _view: &str) {}

    #[inline(always)]
    pub(crate) fn record_duration_ns(_name: &str, _ns: u64) {}

    #[inline(always)]
    pub(crate) fn start_timer() -> Option<Instant> {
        None
    }

    #[inline(always)]
    pub(crate) fn stop_timer(_name: &str, _timer: Option<Instant>) {}
}
