//! A thread-safe synchronizer handle for service deployments.
//!
//! The paper's setting is a *large-scale* information system: many
//! clients read view definitions (and route queries through them) while
//! capability changes arrive asynchronously from autonomous ISs.
//! [`SharedSynchronizer`] wraps the single-writer [`Synchronizer`] in a
//! reader/writer lock so that
//!
//! * any number of threads can resolve view definitions concurrently,
//! * one change at a time is applied atomically — readers never observe
//!   a half-synchronized state (the MKB and every view definition switch
//!   together).
//!
//! The lock is `std::sync::RwLock`; a poisoned lock (a panic while
//! holding it) must not wedge the warehouse, so every acquisition
//! recovers the guard from the poison error — readers then still see
//! the last consistent snapshot, since [`Synchronizer::apply`] only
//! commits fully-built state.

use crate::synchronizer::{ChangeOutcome, SyncPanic, Synchronizer};
use crate::telem;
use eve_esql::ViewDefinition;
use eve_misd::{CapabilityChange, MetaKnowledgeBase, MisdError};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// The identity of the change whose `apply` panicked and poisoned the
/// writer lock — what a reader recovering the lock is actually
/// recovering *from*. Recorded by [`SharedSynchronizer::apply`], surfaced
/// by [`SharedSynchronizer::last_failure`] and attached to the
/// `poison-recovery` telemetry span every recovery emits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailedChange {
    /// The capability change whose application died.
    pub change: String,
    /// The view whose task panicked, when the synchronizer could name it
    /// (a [`SyncPanic`] payload); `None` for foreign panics.
    pub view: Option<String>,
    /// The panic message.
    pub message: String,
}

impl fmt::Display for FailedChange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (view {}): {}",
            self.change,
            self.view.as_deref().unwrap_or("?"),
            self.message
        )
    }
}

/// A cloneable, thread-safe handle to a synchronizer.
#[derive(Clone)]
pub struct SharedSynchronizer {
    inner: Arc<RwLock<Synchronizer>>,
    /// Identity of the most recent panicking change (see
    /// [`FailedChange`]); `lock()` recovery keeps it readable even while
    /// the main lock is poisoned.
    last_panic: Arc<Mutex<Option<FailedChange>>>,
}

impl SharedSynchronizer {
    /// Wrap a synchronizer.
    pub fn new(sync: Synchronizer) -> Self {
        SharedSynchronizer {
            inner: Arc::new(RwLock::new(sync)),
            last_panic: Arc::new(Mutex::new(None)),
        }
    }

    /// Count a poison recovery and emit a `poison-recovery` telemetry
    /// span labelled with the recorded identity of the panicking change,
    /// so the trace answers "recovered from *what*?".
    fn note_poison_recovery(&self) {
        telem::counter_add("service.poison_recoveries", 1);
        if telem::enabled() {
            let mut span = telem::span("poison-recovery");
            span.label(|| {
                self.last_failure()
                    .map(|f| f.to_string())
                    .unwrap_or_else(|| "unknown failure".to_string())
            });
        }
    }

    fn read_lock(&self) -> RwLockReadGuard<'_, Synchronizer> {
        let wait = telem::start_timer();
        let result = self.inner.read();
        telem::stop_timer("service.read_wait_ns", wait);
        result.unwrap_or_else(|e| {
            self.note_poison_recovery();
            e.into_inner()
        })
    }

    fn write_lock(&self) -> RwLockWriteGuard<'_, Synchronizer> {
        let wait = telem::start_timer();
        let result = self.inner.write();
        telem::stop_timer("service.write_wait_ns", wait);
        result.unwrap_or_else(|e| {
            self.note_poison_recovery();
            e.into_inner()
        })
    }

    /// The identity of the most recent change whose `apply` panicked
    /// through this handle (`None` when none has). Readers recovering a
    /// poisoned lock use this to learn what they are recovering from —
    /// including from inside a [`SharedSynchronizer::read`] closure.
    pub fn last_failure(&self) -> Option<FailedChange> {
        self.last_panic
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Snapshot one view definition (None when unknown or disabled).
    ///
    /// The snapshot is a cheap `Arc` clone of the synchronizer's
    /// copy-on-write state — no view definition is deep-copied.
    pub fn view(&self, name: &str) -> Option<Arc<ViewDefinition>> {
        self.read_lock().view_snapshot(name)
    }

    /// Snapshot all active view definitions (cheap `Arc` clones).
    pub fn views(&self) -> Vec<Arc<ViewDefinition>> {
        self.read_lock()
            .view_snapshots()
            .into_iter()
            .map(|(_, v)| v)
            .collect()
    }

    /// Snapshot the current MKB (a cheap `Arc` clone: `apply` replaces
    /// the synchronizer's MKB handle wholesale, so an outstanding
    /// snapshot keeps the pre-change MKB alive without copying it).
    pub fn mkb(&self) -> Arc<MetaKnowledgeBase> {
        self.read_lock().mkb_snapshot()
    }

    /// Apply a capability change atomically.
    ///
    /// The write lock is held for the whole change; inside it the
    /// synchronizer may still fan affected views out across worker
    /// threads ([`crate::CvsOptions::parallelism`]) — that inner
    /// parallelism never escapes the lock, so readers keep their
    /// all-or-nothing view of the state.
    /// Under [`crate::FailurePolicy::FailFast`] a panicking view task
    /// re-raises here; before the panic continues to the caller, its
    /// identity (change, view, message — carried by the [`SyncPanic`]
    /// payload) is recorded so subsequent poison recoveries can name it.
    pub fn apply(&self, change: &CapabilityChange) -> Result<ChangeOutcome, MisdError> {
        match catch_unwind(AssertUnwindSafe(|| self.write_lock().apply(change))) {
            Ok(result) => result,
            Err(payload) => {
                let info = match payload.downcast_ref::<SyncPanic>() {
                    Some(p) => FailedChange {
                        change: p.change.clone(),
                        view: Some(p.view.clone()),
                        message: p.message.clone(),
                    },
                    None => FailedChange {
                        change: change.to_string(),
                        view: None,
                        message: payload
                            .downcast_ref::<&str>()
                            .map(|s| (*s).to_string())
                            .or_else(|| payload.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "non-string panic payload".to_string()),
                    },
                };
                *self.last_panic.lock().unwrap_or_else(|e| e.into_inner()) = Some(info);
                std::panic::resume_unwind(payload);
            }
        }
    }

    /// Dry-run a change without mutating shared state (takes only a read
    /// lock — previews can run concurrently with other readers).
    pub fn preview(&self, change: &CapabilityChange) -> Result<ChangeOutcome, MisdError> {
        self.read_lock().preview(change)
    }

    /// The current version number (0 = initial state; incremented by
    /// every applied change).
    pub fn version(&self) -> usize {
        self.read_lock().version()
    }

    /// Swap the failure policy in place (see
    /// [`Synchronizer::set_failure_policy`]).
    pub fn set_failure_policy(&self, policy: crate::FailurePolicy) {
        self.write_lock().set_failure_policy(policy);
    }

    /// Register a new view at runtime against the current MKB (see
    /// [`Synchronizer::register_view`]). Takes the write lock; the view
    /// becomes visible to subsequent readers atomically.
    pub fn register_view(&self, view: ViewDefinition) -> Result<(), String> {
        self.write_lock().register_view(view)
    }

    /// Roll the shared synchronizer back to version `index`, discarding
    /// later chain entries (see [`Synchronizer::rollback_to`]). Takes
    /// the write lock: like `apply`, the swap is atomic — readers see
    /// either the pre- or the post-rollback state, never a mix.
    pub fn rollback_to(&self, index: usize) -> bool {
        self.write_lock().rollback_to(index)
    }

    /// Time travel: a detached [`Synchronizer`] positioned at historical
    /// `version` (see [`Synchronizer::at_version`]). Takes only a read
    /// lock; the fork shares all state via `Arc` and never writes back.
    pub fn at_version(&self, version: usize) -> Option<Synchronizer> {
        self.read_lock().at_version(version)
    }

    /// Re-apply the recorded changes of versions `start+1 ..= end` on a
    /// fork (see [`Synchronizer::replay`]). Takes only a read lock.
    pub fn replay(&self, start: usize, end: usize) -> Option<crate::SyncReport> {
        self.read_lock().replay(start, end)
    }

    /// What-if against history: dry-run `change` as if applied at
    /// historical `version` (see [`Synchronizer::preview_at`]). Takes
    /// only a read lock.
    pub fn preview_at(
        &self,
        version: usize,
        change: &CapabilityChange,
    ) -> Option<Result<ChangeOutcome, MisdError>> {
        self.read_lock().preview_at(version, change)
    }

    /// Run a closure against a read-locked synchronizer (for compound
    /// reads that must see one consistent state).
    ///
    /// When the lock was poisoned, the read transparently recovers the
    /// last committed snapshot; [`SharedSynchronizer::last_failure`]
    /// names the change (and view) whose panic caused the poisoning.
    pub fn read<T>(&self, f: impl FnOnce(&Synchronizer) -> T) -> T {
        f(&self.read_lock())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synchronizer::SynchronizerBuilder;
    use crate::testutil::travel_mkb;
    use eve_esql::parse_view;
    use eve_relational::RelName;
    use std::thread;

    fn shared() -> SharedSynchronizer {
        let sync = SynchronizerBuilder::new(travel_mkb())
            .with_view(
                parse_view(
                    "CREATE VIEW CPA AS
                     SELECT C.Name (false, true), F.PName (true, true), F.Dest (true, true)
                     FROM Customer C (true, true), FlightRes F (true, true)
                     WHERE (C.Name = F.PName) (false, true)",
                )
                .unwrap(),
            )
            .unwrap()
            .build();
        SharedSynchronizer::new(sync)
    }

    #[test]
    fn concurrent_readers_during_writes_see_consistent_states() {
        let s = shared();
        let mut handles = Vec::new();
        // Readers: the view must always be either the original (uses
        // Customer, MKB has Customer) or the rewriting (no Customer, MKB
        // without Customer) — never a mix.
        for _ in 0..4 {
            let s = s.clone();
            handles.push(thread::spawn(move || {
                for _ in 0..200 {
                    let consistent = s.read(|sync| {
                        let has_customer = sync.mkb().contains_relation(&RelName::new("Customer"));
                        match sync.view("CPA") {
                            Some(v) => v.uses_relation(&RelName::new("Customer")) == has_customer,
                            None => true,
                        }
                    });
                    assert!(consistent, "reader observed a half-applied change");
                }
            }));
        }
        // Writer: apply the change midway.
        let writer = {
            let s = s.clone();
            thread::spawn(move || {
                s.apply(&CapabilityChange::DeleteRelation(RelName::new("Customer")))
                    .expect("applies")
            })
        };
        for h in handles {
            h.join().expect("reader");
        }
        let outcome = writer.join().expect("writer");
        assert_eq!(outcome.rewritten(), 1);
        // Final state visible through the handle.
        assert!(!s.mkb().contains_relation(&RelName::new("Customer")));
        assert!(!s
            .view("CPA")
            .expect("alive")
            .uses_relation(&RelName::new("Customer")));
    }

    #[test]
    fn panic_while_writing_leaves_readers_on_last_snapshot() {
        #[cfg(feature = "telemetry")]
        let _serial = eve_telemetry::serial_guard();
        #[cfg(feature = "telemetry")]
        eve_telemetry::install(vec![]).expect("no pipeline installed");

        let s = shared();
        // A writer takes the lock directly and dies holding it, so the
        // lock is genuinely poisoned (apply() commits fully-built state
        // and cannot poison mid-change on its own).
        let poisoner = {
            let s = s.clone();
            thread::spawn(move || {
                let _guard = s.inner.write().unwrap();
                panic!("writer dies while holding the lock");
            })
        };
        assert!(poisoner.join().is_err());
        assert!(s.inner.is_poisoned());

        // Readers recover the guard and still see the last committed
        // snapshot: original view, original MKB, consistently.
        let view = s.view("CPA").expect("view resolvable after poison");
        assert!(view.uses_relation(&RelName::new("Customer")));
        assert!(s.mkb().contains_relation(&RelName::new("Customer")));

        // The handle keeps working for writes too.
        let outcome = s
            .apply(&CapabilityChange::DeleteRelation(RelName::new("Customer")))
            .expect("applies after poison");
        assert_eq!(outcome.rewritten(), 1);
        assert!(!s
            .view("CPA")
            .expect("alive")
            .uses_relation(&RelName::new("Customer")));

        #[cfg(feature = "telemetry")]
        {
            let snap = eve_telemetry::uninstall().expect("pipeline was installed");
            let recoveries = snap.counter("service.poison_recoveries").unwrap_or(0);
            assert!(
                recoveries >= 3,
                "read+read+write recoveries, got {recoveries}"
            );
        }
    }

    #[cfg(feature = "faults")]
    #[test]
    fn failfast_panic_records_identity_and_keeps_handle_usable() {
        let _serial = eve_faults::serial_guard();
        let _ = eve_faults::uninstall();
        eve_faults::install(eve_faults::FaultPlan::parse("CPA/view.sync#0=panic").unwrap())
            .unwrap();

        let s = shared();
        let change = CapabilityChange::DeleteRelation(RelName::new("Customer"));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| s.apply(&change)));
        let report = eve_faults::uninstall().expect("plan was installed");
        assert_eq!(report.injected, 1);

        // FailFast surfaced the panic with full identity.
        let payload = result.expect_err("FailFast re-raises the view panic");
        let sp = payload
            .downcast_ref::<crate::SyncPanic>()
            .expect("typed SyncPanic payload");
        assert_eq!(sp.view, "CPA");
        assert!(sp.change.contains("Customer"), "{}", sp.change);
        let failure = s.last_failure().expect("identity recorded");
        assert_eq!(failure.view.as_deref(), Some("CPA"));
        assert!(failure.change.contains("Customer"), "{failure}");
        assert!(failure.message.contains("view.sync"), "{failure}");

        // The unwind poisoned the lock, but readers recover the last
        // snapshot and the handle keeps working for writes.
        assert!(s.inner.is_poisoned());
        assert!(s
            .view("CPA")
            .expect("view resolvable after poison")
            .uses_relation(&RelName::new("Customer")));
        let outcome = s.apply(&change).expect("applies once the fault is gone");
        assert_eq!(outcome.rewritten(), 1);
    }

    #[test]
    fn preview_concurrent_with_reads() {
        let s = shared();
        let p = {
            let s = s.clone();
            thread::spawn(move || {
                s.preview(&CapabilityChange::DeleteRelation(RelName::new("Customer")))
                    .expect("previews")
            })
        };
        let views = s.views();
        assert_eq!(views.len(), 1);
        let outcome = p.join().expect("preview thread");
        assert_eq!(outcome.rewritten(), 1);
        // Preview did not mutate.
        assert!(s.mkb().contains_relation(&RelName::new("Customer")));
    }
}
