//! A thread-safe synchronizer handle for service deployments.
//!
//! The paper's setting is a *large-scale* information system: many
//! clients read view definitions (and route queries through them) while
//! capability changes arrive asynchronously from autonomous ISs.
//! [`SharedSynchronizer`] wraps the single-writer [`Synchronizer`] in a
//! reader/writer lock so that
//!
//! * any number of threads can resolve view definitions concurrently,
//! * one change at a time is applied atomically — readers never observe
//!   a half-synchronized state (the MKB and every view definition switch
//!   together).
//!
//! The lock is `std::sync::RwLock`; a poisoned lock (a panic while
//! holding it) must not wedge the warehouse, so every acquisition
//! recovers the guard from the poison error — readers then still see
//! the last consistent snapshot, since [`Synchronizer::apply`] only
//! commits fully-built state.

use crate::synchronizer::{ChangeOutcome, Synchronizer};
use crate::telem;
use eve_esql::ViewDefinition;
use eve_misd::{CapabilityChange, MetaKnowledgeBase, MisdError};
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// A cloneable, thread-safe handle to a synchronizer.
#[derive(Clone)]
pub struct SharedSynchronizer {
    inner: Arc<RwLock<Synchronizer>>,
}

impl SharedSynchronizer {
    /// Wrap a synchronizer.
    pub fn new(sync: Synchronizer) -> Self {
        SharedSynchronizer {
            inner: Arc::new(RwLock::new(sync)),
        }
    }

    fn read_lock(&self) -> RwLockReadGuard<'_, Synchronizer> {
        let wait = telem::start_timer();
        let result = self.inner.read();
        telem::stop_timer("service.read_wait_ns", wait);
        result.unwrap_or_else(|e| {
            telem::counter_add("service.poison_recoveries", 1);
            e.into_inner()
        })
    }

    fn write_lock(&self) -> RwLockWriteGuard<'_, Synchronizer> {
        let wait = telem::start_timer();
        let result = self.inner.write();
        telem::stop_timer("service.write_wait_ns", wait);
        result.unwrap_or_else(|e| {
            telem::counter_add("service.poison_recoveries", 1);
            e.into_inner()
        })
    }

    /// Snapshot one view definition (None when unknown or disabled).
    ///
    /// The snapshot is a cheap `Arc` clone of the synchronizer's
    /// copy-on-write state — no view definition is deep-copied.
    pub fn view(&self, name: &str) -> Option<Arc<ViewDefinition>> {
        self.read_lock().view_snapshot(name)
    }

    /// Snapshot all active view definitions (cheap `Arc` clones).
    pub fn views(&self) -> Vec<Arc<ViewDefinition>> {
        self.read_lock()
            .view_snapshots()
            .into_iter()
            .map(|(_, v)| v)
            .collect()
    }

    /// Snapshot the current MKB (a cheap `Arc` clone: `apply` replaces
    /// the synchronizer's MKB handle wholesale, so an outstanding
    /// snapshot keeps the pre-change MKB alive without copying it).
    pub fn mkb(&self) -> Arc<MetaKnowledgeBase> {
        self.read_lock().mkb_snapshot()
    }

    /// Apply a capability change atomically.
    ///
    /// The write lock is held for the whole change; inside it the
    /// synchronizer may still fan affected views out across worker
    /// threads ([`crate::CvsOptions::parallelism`]) — that inner
    /// parallelism never escapes the lock, so readers keep their
    /// all-or-nothing view of the state.
    pub fn apply(&self, change: &CapabilityChange) -> Result<ChangeOutcome, MisdError> {
        self.write_lock().apply(change)
    }

    /// Dry-run a change without mutating shared state (takes only a read
    /// lock — previews can run concurrently with other readers).
    pub fn preview(&self, change: &CapabilityChange) -> Result<ChangeOutcome, MisdError> {
        self.read_lock().preview(change)
    }

    /// Run a closure against a read-locked synchronizer (for compound
    /// reads that must see one consistent state).
    pub fn read<T>(&self, f: impl FnOnce(&Synchronizer) -> T) -> T {
        f(&self.read_lock())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synchronizer::SynchronizerBuilder;
    use crate::testutil::travel_mkb;
    use eve_esql::parse_view;
    use eve_relational::RelName;
    use std::thread;

    fn shared() -> SharedSynchronizer {
        let sync = SynchronizerBuilder::new(travel_mkb())
            .with_view(
                parse_view(
                    "CREATE VIEW CPA AS
                     SELECT C.Name (false, true), F.PName (true, true), F.Dest (true, true)
                     FROM Customer C (true, true), FlightRes F (true, true)
                     WHERE (C.Name = F.PName) (false, true)",
                )
                .unwrap(),
            )
            .unwrap()
            .build();
        SharedSynchronizer::new(sync)
    }

    #[test]
    fn concurrent_readers_during_writes_see_consistent_states() {
        let s = shared();
        let mut handles = Vec::new();
        // Readers: the view must always be either the original (uses
        // Customer, MKB has Customer) or the rewriting (no Customer, MKB
        // without Customer) — never a mix.
        for _ in 0..4 {
            let s = s.clone();
            handles.push(thread::spawn(move || {
                for _ in 0..200 {
                    let consistent = s.read(|sync| {
                        let has_customer = sync.mkb().contains_relation(&RelName::new("Customer"));
                        match sync.view("CPA") {
                            Some(v) => v.uses_relation(&RelName::new("Customer")) == has_customer,
                            None => true,
                        }
                    });
                    assert!(consistent, "reader observed a half-applied change");
                }
            }));
        }
        // Writer: apply the change midway.
        let writer = {
            let s = s.clone();
            thread::spawn(move || {
                s.apply(&CapabilityChange::DeleteRelation(RelName::new("Customer")))
                    .expect("applies")
            })
        };
        for h in handles {
            h.join().expect("reader");
        }
        let outcome = writer.join().expect("writer");
        assert_eq!(outcome.rewritten(), 1);
        // Final state visible through the handle.
        assert!(!s.mkb().contains_relation(&RelName::new("Customer")));
        assert!(!s
            .view("CPA")
            .expect("alive")
            .uses_relation(&RelName::new("Customer")));
    }

    #[test]
    fn panic_while_writing_leaves_readers_on_last_snapshot() {
        #[cfg(feature = "telemetry")]
        let _serial = eve_telemetry::serial_guard();
        #[cfg(feature = "telemetry")]
        eve_telemetry::install(vec![]).expect("no pipeline installed");

        let s = shared();
        // A writer takes the lock directly and dies holding it, so the
        // lock is genuinely poisoned (apply() commits fully-built state
        // and cannot poison mid-change on its own).
        let poisoner = {
            let s = s.clone();
            thread::spawn(move || {
                let _guard = s.inner.write().unwrap();
                panic!("writer dies while holding the lock");
            })
        };
        assert!(poisoner.join().is_err());
        assert!(s.inner.is_poisoned());

        // Readers recover the guard and still see the last committed
        // snapshot: original view, original MKB, consistently.
        let view = s.view("CPA").expect("view resolvable after poison");
        assert!(view.uses_relation(&RelName::new("Customer")));
        assert!(s.mkb().contains_relation(&RelName::new("Customer")));

        // The handle keeps working for writes too.
        let outcome = s
            .apply(&CapabilityChange::DeleteRelation(RelName::new("Customer")))
            .expect("applies after poison");
        assert_eq!(outcome.rewritten(), 1);
        assert!(!s
            .view("CPA")
            .expect("alive")
            .uses_relation(&RelName::new("Customer")));

        #[cfg(feature = "telemetry")]
        {
            let snap = eve_telemetry::uninstall().expect("pipeline was installed");
            let recoveries = snap.counter("service.poison_recoveries").unwrap_or(0);
            assert!(
                recoveries >= 3,
                "read+read+write recoveries, got {recoveries}"
            );
        }
    }

    #[test]
    fn preview_concurrent_with_reads() {
        let s = shared();
        let p = {
            let s = s.clone();
            thread::spawn(move || {
                s.preview(&CapabilityChange::DeleteRelation(RelName::new("Customer")))
                    .expect("previews")
            })
        };
        let views = s.views();
        assert_eq!(views.len(), 1);
        let outcome = p.join().expect("preview thread");
        assert_eq!(outcome.rewritten(), 1);
        // Preview did not mutate.
        assert!(s.mkb().contains_relation(&RelName::new("Customer")));
    }
}
