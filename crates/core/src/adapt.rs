//! Materialization **adaptation** after view redefinition — the related
//! work the paper positions itself against (§6):
//!
//! > "Gupta et al. \[3\] and Mohania et al. \[7\] address the problem of
//! > materialized view maintenance after a view redefinition explicitly
//! > initiated by the user."
//!
//! EVE answers *what* the new definition should be; adaptation answers
//! *how to get its extent cheaply* from the old materialization instead
//! of recomputing from base relations. This module implements the
//! classic single-step adaptations of \[3\] for SELECT-FROM-WHERE views
//! under set semantics:
//!
//! | definition change | strategy | base access |
//! |---|---|---|
//! | identical definition | [`AdaptationStrategy::Identity`] | none |
//! | SELECT list narrowed (columns dropped / permuted) | [`AdaptationStrategy::ProjectOld`] | none |
//! | conditions added, over preserved columns | [`AdaptationStrategy::FilterOld`] | none |
//! | conditions dropped | [`AdaptationStrategy::UnionDelta`] | complement query only |
//! | anything else (relation swaps, replacements) | [`AdaptationStrategy::Recompute`] | full |
//!
//! The CVS rewritings that merely *drop* dispensable components adapt
//! without touching a single base relation; rewritings that swap
//! relations fall back to recomputation (in-place adaptation of joins
//! requires multiset counting, which \[3\] develops and this reproduction
//! leaves out of scope — documented in DESIGN.md).

use crate::eval::evaluate_view;
use crate::materialize::MaterializedView;
use eve_esql::ViewDefinition;
use eve_relational::{
    select, AttrRef, Clause, Conjunction, Database, FuncRegistry, Relation, RelationalError,
    ScalarExpr, Schema, Tuple,
};
use std::collections::BTreeSet;
use std::fmt;

/// How the new extent was obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdaptationStrategy {
    /// Definitions are identical; the old extent is the new extent.
    Identity,
    /// The new SELECT list is a sub-multiset of the old one: project the
    /// old materialization, no base access.
    ProjectOld,
    /// Conditions were added and reference only preserved output
    /// columns: filter the old materialization, no base access.
    FilterOld,
    /// Conditions were dropped: the old extent is reused and only the
    /// *complement* (tuples admitted by the relaxed WHERE but rejected by
    /// the old one) is computed from base relations.
    UnionDelta,
    /// Structural change (FROM clause differs, replacements, …): full
    /// recomputation.
    Recompute,
}

impl fmt::Display for AdaptationStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AdaptationStrategy::Identity => "identity",
            AdaptationStrategy::ProjectOld => "project-old",
            AdaptationStrategy::FilterOld => "filter-old",
            AdaptationStrategy::UnionDelta => "union-delta",
            AdaptationStrategy::Recompute => "recompute",
        })
    }
}

/// Outcome of an adaptation: the new extent plus accounting of how much
/// of the old materialization was reused.
#[derive(Debug, Clone)]
pub struct AdaptationReport {
    /// The strategy chosen.
    pub strategy: AdaptationStrategy,
    /// Tuples carried over from the old materialization.
    pub tuples_reused: usize,
    /// Tuples obtained by (re)computation against base relations.
    pub tuples_computed: usize,
}

impl fmt::Display for AdaptationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: reused {}, computed {}",
            self.strategy, self.tuples_reused, self.tuples_computed
        )
    }
}

fn same_from(a: &ViewDefinition, b: &ViewDefinition) -> bool {
    let ra: Vec<_> = a.relations();
    let rb: Vec<_> = b.relations();
    ra == rb
}

fn conditions_of(v: &ViewDefinition) -> Vec<Clause> {
    v.conditions.iter().map(|c| c.clause.normalized()).collect()
}

/// Map every attribute in `clause` to the old view's *output column*
/// carrying the same base expression, if possible. Returns the rewritten
/// clause over output columns, or `None` when some attribute is not
/// preserved in the output.
fn lift_clause_to_output(
    clause: &Clause,
    view: &ViewDefinition,
    output_schema: &Schema,
) -> Option<Clause> {
    let names = view.interface_names();
    let mut lifted = clause.clone();
    for attr in clause.attrs() {
        let pos = view
            .select
            .iter()
            .position(|item| item.expr == ScalarExpr::Attr(attr.clone()))?;
        let (col, _) = output_schema.columns().get(pos)?;
        let _ = &names; // names align with positions by construction
        lifted = lifted.substitute(&attr, &ScalarExpr::Attr(col.clone()));
    }
    Some(lifted)
}

/// Adapt `old` (definition + materialized extent) to `new_def`, choosing
/// the cheapest applicable strategy. Returns the new extent and the
/// report; the caller decides whether to commit it (see
/// [`MaterializedView::evolve_to`] for the recompute-always path).
pub fn adapt_materialization(
    old: &MaterializedView,
    new_def: &ViewDefinition,
    db: &Database,
    funcs: &FuncRegistry,
) -> Result<(Relation, AdaptationReport), RelationalError> {
    // Identity.
    if old.definition == *new_def {
        return Ok((
            old.data.clone(),
            AdaptationReport {
                strategy: AdaptationStrategy::Identity,
                tuples_reused: old.data.len(),
                tuples_computed: 0,
            },
        ));
    }

    let same_relations = same_from(&old.definition, new_def);
    let old_conds: BTreeSet<Clause> = conditions_of(&old.definition).into_iter().collect();
    let new_conds: BTreeSet<Clause> = conditions_of(new_def).into_iter().collect();

    // ProjectOld: same FROM + WHERE, new SELECT items are a subset of the
    // old ones (modulo order).
    if same_relations && old_conds == new_conds {
        let positions: Option<Vec<usize>> = new_def
            .select
            .iter()
            .map(|item| {
                old.definition
                    .select
                    .iter()
                    .position(|o| o.expr == item.expr)
            })
            .collect();
        if let Some(positions) = positions {
            let names = new_def.interface_names();
            let columns: Vec<_> = positions
                .iter()
                .zip(&names)
                .map(|(&p, name)| {
                    let (_, ty) = old.data.schema().columns()[p];
                    (AttrRef::new(new_def.name.as_str(), name.clone()), ty)
                })
                .collect();
            let schema = Schema::from_columns(columns)?;
            let rows = old.data.rows().map(|t| t.project(&positions));
            let rel = Relation::from_rows(schema, rows)?;
            let reused = rel.len();
            return Ok((
                rel,
                AdaptationReport {
                    strategy: AdaptationStrategy::ProjectOld,
                    tuples_reused: reused,
                    tuples_computed: 0,
                },
            ));
        }
    }

    // FilterOld: same FROM + SELECT, conditions strictly added, and every
    // added condition can be expressed over preserved output columns.
    let same_select = same_relations
        && old.definition.select.len() == new_def.select.len()
        && old
            .definition
            .select
            .iter()
            .zip(&new_def.select)
            .all(|(a, b)| a.expr == b.expr);
    if same_select && old_conds.is_subset(&new_conds) && old_conds != new_conds {
        let added: Vec<&Clause> = new_conds.difference(&old_conds).collect();
        let lifted: Option<Vec<Clause>> = added
            .iter()
            .map(|c| lift_clause_to_output(c, &old.definition, old.data.schema()))
            .collect();
        if let Some(lifted) = lifted {
            let filtered = select(&old.data, &Conjunction::new(lifted), funcs)?;
            let reused = filtered.len();
            return Ok((
                filtered,
                AdaptationReport {
                    strategy: AdaptationStrategy::FilterOld,
                    tuples_reused: reused,
                    tuples_computed: 0,
                },
            ));
        }
    }

    // UnionDelta: same FROM + SELECT, conditions strictly dropped — keep
    // the old extent and add only the tuples the relaxed WHERE now
    // admits: rows satisfying the kept conditions but failing at least
    // one dropped condition.
    if same_select && new_conds.is_subset(&old_conds) && old_conds != new_conds {
        let dropped: Vec<Clause> = old_conds.difference(&new_conds).cloned().collect();
        let delta = evaluate_complement(new_def, &dropped, db, funcs)?;
        let mut merged = old.data.clone();
        let mut computed = 0usize;
        for t in delta.rows() {
            if merged.insert(t.clone())? {
                computed += 1;
            }
        }
        return Ok((
            merged,
            AdaptationReport {
                strategy: AdaptationStrategy::UnionDelta,
                tuples_reused: old.data.len(),
                tuples_computed: computed,
            },
        ));
    }

    // Fallback: full recomputation.
    let rel = evaluate_view(new_def, db, funcs)?;
    let computed = rel.len();
    Ok((
        rel,
        AdaptationReport {
            strategy: AdaptationStrategy::Recompute,
            tuples_reused: 0,
            tuples_computed: computed,
        },
    ))
}

/// Evaluate `view` but keep only the rows that fail at least one of the
/// `dropped` clauses — the complement the old materialization is missing.
fn evaluate_complement(
    view: &ViewDefinition,
    dropped: &[Clause],
    db: &Database,
    funcs: &FuncRegistry,
) -> Result<Relation, RelationalError> {
    // Evaluate the relaxed view but with the dropped clauses *projected
    // through*: join the FROM relations with the relaxed conditions, test
    // the dropped clauses row by row, then project.
    use eve_relational::theta_join;
    let mut acc: Option<Relation> = None;
    for item in &view.from {
        let rel = db.require(&item.relation)?.clone();
        acc = Some(match acc {
            None => rel,
            Some(a) => theta_join(&a, &rel, &Conjunction::empty(), funcs)?,
        });
    }
    let acc = acc.unwrap_or_else(|| Relation::new(Schema::new()));
    let kept = view.where_conjunction();
    let schema = acc.schema().clone();

    let mut complement_rows: Vec<Tuple> = Vec::new();
    for t in acc.rows() {
        if !kept.eval(&schema, t, funcs)? {
            continue;
        }
        let mut fails_dropped = false;
        for c in dropped {
            if !c.eval(&schema, t, funcs)? {
                fails_dropped = true;
                break;
            }
        }
        if fails_dropped {
            complement_rows.push(t.clone());
        }
    }
    let base = Relation::from_rows(schema, complement_rows)?;
    // Project like evaluate_view does.
    let names = view.interface_names();
    let columns: Vec<(AttrRef, ScalarExpr)> = view
        .select
        .iter()
        .zip(names)
        .map(|(item, name)| (AttrRef::new(view.name.as_str(), name), item.expr.clone()))
        .collect();
    eve_relational::project(&base, &columns, funcs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eve_esql::parse_view;
    use eve_relational::{AttributeDef, DataType, RelName, Value};

    fn db() -> Database {
        let mut db = Database::new();
        let name = RelName::new("Customer");
        let schema = Schema::of_relation(
            &name,
            &[
                AttributeDef::new("Name", DataType::Str),
                AttributeDef::new("Age", DataType::Int),
                AttributeDef::new("City", DataType::Str),
            ],
        );
        let rel = Relation::from_rows(
            schema,
            [
                ("ann", 30, "Detroit"),
                ("bob", 10, "Detroit"),
                ("cat", 44, "Boston"),
                ("dan", 25, "Boston"),
            ]
            .map(|(n, a, c)| Tuple::new(vec![Value::str(n), Value::Int(a), Value::str(c)])),
        )
        .unwrap();
        db.put(name, rel);
        db
    }

    fn materialize(src: &str) -> MaterializedView {
        MaterializedView::new(parse_view(src).unwrap(), &db(), &FuncRegistry::new()).unwrap()
    }

    fn assert_matches_recompute(new_def: &ViewDefinition, adapted: &Relation) {
        let full = evaluate_view(new_def, &db(), &FuncRegistry::new()).unwrap();
        assert_eq!(adapted.row_set(), full.row_set(), "adaptation diverged");
    }

    #[test]
    fn identity_reuses_everything() {
        let mv = materialize("CREATE VIEW V AS SELECT C.Name, C.Age FROM Customer C");
        let (rel, report) =
            adapt_materialization(&mv, &mv.definition, &db(), &FuncRegistry::new()).unwrap();
        assert_eq!(report.strategy, AdaptationStrategy::Identity);
        assert_eq!(report.tuples_computed, 0);
        assert_eq!(rel.len(), 4);
    }

    #[test]
    fn project_old_drops_column_without_base_access() {
        let mv = materialize("CREATE VIEW V AS SELECT C.Name, C.Age, C.City FROM Customer C");
        let new_def = parse_view("CREATE VIEW V AS SELECT C.City, C.Name FROM Customer C").unwrap();
        let (rel, report) =
            adapt_materialization(&mv, &new_def, &db(), &FuncRegistry::new()).unwrap();
        assert_eq!(report.strategy, AdaptationStrategy::ProjectOld);
        assert_eq!(report.tuples_computed, 0);
        assert_matches_recompute(&new_def, &rel);
    }

    #[test]
    fn filter_old_applies_added_condition() {
        let mv = materialize("CREATE VIEW V AS SELECT C.Name, C.Age FROM Customer C");
        let new_def =
            parse_view("CREATE VIEW V AS SELECT C.Name, C.Age FROM Customer C WHERE C.Age >= 18")
                .unwrap();
        let (rel, report) =
            adapt_materialization(&mv, &new_def, &db(), &FuncRegistry::new()).unwrap();
        assert_eq!(report.strategy, AdaptationStrategy::FilterOld);
        assert_eq!(report.tuples_computed, 0);
        assert_eq!(rel.len(), 3);
        assert_matches_recompute(&new_def, &rel);
    }

    #[test]
    fn filter_old_requires_preserved_columns() {
        // The added condition references City, which is not projected —
        // no choice but recompute.
        let mv = materialize("CREATE VIEW V AS SELECT C.Name, C.Age FROM Customer C");
        let new_def = parse_view(
            "CREATE VIEW V AS SELECT C.Name, C.Age FROM Customer C WHERE C.City = 'Boston'",
        )
        .unwrap();
        let (rel, report) =
            adapt_materialization(&mv, &new_def, &db(), &FuncRegistry::new()).unwrap();
        assert_eq!(report.strategy, AdaptationStrategy::Recompute);
        assert_matches_recompute(&new_def, &rel);
    }

    #[test]
    fn union_delta_relaxes_condition() {
        let mv = materialize(
            "CREATE VIEW V AS SELECT C.Name, C.Age FROM Customer C WHERE (C.Age >= 18) AND (C.City = 'Detroit') (CD = true)",
        );
        assert_eq!(mv.data.len(), 1); // ann only
                                      // Drop the Detroit condition: cat and dan join ann.
        let new_def =
            parse_view("CREATE VIEW V AS SELECT C.Name, C.Age FROM Customer C WHERE C.Age >= 18")
                .unwrap();
        let (rel, report) =
            adapt_materialization(&mv, &new_def, &db(), &FuncRegistry::new()).unwrap();
        assert_eq!(report.strategy, AdaptationStrategy::UnionDelta);
        assert_eq!(report.tuples_reused, 1);
        assert_eq!(report.tuples_computed, 2);
        assert_matches_recompute(&new_def, &rel);
    }

    #[test]
    fn structural_change_recomputes() {
        let mv = materialize("CREATE VIEW V AS SELECT C.Name FROM Customer C");
        let new_def = parse_view("CREATE VIEW V AS SELECT O.Name FROM Other O").unwrap();
        let mut database = db();
        let other = RelName::new("Other");
        let schema = Schema::of_relation(&other, &[AttributeDef::new("Name", DataType::Str)]);
        database.put(
            other,
            Relation::from_rows(schema, [Tuple::new(vec![Value::str("zed")])]).unwrap(),
        );
        let (rel, report) =
            adapt_materialization(&mv, &new_def, &database, &FuncRegistry::new()).unwrap();
        assert_eq!(report.strategy, AdaptationStrategy::Recompute);
        assert_eq!(rel.len(), 1);
    }

    #[test]
    fn cvs_drop_only_rewriting_adapts_without_base_access() {
        // The end-to-end story: a CVS rewriting that only drops
        // dispensable SELECT items adapts by projection.
        use crate::testutil::travel_mkb;
        use crate::CvsOptions;
        use eve_misd::{evolve, CapabilityChange};

        let mkb = travel_mkb();
        let customer = RelName::new("Customer");
        let mkb2 = evolve(&mkb, &CapabilityChange::DeleteRelation(customer.clone())).unwrap();
        let view = parse_view(
            "CREATE VIEW V AS
             SELECT F.PName (false, true), F.Date (true, true), C.Phone (true, false)
             FROM Customer C (true, true), FlightRes F (true, true)
             WHERE (C.Name = F.PName) (CD = true)",
        )
        .unwrap();
        let rewritings =
            crate::testutil::cvs_dr(&view, &customer, &mkb, &mkb2, &CvsOptions::default()).unwrap();
        // Find the drop-only rewriting (same FROM minus Customer is a
        // structural change, so this will be Recompute or UnionDelta
        // depending on shape — the point is: adaptation always agrees
        // with recomputation).
        let fixture = eve_workload_free_database();
        let funcs = FuncRegistry::new();
        let mv = MaterializedView::new(view.clone(), &fixture, &funcs).unwrap();
        let mut checked = 0;
        for r in &rewritings {
            // Only rewritings over relations present in the test DB are
            // evaluable here (others pull in Accident-Ins etc.).
            if !r.view.relations().iter().all(|rel| fixture.contains(rel)) {
                continue;
            }
            let (rel, _report) = adapt_materialization(&mv, &r.view, &fixture, &funcs).unwrap();
            let full = evaluate_view(&r.view, &fixture, &funcs).unwrap();
            assert_eq!(rel.row_set(), full.row_set());
            checked += 1;
        }
        assert!(checked > 0, "no evaluable rewriting");
    }

    /// A small travel-ish database without depending on eve-workload
    /// (which depends on this crate).
    fn eve_workload_free_database() -> Database {
        let mut db = Database::new();
        let cust = RelName::new("Customer");
        let schema = Schema::of_relation(
            &cust,
            &[
                AttributeDef::new("Name", DataType::Str),
                AttributeDef::new("Phone", DataType::Str),
            ],
        );
        db.put(
            cust,
            Relation::from_rows(
                schema,
                [("ann", "1"), ("bob", "2")]
                    .map(|(n, p)| Tuple::new(vec![Value::str(n), Value::str(p)])),
            )
            .unwrap(),
        );
        let fr = RelName::new("FlightRes");
        let schema = Schema::of_relation(
            &fr,
            &[
                AttributeDef::new("PName", DataType::Str),
                AttributeDef::new("Date", DataType::Date),
            ],
        );
        db.put(
            fr,
            Relation::from_rows(
                schema,
                [("ann", 10), ("cat", 20)]
                    .map(|(n, d)| Tuple::new(vec![Value::str(n), Value::Date(d)])),
            )
            .unwrap(),
        );
        db
    }
}
