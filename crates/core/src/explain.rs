//! Human-readable explanations of rewritings: what was dropped, what was
//! replaced (and through which function-of constraint), what was joined
//! in — the narrative the EVE view administrator sees before accepting a
//! synchronized definition.

use crate::legal::LegalRewriting;
use crate::rewrite::SearchStats;
use eve_esql::ViewDefinition;
use eve_relational::RelName;
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// [`explain_rewriting`], followed by a summary of the rewriting search
/// that produced the candidate (see [`SearchStats`]) when one is given:
/// how many candidates were generated, pruned by the admissible bound,
/// and kept — plus an explicit truncation note when a
/// [`crate::options::SearchBudget`] cut the search short, so an
/// administrator reading the explanation knows whether alternatives may
/// have been missed.
pub fn explain_rewriting_with_stats(
    original: &ViewDefinition,
    rewriting: &LegalRewriting,
    stats: Option<&SearchStats>,
) -> String {
    let mut out = explain_rewriting(original, rewriting);
    if let Some(s) = stats {
        let _ = writeln!(
            out,
            "- search: {} candidate(s) generated, {} pruned, {} kept ({} connection tree(s) enumerated)",
            s.generated, s.pruned, s.kept, s.trees_enumerated
        );
        if s.budget_exhausted {
            out.push_str(
                "- search truncated by budget: better alternatives may exist beyond the explored prefix\n",
            );
        }
    }
    out
}

/// Render a step-by-step explanation of how `rewriting` evolves
/// `original`.
pub fn explain_rewriting(original: &ViewDefinition, rewriting: &LegalRewriting) -> String {
    let mut out = String::new();

    // Replacements.
    for (attr, cover) in rewriting.replacement.covers.iter() {
        let _ = writeln!(
            out,
            "- replaced {attr} by {} (function-of constraint {}, cover relation {})",
            cover.replacement, cover.funcof_id, cover.source
        );
    }

    // Dropped SELECT items.
    for (i, item) in original.select.iter().enumerate() {
        if !rewriting.kept_select.contains(&i) {
            let _ = writeln!(
                out,
                "- dropped output column {} (dispensable)",
                item.output_name()
                    .map(|n| n.to_string())
                    .unwrap_or_else(|| item.expr.to_string())
            );
        }
    }

    // Dropped conditions.
    for cond in &rewriting.dropped_conditions {
        let _ = writeln!(out, "- dropped condition ({}) (dispensable)", cond.clause);
    }

    // Relations swapped.
    let before: BTreeSet<RelName> = original.from.iter().map(|f| f.relation.clone()).collect();
    let after: BTreeSet<RelName> = rewriting
        .view
        .from
        .iter()
        .map(|f| f.relation.clone())
        .collect();
    for gone in before.difference(&after) {
        let _ = writeln!(out, "- removed relation {gone} from FROM");
    }
    for new in after.difference(&before) {
        let _ = writeln!(out, "- joined in relation {new}");
    }
    for jc in &rewriting.replacement.joins {
        let _ = writeln!(out, "- used join constraint {}: {}", jc.id, jc.predicate);
    }

    // Extent.
    let _ = writeln!(
        out,
        "- extent: V' {} V ({})",
        rewriting.verdict,
        if rewriting.satisfies_p3 {
            "satisfies the view-extent parameter"
        } else {
            "unverified against the view-extent parameter"
        }
    );

    if out.is_empty() {
        out.push_str("- no changes\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::CvsOptions;
    use crate::testutil::travel_mkb;
    use eve_esql::parse_view;
    use eve_misd::{evolve, CapabilityChange};

    #[test]
    fn explains_eq13_style_rewriting() {
        let mkb = travel_mkb();
        let customer = RelName::new("Customer");
        let mkb2 = evolve(&mkb, &CapabilityChange::DeleteRelation(customer.clone())).unwrap();
        let view = parse_view(
            "CREATE VIEW V AS
             SELECT C.Name (false, true), C.Age (true, true), F.Dest (true, true)
             FROM Customer C, FlightRes F WHERE (C.Name = F.PName) (false, true)",
        )
        .unwrap();
        let rewritings =
            crate::testutil::cvs_dr(&view, &customer, &mkb, &mkb2, &CvsOptions::default()).unwrap();
        let via_ins = rewritings
            .iter()
            .find(|r| {
                r.replacement
                    .relations
                    .contains(&RelName::new("Accident-Ins"))
            })
            .expect("Accident-Ins candidate");
        let text = explain_rewriting(&view, via_ins);
        assert!(text.contains("replaced Customer.Name"), "{text}");
        assert!(text.contains("removed relation Customer"), "{text}");
        assert!(text.contains("joined in relation Accident-Ins"), "{text}");
        assert!(text.contains("JC6"), "{text}");
        assert!(text.contains("extent: V'"), "{text}");
    }

    #[test]
    fn explains_drops() {
        let mkb = travel_mkb();
        let customer = RelName::new("Customer");
        let mkb2 = evolve(&mkb, &CapabilityChange::DeleteRelation(customer.clone())).unwrap();
        let view = parse_view(
            "CREATE VIEW V AS
             SELECT C.Phone (true, false), F.Dest (true, true)
             FROM Customer C, FlightRes F WHERE (C.Name = F.PName) (CD = true)",
        )
        .unwrap();
        let rewritings =
            crate::testutil::cvs_dr(&view, &customer, &mkb, &mkb2, &CvsOptions::default()).unwrap();
        let text = explain_rewriting(&view, &rewritings[0]);
        assert!(text.contains("dropped output column Phone"), "{text}");
    }

    #[test]
    fn explains_search_stats_and_truncation() {
        let mkb = travel_mkb();
        let customer = RelName::new("Customer");
        let mkb2 = evolve(&mkb, &CapabilityChange::DeleteRelation(customer.clone())).unwrap();
        let view = parse_view(
            "CREATE VIEW V AS
             SELECT C.Name (false, true), F.Dest (true, true)
             FROM Customer C, FlightRes F WHERE (C.Name = F.PName) (false, true)",
        )
        .unwrap();
        let rewritings =
            crate::testutil::cvs_dr(&view, &customer, &mkb, &mkb2, &CvsOptions::default()).unwrap();
        let stats = SearchStats {
            generated: 4,
            pruned: 2,
            kept: 1,
            trees_enumerated: 3,
            disconnected_combos: 0,
            budget_exhausted: false,
        };
        let text = explain_rewriting_with_stats(&view, &rewritings[0], Some(&stats));
        assert!(
            text.contains("search: 4 candidate(s) generated, 2 pruned, 1 kept"),
            "{text}"
        );
        assert!(!text.contains("truncated"), "{text}");
        // Without stats the output is byte-identical to the plain form.
        assert_eq!(
            explain_rewriting_with_stats(&view, &rewritings[0], None),
            explain_rewriting(&view, &rewritings[0])
        );
        // A budget-truncated search is called out explicitly.
        let truncated = SearchStats {
            budget_exhausted: true,
            ..stats
        };
        let text = explain_rewriting_with_stats(&view, &rewritings[0], Some(&truncated));
        assert!(text.contains("search truncated by budget"), "{text}");
    }
}
