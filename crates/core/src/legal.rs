//! Legal rewritings (Def. 1 of the paper) and their property checks.
//!
//! A rewriting `V'` of `V` under change `ch` is **legal** when:
//!
//! * **P1** — `V'` is no longer affected by `ch`;
//! * **P2** — `V'` can be evaluated in the new information space (it
//!   references only elements of `MKB'`);
//! * **P3** — the view-extent parameter `VE_V` is satisfied;
//! * **P4** — the component evolution parameters are satisfied
//!   (indispensable components survive, non-replaceable components are
//!   unchanged).
//!
//! P1/P2/P4 hold by construction of the CVS assembly; the methods here
//! re-verify them independently (and are exercised by the test suite and
//! the `sweep` experiments). P3 is the subject of [`crate::extent`].

use crate::affected::is_affected;
use crate::extent::ExtentVerdict;
use crate::replacement::Replacement;
use eve_esql::{CondItem, ViewDefinition};
use eve_misd::{CapabilityChange, MetaKnowledgeBase};

/// One synchronized view definition together with the evidence of how it
/// was produced.
#[derive(Debug, Clone, PartialEq)]
pub struct LegalRewriting {
    /// The evolved view definition `V'`.
    pub view: ViewDefinition,
    /// The R-replacement it was assembled from.
    pub replacement: Replacement,
    /// Symbolic verdict `V' vs V` (Step 6).
    pub verdict: ExtentVerdict,
    /// Does the verdict satisfy the view's extent parameter (P3)?
    /// `false` means *unverified*, not violated — the symbolic checker is
    /// conservative.
    pub satisfies_p3: bool,
    /// For each kept SELECT item of `V'`: the index of the original item
    /// it descends from.
    pub kept_select: Vec<usize>,
    /// Conditions dropped during assembly (all must be dispensable).
    pub dropped_conditions: Vec<CondItem>,
}

impl LegalRewriting {
    /// P1: the rewriting is no longer affected by the change.
    pub fn check_p1(&self, change: &CapabilityChange) -> bool {
        !is_affected(&self.view, change)
    }

    /// P2: every referenced relation and attribute exists in `MKB'`.
    pub fn check_p2(&self, mkb_prime: &MetaKnowledgeBase) -> bool {
        self.view
            .from
            .iter()
            .all(|f| mkb_prime.contains_relation(&f.relation))
            && self
                .view
                .referenced_attrs()
                .iter()
                .all(|a| mkb_prime.has_attr(a))
    }

    /// P4: the evolution parameters of the original view are respected:
    ///
    /// * every dropped SELECT item / condition was dispensable;
    /// * every kept non-replaceable SELECT item is syntactically
    ///   unchanged;
    /// * every indispensable SELECT item of the original survives.
    pub fn check_p4(&self, original: &ViewDefinition) -> bool {
        // Dropped selects dispensable + indispensable items survive.
        for (i, item) in original.select.iter().enumerate() {
            let kept = self.kept_select.contains(&i);
            if !kept && !item.params.dispensable {
                return false;
            }
        }
        // Non-replaceable kept items unchanged.
        for (new_idx, &orig_idx) in self.kept_select.iter().enumerate() {
            let orig = &original.select[orig_idx];
            if !orig.params.replaceable && self.view.select[new_idx].expr != orig.expr {
                return false;
            }
        }
        // Dropped conditions dispensable.
        self.dropped_conditions.iter().all(|c| c.params.dispensable)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extent::ExtentVerdict;
    use crate::replacement::Replacement;
    use eve_esql::parse_view;
    use eve_misd::parse_misd;
    use eve_relational::RelName;

    fn wrap(view: eve_esql::ViewDefinition, kept: Vec<usize>) -> LegalRewriting {
        let relations = view.from.iter().map(|f| f.relation.clone()).collect();
        LegalRewriting {
            view,
            replacement: Replacement {
                covers: Default::default(),
                relations,
                joins: Vec::new(),
                c_max_min: Default::default(),
                dropped_conditions: Default::default(),
            },
            verdict: ExtentVerdict::Unknown,
            satisfies_p3: false,
            kept_select: kept,
            dropped_conditions: Vec::new(),
        }
    }

    #[test]
    fn p1_detects_residual_references() {
        let bad = wrap(
            parse_view("CREATE VIEW V AS SELECT R.a FROM R").unwrap(),
            vec![0],
        );
        let change = CapabilityChange::DeleteRelation(RelName::new("R"));
        assert!(!bad.check_p1(&change));
        let good = wrap(
            parse_view("CREATE VIEW V AS SELECT S.a FROM S").unwrap(),
            vec![0],
        );
        assert!(good.check_p1(&change));
    }

    #[test]
    fn p2_requires_all_elements_described() {
        let mkb = parse_misd("RELATION IS1 S(a int)").unwrap();
        let good = wrap(
            parse_view("CREATE VIEW V AS SELECT S.a FROM S").unwrap(),
            vec![0],
        );
        assert!(good.check_p2(&mkb));
        // Unknown attribute.
        let bad_attr = wrap(
            parse_view("CREATE VIEW V AS SELECT S.ghost FROM S").unwrap(),
            vec![0],
        );
        assert!(!bad_attr.check_p2(&mkb));
        // Unknown relation.
        let bad_rel = wrap(
            parse_view("CREATE VIEW V AS SELECT T.a FROM T").unwrap(),
            vec![0],
        );
        assert!(!bad_rel.check_p2(&mkb));
    }

    #[test]
    fn p4_flags_dropped_indispensables() {
        let original =
            parse_view("CREATE VIEW V AS SELECT R.a (AD = false), R.b (AD = true) FROM R").unwrap();
        // Dropping the dispensable b: fine.
        let keeps_a = wrap(
            parse_view("CREATE VIEW V AS SELECT R.a FROM R").unwrap(),
            vec![0],
        );
        assert!(keeps_a.check_p4(&original));
        // Dropping the indispensable a: violation.
        let drops_a = wrap(
            parse_view("CREATE VIEW V AS SELECT R.b FROM R").unwrap(),
            vec![1],
        );
        assert!(!drops_a.check_p4(&original));
    }

    #[test]
    fn p4_flags_modified_nonreplaceables() {
        let original =
            parse_view("CREATE VIEW V AS SELECT R.a (AD = false, AR = false) FROM R").unwrap();
        let modified = wrap(
            parse_view("CREATE VIEW V AS SELECT S.x AS a FROM S").unwrap(),
            vec![0],
        );
        assert!(!modified.check_p4(&original));
        let unchanged = wrap(
            parse_view("CREATE VIEW V AS SELECT R.a FROM R").unwrap(),
            vec![0],
        );
        assert!(unchanged.check_p4(&original));
    }

    #[test]
    fn p4_flags_dropped_indispensable_conditions() {
        use eve_esql::{CondItem, EvolutionParams};
        use eve_relational::{Clause, CompareOp, ScalarExpr};
        let original = parse_view("CREATE VIEW V AS SELECT R.a FROM R").unwrap();
        let mut rw = wrap(original.clone(), vec![0]);
        rw.dropped_conditions.push(CondItem {
            clause: Clause::new(
                ScalarExpr::attr("R", "a"),
                CompareOp::Gt,
                ScalarExpr::lit(1i64),
            ),
            params: EvolutionParams::new(false, true), // indispensable!
        });
        assert!(!rw.check_p4(&original));
    }
}
