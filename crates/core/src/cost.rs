//! A cost model for **maximal view preservation** — the paper's §7
//! names "cost models for maximal view preservation" as future work; this
//! module supplies one.
//!
//! Every legal rewriting preserves the view, but not equally well: one
//! may drop a dispensable attribute another manages to cover, one may
//! drag in three extra relations where another needs none, one may carry
//! a certified `≡` extent where another is `Unknown`. The
//! [`CostModel`] scores those differences; lower is better. The default
//! weights implement a lexicographic intuition — *information loss*
//! (dropped components) dominates *semantic drift* (replacements)
//! dominates *plan size* (extra relations/joins) dominates residual
//! *extent uncertainty* — while remaining a plain weighted sum the user
//! can re-tune.
//!
//! [`rank_rewritings`] orders a candidate set by cost;
//! `SynchronizerBuilder::with_cost_model` makes the synchronizer adopt
//! the cheapest legal rewriting.

use crate::extent::ExtentVerdict;
use crate::legal::LegalRewriting;
use eve_esql::ViewDefinition;
use std::fmt;

/// Weights for the preservation cost (all ≥ 0; lower total = better).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Penalty per SELECT item dropped from the view.
    pub dropped_attr: f64,
    /// Penalty per WHERE condition dropped.
    pub dropped_condition: f64,
    /// Penalty per component whose expression was replaced (semantic
    /// drift: the value is now *derived*, not original).
    pub replaced_component: f64,
    /// Penalty per relation added beyond the original FROM clause.
    pub extra_relation: f64,
    /// Penalty per join condition added.
    pub extra_join: f64,
    /// Penalty by extent verdict: `≡` is free, certified `⊇`/`⊆` cheap,
    /// `Unknown` expensive.
    pub extent_superset: f64,
    /// Penalty when the verdict is a certified subset.
    pub extent_subset: f64,
    /// Penalty when the extent relationship is unverified.
    pub extent_unknown: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            dropped_attr: 100.0,
            dropped_condition: 100.0,
            replaced_component: 10.0,
            extra_relation: 3.0,
            extra_join: 1.0,
            extent_superset: 5.0,
            extent_subset: 5.0,
            extent_unknown: 25.0,
        }
    }
}

/// An itemised cost assessment of one rewriting.
#[derive(Debug, Clone, PartialEq)]
pub struct CostBreakdown {
    /// SELECT items dropped.
    pub dropped_attrs: usize,
    /// Conditions dropped.
    pub dropped_conditions: usize,
    /// Components replaced (SELECT items whose expression changed).
    pub replaced_components: usize,
    /// Relations beyond the original FROM clause.
    pub extra_relations: usize,
    /// Join conditions beyond the original WHERE clause.
    pub extra_joins: usize,
    /// The extent verdict of the rewriting.
    pub verdict: ExtentVerdict,
    /// The weighted total.
    pub total: f64,
}

impl fmt::Display for CostBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cost {:.1} (dropped: {} attrs, {} conds; replaced: {}; extra: {} rels, {} joins; extent {})",
            self.total,
            self.dropped_attrs,
            self.dropped_conditions,
            self.replaced_components,
            self.extra_relations,
            self.extra_joins,
            self.verdict
        )
    }
}

impl CostModel {
    /// Assess a rewriting of `original`.
    pub fn assess(&self, original: &ViewDefinition, rewriting: &LegalRewriting) -> CostBreakdown {
        let dropped_attrs = original.select.len() - rewriting.kept_select.len();
        let dropped_conditions = rewriting.dropped_conditions.len();
        let replaced_components = rewriting
            .kept_select
            .iter()
            .enumerate()
            .filter(|(new_idx, orig_idx)| {
                rewriting.view.select[*new_idx].expr != original.select[**orig_idx].expr
            })
            .count();
        let orig_rels = original.from.len();
        let extra_relations = rewriting.view.from.len().saturating_sub(orig_rels - 1);
        let extra_joins = rewriting
            .view
            .conditions
            .len()
            .saturating_sub(original.conditions.len().saturating_sub(dropped_conditions));
        let extent_penalty = match rewriting.verdict {
            ExtentVerdict::Equivalent => 0.0,
            ExtentVerdict::Superset => self.extent_superset,
            ExtentVerdict::Subset => self.extent_subset,
            ExtentVerdict::Unknown => self.extent_unknown,
        };
        let total = self.dropped_attr * dropped_attrs as f64
            + self.dropped_condition * dropped_conditions as f64
            + self.replaced_component * replaced_components as f64
            + self.extra_relation * extra_relations as f64
            + self.extra_join * extra_joins as f64
            + extent_penalty;
        CostBreakdown {
            dropped_attrs,
            dropped_conditions,
            replaced_components,
            extra_relations,
            extra_joins,
            verdict: rewriting.verdict,
            total,
        }
    }

    /// Sort rewritings by ascending cost (stable, deterministic
    /// tie-break on the rendered definition).
    pub fn rank(&self, original: &ViewDefinition, rewritings: &mut [LegalRewriting]) {
        rewritings.sort_by(|a, b| {
            let ca = self.assess(original, a).total;
            let cb = self.assess(original, b).total;
            ca.partial_cmp(&cb)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.view.to_string().cmp(&b.view.to_string()))
        });
    }
}

/// Free-function convenience over [`CostModel::rank`].
pub fn rank_rewritings(
    model: &CostModel,
    original: &ViewDefinition,
    rewritings: &mut [LegalRewriting],
) {
    model.rank(original, rewritings);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::CvsOptions;
    use crate::testutil::travel_mkb;
    use eve_esql::parse_view;
    use eve_misd::{evolve, CapabilityChange};
    use eve_relational::{AttrRef, RelName};

    fn rewritings() -> (ViewDefinition, Vec<LegalRewriting>) {
        let mkb = travel_mkb();
        let customer = RelName::new("Customer");
        let mkb2 = evolve(&mkb, &CapabilityChange::DeleteRelation(customer.clone())).unwrap();
        let view = parse_view(
            "CREATE VIEW Customer-Passengers-Asia AS
             SELECT C.Name (false, true), C.Age (true, true),
                    P.Participant (true, true), P.TourID (true, true)
             FROM Customer C (true, true), FlightRes F (true, true), Participant P (true, true)
             WHERE (C.Name = F.PName) (false, true) AND (F.Dest = 'Asia')
               AND (P.StartDate = F.Date) AND (P.Loc = 'Asia')",
        )
        .unwrap();
        let rws =
            crate::testutil::cvs_dr(&view, &customer, &mkb, &mkb2, &CvsOptions::default()).unwrap();
        (view, rws)
    }

    #[test]
    fn covering_beats_dropping() {
        // A rewriting that covers Age must cost less than one that drops
        // it, under the default weights (information loss dominates).
        let (view, rws) = rewritings();
        let model = CostModel::default();
        let age = AttrRef::new("Customer", "Age");
        let with_age = rws
            .iter()
            .find(|r| r.replacement.covers.contains_key(&age))
            .expect("covering candidate");
        let without_age = rws
            .iter()
            .find(|r| !r.replacement.covers.contains_key(&age))
            .expect("dropping candidate");
        let c_with = model.assess(&view, with_age);
        let c_without = model.assess(&view, without_age);
        assert!(
            c_with.total < c_without.total,
            "covering {c_with} should beat dropping {c_without}"
        );
        assert_eq!(c_with.dropped_attrs, 0);
        assert_eq!(c_without.dropped_attrs, 1);
    }

    #[test]
    fn rank_orders_by_cost() {
        let (view, mut rws) = rewritings();
        let model = CostModel::default();
        model.rank(&view, &mut rws);
        let costs: Vec<f64> = rws.iter().map(|r| model.assess(&view, r).total).collect();
        assert!(costs.windows(2).all(|w| w[0] <= w[1]), "{costs:?}");
        // Best candidate keeps all four SELECT items.
        assert_eq!(rws[0].view.select.len(), 4);
    }

    #[test]
    fn extent_uncertainty_costs() {
        let model = CostModel::default();
        // Two otherwise-identical assessments differ only in verdict.
        let (view, rws) = rewritings();
        for r in &rws {
            let c = model.assess(&view, r);
            match r.verdict {
                ExtentVerdict::Unknown => assert!(c.total >= model.extent_unknown),
                ExtentVerdict::Equivalent => {}
                _ => assert!(c.total >= model.extent_superset.min(model.extent_subset)),
            }
        }
    }

    #[test]
    fn breakdown_display() {
        let (view, rws) = rewritings();
        let c = CostModel::default().assess(&view, &rws[0]);
        let s = c.to_string();
        assert!(s.starts_with("cost "), "{s}");
        assert!(s.contains("extent"), "{s}");
    }
}
