//! View synchronization for `ch = delete-attribute R.A`.
//!
//! "The algorithm for the delete-attribute operator is a simplified
//! version of \[CVS\] and is omitted in this paper due to space
//! limitations" (§5). Reconstruction:
//!
//! * components of the view not referencing `R.A` are unaffected;
//! * a replaceable component referencing `R.A` is rewritten by a cover:
//!   a function-of constraint `F_{R.A, S.B}` of the *old* MKB whose
//!   source relation `S` survives, joined into the view along a chain of
//!   join constraints of `H(MKB')` connecting `S` to the view's
//!   relations (Example 4 of the paper: `Customer.Addr` rerouted through
//!   `Person` along `JC_{Customer, Person}`);
//! * a dispensable component with no usable cover is dropped;
//! * an indispensable, non-replaceable (or uncoverable) component makes
//!   the view incurable.
//!
//! Like the delete-relation case, one rewriting is produced per viable
//! cover, P3 is certified from PC constraints, and the candidates are
//! ordered best-first.

use crate::error::CvsError;
use crate::extent::{satisfies_extent_param, ExtentVerdict};
use crate::index::MkbIndex;
use crate::legal::LegalRewriting;
use crate::options::CvsOptions;
use crate::replacement::{CoverChoice, Replacement};
use eve_esql::{CondItem, EvolutionParams, FromItem, SelectItem, ViewDefinition};
use eve_misd::{ExtentOp, PartialComplete};
use eve_relational::{AttrRef, Clause, RelName};
use std::collections::BTreeSet;
use std::sync::Arc;

/// Synchronize `view` under `delete-attribute attr` against a prebuilt
/// [`MkbIndex`], returning the legal rewritings ordered best-first.
///
/// Covers, the capability-filtered `H'(MKB')`, and PC buckets all come
/// from the index; the cover-to-view connection chain goes through the
/// index's memoized [`MkbIndex::connect_tree`].
pub fn synchronize_delete_attribute_indexed(
    view: &ViewDefinition,
    attr: &AttrRef,
    index: &MkbIndex<'_>,
    opts: &CvsOptions,
) -> Result<Vec<LegalRewriting>, CvsError> {
    if !view.uses_attr(attr) {
        return Err(CvsError::ViewNotAffected(attr.relation.clone()));
    }

    // Classify the components that use the attribute.
    let mut required = false;
    let mut frozen = false;
    let mut replace_worthy = false;
    let mut classify = |dispensable: bool, replaceable: bool| {
        if replaceable {
            replace_worthy = true;
        }
        if !dispensable {
            required = true;
            if !replaceable {
                frozen = true;
            }
        }
    };
    for item in &view.select {
        if item.expr.attrs().contains(attr) {
            classify(item.params.dispensable, item.params.replaceable);
        }
    }
    for cond in &view.conditions {
        if cond.clause.attrs().contains(attr) {
            classify(cond.params.dispensable, cond.params.replaceable);
        }
    }
    if frozen {
        return Err(CvsError::IndispensableNotReplaceable {
            component: attr.to_string(),
        });
    }

    // Covers from the old MKB whose source survives in MKB' (the cover's
    // own attributes must have survived too).
    let covers: Vec<CoverChoice> = if replace_worthy {
        index
            .covers_of(attr)
            .iter()
            .filter(|c| {
                index.h_prime().contains(&c.source)
                    && c.replacement
                        .attrs()
                        .iter()
                        .all(|a| index.mkb_prime().has_attr(a))
            })
            .cloned()
            .collect()
    } else {
        Vec::new()
    };

    let mut out = Vec::new();
    let mut last_err = if required && covers.is_empty() {
        CvsError::NoCover(attr.clone())
    } else {
        CvsError::NoLegalRewriting
    };

    // Candidate per cover: join the source relation in (if new) along a
    // join-constraint chain from the view's relations.
    for cover in &covers {
        match assemble_with_cover(view, attr, cover, index, opts) {
            Ok(r) => out.push(r),
            Err(e) => last_err = e,
        }
    }

    // The drop-only candidate (legal only when nothing required uses the
    // attribute).
    if !required {
        if let Ok(r) = assemble_drop_only(view, attr, opts) {
            out.push(r);
        }
    }

    if out.is_empty() {
        return Err(last_err);
    }
    out.sort_by_key(|r: &LegalRewriting| (!r.satisfies_p3, r.view.from.len(), r.view.to_string()));
    Ok(out)
}

fn substitute_everywhere(
    view: &ViewDefinition,
    attr: &AttrRef,
    cover: Option<&CoverChoice>,
) -> (ViewDefinition, Vec<usize>, Vec<CondItem>, bool) {
    let mut select = Vec::new();
    let mut kept_select = Vec::new();
    let mut dropped_conditions = Vec::new();
    let mut dropped_any_select = false;
    for (i, item) in view.select.iter().enumerate() {
        let mut expr = item.expr.clone();
        if let Some(c) = cover {
            if item.params.replaceable {
                expr = expr.substitute(attr, &c.replacement);
            }
        }
        if expr.attrs().contains(attr) {
            dropped_any_select = true;
            continue;
        }
        let changed = expr != item.expr;
        let alias = item
            .alias
            .clone()
            .or_else(|| if changed { item.output_name() } else { None });
        let params = if changed {
            EvolutionParams::new(item.params.dispensable, true)
        } else {
            item.params
        };
        kept_select.push(i);
        select.push(SelectItem {
            expr,
            alias,
            params,
        });
    }
    let mut conditions = Vec::new();
    for cond in &view.conditions {
        let mut clause = cond.clause.clone();
        if let Some(c) = cover {
            if cond.params.replaceable {
                clause = clause.substitute(attr, &c.replacement);
            }
        }
        if clause.attrs().contains(attr) {
            dropped_conditions.push(cond.clone());
            continue;
        }
        let changed = clause != cond.clause;
        let params = if changed {
            EvolutionParams::new(cond.params.dispensable, true)
        } else {
            cond.params
        };
        conditions.push(CondItem { clause, params });
    }
    let interface = view.interface.as_ref().map(|names| {
        kept_select
            .iter()
            .filter_map(|&i| names.get(i).cloned())
            .collect()
    });
    (
        ViewDefinition {
            name: view.name.clone(),
            interface,
            extent: view.extent,
            select,
            from: view.from.clone(),
            conditions,
        },
        kept_select,
        dropped_conditions,
        dropped_any_select,
    )
}

fn assemble_with_cover(
    view: &ViewDefinition,
    attr: &AttrRef,
    cover: &CoverChoice,
    index: &MkbIndex<'_>,
    opts: &CvsOptions,
) -> Result<LegalRewriting, CvsError> {
    let (mut new_view, kept_select, dropped_conditions, _) =
        substitute_everywhere(view, attr, Some(cover));

    // Join the cover's relation in, if it is not already in FROM.
    let mut added_joins = Vec::new();
    let from_rels: BTreeSet<RelName> = new_view.from.iter().map(|f| f.relation.clone()).collect();
    if !from_rels.contains(&cover.source) {
        // Connect the cover to the view: prefer a chain anchored at the
        // relation that owned the deleted attribute (it is still in FROM
        // — only the attribute disappeared).
        let mut terminals: BTreeSet<RelName> = [attr.relation.clone()].into_iter().collect();
        terminals.insert(cover.source.clone());
        let tree = index
            .connect_tree(&terminals, opts.max_path_edges)
            .ok_or(CvsError::Disconnected)?;
        for rel in &tree.relations {
            if !from_rels.contains(rel) {
                new_view.from.push(FromItem {
                    relation: rel.clone(),
                    alias: None,
                    params: EvolutionParams::new(false, true),
                });
            }
        }
        added_joins = tree.joins.clone();
        let mut seen: BTreeSet<Clause> = new_view
            .conditions
            .iter()
            .map(|c| c.clause.normalized())
            .collect();
        for jc in &added_joins {
            for clause in jc.predicate.clauses() {
                if seen.insert(clause.normalized()) {
                    new_view.conditions.push(CondItem {
                        clause: clause.clone(),
                        params: EvolutionParams::new(false, true),
                    });
                }
            }
        }
    }

    if opts.check_consistency && !new_view.where_conjunction().is_consistent() {
        return Err(CvsError::Inconsistent);
    }

    // P3: certify via PC constraints between the cover relation and the
    // attribute's relation (Example 4 uses
    // π_{Name,PAddr}(Person) ⊇ π_{Name,Addr}(Customer)).
    let verdict = certify_attr_swap(
        index.pcs_between(&cover.source, &attr.relation),
        attr,
        cover,
        &added_joins,
        &dropped_conditions,
    );
    let satisfies_p3 = satisfies_extent_param(view.extent, verdict);

    let replacement = Replacement {
        covers: Arc::new([(attr.clone(), cover.clone())].into_iter().collect()),
        relations: new_view.from.iter().map(|f| f.relation.clone()).collect(),
        joins: added_joins,
        c_max_min: Arc::default(),
        dropped_conditions: Arc::default(),
    };
    Ok(LegalRewriting {
        view: new_view,
        replacement,
        verdict,
        satisfies_p3,
        kept_select,
        dropped_conditions,
    })
}

fn assemble_drop_only(
    view: &ViewDefinition,
    attr: &AttrRef,
    opts: &CvsOptions,
) -> Result<LegalRewriting, CvsError> {
    let (new_view, kept_select, dropped_conditions, _) = substitute_everywhere(view, attr, None);
    if new_view.select.is_empty() {
        return Err(CvsError::NoLegalRewriting);
    }
    if opts.check_consistency && !new_view.where_conjunction().is_consistent() {
        return Err(CvsError::Inconsistent);
    }
    // Dropping SELECT attributes is neutral under the common-interface
    // comparison; dropping conditions widens.
    let verdict = if dropped_conditions.is_empty() {
        ExtentVerdict::Equivalent
    } else {
        ExtentVerdict::Superset
    };
    let satisfies_p3 = satisfies_extent_param(view.extent, verdict);
    let relations = new_view.from.iter().map(|f| f.relation.clone()).collect();
    Ok(LegalRewriting {
        view: new_view,
        replacement: Replacement {
            covers: Arc::default(),
            relations,
            joins: Vec::new(),
            c_max_min: Arc::default(),
            dropped_conditions: Arc::default(),
        },
        verdict,
        satisfies_p3,
        kept_select,
        dropped_conditions,
    })
}

/// Certify the swap "attribute `R.A` now computed from `S`" using PC
/// constraints: a PC whose `S` side includes the replacement source
/// attributes and whose `R` side includes both `A` and the join
/// attributes of the chain's first hop. `candidate_pcs` are the PC
/// constraints relating `S` and `R` in either orientation (a superset is
/// fine — orientation is re-checked here).
fn certify_attr_swap(
    candidate_pcs: &[PartialComplete],
    attr: &AttrRef,
    cover: &CoverChoice,
    added_joins: &[eve_misd::JoinConstraint],
    dropped_conditions: &[CondItem],
) -> ExtentVerdict {
    // Attributes of R the swap relies on: A itself plus R's attributes in
    // the new join conditions.
    let mut used_r: BTreeSet<_> = [attr.attr.clone()].into_iter().collect();
    for jc in added_joins {
        for a in jc.attrs() {
            if a.relation == attr.relation {
                used_r.insert(a.attr);
            }
        }
    }

    let mut verdict = if added_joins.is_empty() {
        // The cover was already part of the view: substitution only.
        // The function-of constraint guarantees value equality on the
        // existing join relation, so the swap is extent-preserving.
        ExtentVerdict::Equivalent
    } else {
        let mut best = ExtentVerdict::Unknown;
        for pc in candidate_pcs {
            let (s_side, op, r_side) =
                if pc.left.relation == cover.source && pc.right.relation == attr.relation {
                    (&pc.left, pc.op, &pc.right)
                } else if pc.right.relation == cover.source && pc.left.relation == attr.relation {
                    (&pc.right, pc.op.flipped(), &pc.left)
                } else {
                    continue;
                };
            if !pc.left.cond.is_empty() || !pc.right.cond.is_empty() {
                continue;
            }
            let r_names: BTreeSet<_> = r_side.attrs.iter().cloned().collect();
            if !used_r.iter().all(|a| r_names.contains(a)) {
                continue;
            }
            let _ = s_side;
            let v = match op {
                ExtentOp::Equivalent => ExtentVerdict::Equivalent,
                ExtentOp::Superset | ExtentOp::ProperSuperset => ExtentVerdict::Superset,
                ExtentOp::Subset | ExtentOp::ProperSubset => ExtentVerdict::Subset,
            };
            best = match (best, v) {
                (ExtentVerdict::Unknown, x) => x,
                (ExtentVerdict::Superset, ExtentVerdict::Subset)
                | (ExtentVerdict::Subset, ExtentVerdict::Superset) => ExtentVerdict::Equivalent,
                (x, _) => x,
            };
        }
        best
    };
    if !dropped_conditions.is_empty() {
        verdict = verdict.meet(ExtentVerdict::Superset);
    }
    verdict
}

#[cfg(test)]
mod tests {
    use super::*;
    use eve_esql::parse_view;
    use eve_misd::{evolve, parse_misd, CapabilityChange, MetaKnowledgeBase};

    /// Test shorthand: build the per-change index and synchronize.
    fn sync_da(
        view: &ViewDefinition,
        attr: &AttrRef,
        mkb: &MetaKnowledgeBase,
        mkb_prime: &MetaKnowledgeBase,
        opts: &CvsOptions,
    ) -> Result<Vec<LegalRewriting>, CvsError> {
        let index = MkbIndex::new(mkb, mkb_prime, opts);
        synchronize_delete_attribute_indexed(view, attr, &index, opts)
    }

    /// The Example 4 universe: Customer, FlightRes, Person with the
    /// constraints (i)–(iv) of the paper.
    fn ex4_mkb() -> MetaKnowledgeBase {
        parse_misd(
            "RELATION IS1 Customer(Name str, Addr str, Phone str)
             RELATION IS4 FlightRes(PName str, Dest str)
             RELATION IS8 Person(Name str, SSN int, PAddr str)
             JOIN JC1: Customer, FlightRes ON Customer.Name = FlightRes.PName
             JOIN JCP: Customer, Person ON Customer.Name = Person.Name
             FUNCOF FP: Customer.Addr = Person.PAddr
             PC PC1: Person(Name, PAddr) superset Customer(Name, Addr)",
        )
        .unwrap()
    }

    /// Eq. (3): Asia-Customer with indispensable, replaceable Addr.
    fn eq3_view() -> ViewDefinition {
        parse_view(
            "CREATE VIEW Asia-Customer (AName, AAddr, APh) (VE = superset) AS
             SELECT C.Name, C.Addr (AD = false, AR = true), C.Phone
             FROM Customer C, FlightRes F
             WHERE (C.Name = F.PName) AND (F.Dest = 'Asia')",
        )
        .unwrap()
    }

    #[test]
    fn example_4_rewriting() {
        // delete-attribute Customer.Addr → Eq. (4): Person joined in via
        // JC_{Customer,Person}; C.Addr → P.PAddr; VE = ⊇ certified by the
        // PC constraint (iv).
        let mkb = ex4_mkb();
        let attr = AttrRef::new("Customer", "Addr");
        let change = CapabilityChange::DeleteAttribute(attr.clone());
        let mkb2 = evolve(&mkb, &change).unwrap();
        let view = eq3_view();
        let rewritings = sync_da(&view, &attr, &mkb, &mkb2, &CvsOptions::default()).unwrap();
        assert!(!rewritings.is_empty());
        let best = &rewritings[0];
        let text = best.view.to_string();
        assert!(text.contains("Person.PAddr"), "{text}");
        assert!(
            text.contains("Customer.Name = Person.Name")
                || text.contains("Person.Name = Customer.Name"),
            "{text}"
        );
        assert!(!text.contains("Customer.Addr"), "{text}");
        // Interface stays three-wide (AName, AAddr, APh).
        assert_eq!(best.view.interface_names().len(), 3);
        // P3: VE=⊇ certified via PC1.
        assert_eq!(best.verdict, ExtentVerdict::Superset);
        assert!(best.satisfies_p3);
        // Legality.
        assert!(best.check_p1(&change));
        assert!(best.check_p2(&mkb2));
        assert!(best.check_p4(&view));
    }

    #[test]
    fn dispensable_attribute_dropped_when_uncoverable() {
        // Phone (no cover) deleted: Eq. (1) allows dropping it.
        let mkb = ex4_mkb();
        let attr = AttrRef::new("Customer", "Phone");
        let change = CapabilityChange::DeleteAttribute(attr.clone());
        let mkb2 = evolve(&mkb, &change).unwrap();
        let view = parse_view(
            "CREATE VIEW Asia-Customer (VE = superset) AS
             SELECT C.Name, C.Phone (AD = true, AR = false)
             FROM Customer C, FlightRes F
             WHERE (C.Name = F.PName)",
        )
        .unwrap();
        let rewritings = sync_da(&view, &attr, &mkb, &mkb2, &CvsOptions::default()).unwrap();
        let best = &rewritings[0];
        assert_eq!(best.view.select.len(), 1);
        assert_eq!(best.verdict, ExtentVerdict::Equivalent);
        assert!(best.check_p4(&view));
    }

    #[test]
    fn indispensable_uncoverable_fails() {
        let mkb = ex4_mkb();
        let attr = AttrRef::new("Customer", "Phone");
        let mkb2 = evolve(&mkb, &CapabilityChange::DeleteAttribute(attr.clone())).unwrap();
        let view =
            parse_view("CREATE VIEW V AS SELECT C.Name, C.Phone (AD = false) FROM Customer C")
                .unwrap();
        let err = sync_da(&view, &attr, &mkb, &mkb2, &CvsOptions::default()).unwrap_err();
        assert_eq!(err, CvsError::NoCover(attr));
    }

    #[test]
    fn nonreplaceable_indispensable_fails() {
        let mkb = ex4_mkb();
        let attr = AttrRef::new("Customer", "Addr");
        let mkb2 = evolve(&mkb, &CapabilityChange::DeleteAttribute(attr.clone())).unwrap();
        let view =
            parse_view("CREATE VIEW V AS SELECT C.Addr (AD = false, AR = false) FROM Customer C")
                .unwrap();
        let err = sync_da(&view, &attr, &mkb, &mkb2, &CvsOptions::default()).unwrap_err();
        assert!(matches!(err, CvsError::IndispensableNotReplaceable { .. }));
    }

    #[test]
    fn unaffected_view_errors() {
        let mkb = ex4_mkb();
        let attr = AttrRef::new("Customer", "Addr");
        let mkb2 = evolve(&mkb, &CapabilityChange::DeleteAttribute(attr.clone())).unwrap();
        let view = parse_view("CREATE VIEW V AS SELECT F.Dest FROM FlightRes F").unwrap();
        assert!(matches!(
            sync_da(&view, &attr, &mkb, &mkb2, &CvsOptions::default()),
            Err(CvsError::ViewNotAffected(_))
        ));
    }

    #[test]
    fn condition_using_deleted_attr_substituted() {
        // A WHERE condition over the deleted attribute is rewritten via
        // the cover, not dropped, when replaceable.
        let mkb = ex4_mkb();
        let attr = AttrRef::new("Customer", "Addr");
        let mkb2 = evolve(&mkb, &CapabilityChange::DeleteAttribute(attr.clone())).unwrap();
        let view = parse_view(
            "CREATE VIEW V (VE = superset) AS
             SELECT C.Name, C.Addr
             FROM Customer C
             WHERE (C.Addr = 'Ann Arbor')",
        )
        .unwrap();
        let rewritings = sync_da(&view, &attr, &mkb, &mkb2, &CvsOptions::default()).unwrap();
        let best = &rewritings[0];
        let text = best.view.to_string();
        assert!(text.contains("Person.PAddr = 'Ann Arbor'"), "{text}");
    }
}
