//! Evaluating an E-SQL view over a concrete database state.
//!
//! Used by the *empirical* side of Step 6: to compare the extents of the
//! original and evolved view (P3 of Def. 1), both are evaluated over
//! generated IS states. Evolution-parameter annotations play no role at
//! evaluation time — a view evaluates exactly like the plain SQL view it
//! decorates.

use eve_esql::ViewDefinition;
use eve_relational::{
    project, select, theta_join, AttrRef, Conjunction, Database, FuncRegistry, Relation,
    RelationalError,
};
use std::collections::BTreeSet;

/// Evaluate `view` against `db`.
///
/// Join order follows the FROM clause; conditions are pushed into the
/// join pipeline as soon as every relation they mention is available
/// (plain heuristic predicate push-down — the engine validates
/// correctness, it does not race anyone).
///
/// Output columns are named `view.<interface-name>` so that extents of
/// differently-shaped rewritings stay positionally comparable through
/// their shared interface names.
pub fn evaluate_view(
    view: &ViewDefinition,
    db: &Database,
    funcs: &FuncRegistry,
) -> Result<Relation, RelationalError> {
    let conditions = view.where_conjunction();
    let mut remaining: Vec<_> = conditions.clauses().to_vec();

    let mut acc: Option<Relation> = None;
    let mut joined: BTreeSet<_> = BTreeSet::new();
    for item in &view.from {
        let rel = db.require(&item.relation)?.clone();
        acc = Some(match acc {
            None => rel,
            Some(a) => theta_join(&a, &rel, &Conjunction::empty(), funcs)?,
        });
        joined.insert(item.relation.clone());
        // Push down every condition now fully covered.
        let (ready, rest): (Vec<_>, Vec<_>) = remaining
            .into_iter()
            .partition(|c| c.relations().iter().all(|r| joined.contains(r)));
        remaining = rest;
        if !ready.is_empty() {
            let a = acc.take().expect("accumulator set above");
            acc = Some(select(&a, &Conjunction::new(ready), funcs)?);
        }
    }
    let acc = match acc {
        Some(a) => a,
        None => Relation::new(eve_relational::Schema::new()),
    };
    debug_assert!(
        remaining.is_empty(),
        "conditions referencing unknown relations"
    );

    let names = view.interface_names();
    let columns: Vec<(AttrRef, _)> = view
        .select
        .iter()
        .zip(names)
        .map(|(item, name)| (AttrRef::new(view.name.as_str(), name), item.expr.clone()))
        .collect();
    project(&acc, &columns, funcs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eve_esql::parse_view;
    use eve_relational::{AttributeDef, DataType, RelName, Schema, Tuple, Value};

    fn db() -> Database {
        let mut db = Database::new();
        let cust = RelName::new("Customer");
        let schema = Schema::of_relation(
            &cust,
            &[
                AttributeDef::new("Name", DataType::Str),
                AttributeDef::new("Age", DataType::Int),
            ],
        );
        let rel = Relation::from_rows(
            schema,
            [("ann", 30), ("bob", 17), ("cat", 45)]
                .map(|(n, a)| Tuple::new(vec![Value::str(n), Value::Int(a)])),
        )
        .unwrap();
        db.put(cust, rel);

        let fr = RelName::new("FlightRes");
        let schema = Schema::of_relation(
            &fr,
            &[
                AttributeDef::new("PName", DataType::Str),
                AttributeDef::new("Dest", DataType::Str),
            ],
        );
        let rel = Relation::from_rows(
            schema,
            [("ann", "Asia"), ("bob", "Europe"), ("cat", "Asia")]
                .map(|(n, d)| Tuple::new(vec![Value::str(n), Value::str(d)])),
        )
        .unwrap();
        db.put(fr, rel);
        db
    }

    #[test]
    fn evaluates_select_from_where() {
        let v = parse_view(
            "CREATE VIEW V AS SELECT C.Name, C.Age FROM Customer C, FlightRes F
             WHERE (C.Name = F.PName) AND (F.Dest = 'Asia') AND (C.Age > 18)",
        )
        .unwrap();
        let out = evaluate_view(&v, &db(), &FuncRegistry::new()).unwrap();
        assert_eq!(out.len(), 2); // ann(30), cat(45)
        assert!(out.schema().contains(&AttrRef::new("V", "Name")));
    }

    #[test]
    fn single_relation_no_where() {
        let v = parse_view("CREATE VIEW V AS SELECT C.Name FROM Customer C").unwrap();
        let out = evaluate_view(&v, &db(), &FuncRegistry::new()).unwrap();
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn computed_projection() {
        let v = parse_view(
            "CREATE VIEW V AS SELECT C.Age * 2 AS Doubled FROM Customer C WHERE C.Name = 'ann'",
        )
        .unwrap();
        let out = evaluate_view(&v, &db(), &FuncRegistry::new()).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.rows().next().unwrap().values()[0], Value::Int(60));
        assert!(out.schema().contains(&AttrRef::new("V", "Doubled")));
    }

    #[test]
    fn missing_relation_errors() {
        let v = parse_view("CREATE VIEW V AS SELECT T.x FROM T").unwrap();
        assert!(evaluate_view(&v, &db(), &FuncRegistry::new()).is_err());
    }

    #[test]
    fn explicit_interface_names_columns() {
        let v = parse_view("CREATE VIEW V (N, A) AS SELECT C.Name, C.Age FROM Customer C").unwrap();
        let out = evaluate_view(&v, &db(), &FuncRegistry::new()).unwrap();
        assert!(out.schema().contains(&AttrRef::new("V", "N")));
        assert!(out.schema().contains(&AttrRef::new("V", "A")));
    }
}
