//! The end-to-end view synchronizer: the EVE loop that keeps a set of
//! registered views in synch with an evolving information space.
//!
//! [`Synchronizer::apply`] executes the full three-step strategy of §4
//! for one capability change:
//!
//! 1. evolve the MKB (`eve_misd::evolve`);
//! 2. detect affected views ([`crate::affected`]);
//! 3. rewrite each affected view — CVS for `delete-relation`, the
//!    simplified algorithm for `delete-attribute`, transparent reference
//!    rewriting for renames; `add-*` changes never touch views.
//!
//! For each affected view the best legal rewriting is adopted (P3-certified
//! first); if none exists the view is *disabled* — exactly what classical
//! view technology would have done to every affected view.
//!
//! The per-operator algorithms live behind
//! [`crate::engine::SynchronizationStrategy`]; `apply` builds one
//! [`MkbIndex`] per change and dispatches through
//! [`crate::engine::synchronize_view`]. State (the MKB and every view
//! definition) is held in [`std::sync::Arc`] snapshots, so concurrent
//! readers ([`crate::service::SharedSynchronizer`]) get copy-on-write
//! handles instead of deep clones.
//!
//! When [`CvsOptions::parallelism`] (or the `EVE_PARALLELISM`
//! environment variable) asks for more than one worker, the affected
//! views fan out across a [`parpool`] work-stealing pool, all borrowing
//! the same read-only [`MkbIndex`]; results merge back in registration
//! order, so parallel and sequential runs produce byte-identical
//! outcomes.

use crate::affected::{is_affected, is_evaluable};
use crate::cost::CostModel;
use crate::delta::{DeltaSummary, IndexCore, MkbDelta};
use crate::engine;
use crate::error::CvsError;
use crate::faults;
use crate::index::{CacheStats, MemoCarry, MkbIndex};
use crate::legal::LegalRewriting;
use crate::options::{CvsOptions, FailurePolicy, IndexMaintenance};
use crate::rewrite::SearchStats;
use crate::telem;
use eve_esql::{validate_view, ViewDefinition};
use eve_misd::{evolve, CapabilityChange, MetaKnowledgeBase, MisdError};
use std::fmt;
use std::sync::Arc;

/// Why one view's synchronization task failed (see
/// [`ViewOutcome::Failed`]): the panic's deterministic description plus
/// whether it was retryable. Injected faults (`eve-faults`) render their
/// site address; organic panics render their message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SyncFailure {
    /// A non-retryable panic unwound out of the view's task.
    Panicked {
        /// The panic message (or injected-fault description).
        message: String,
    },
    /// A transient failure persisted through every allowed retry.
    Transient {
        /// The failure message of the last attempt.
        message: String,
    },
}

impl SyncFailure {
    /// The failure message, whatever the kind.
    pub fn message(&self) -> &str {
        match self {
            SyncFailure::Panicked { message } | SyncFailure::Transient { message } => message,
        }
    }
}

impl fmt::Display for SyncFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SyncFailure::Panicked { message } => write!(f, "panicked: {message}"),
            SyncFailure::Transient { message } => write!(f, "transient: {message}"),
        }
    }
}

/// The panic payload [`Synchronizer::apply`] re-raises under
/// [`FailurePolicy::FailFast`]: the original view-task panic wrapped
/// with the identity of the change and view that died, so
/// [`crate::SharedSynchronizer`] (and any other `catch_unwind` boundary)
/// can report *what* poisoned the lock instead of just *that* it was
/// poisoned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SyncPanic {
    /// The capability change being applied when the task died.
    pub change: String,
    /// The view whose task panicked.
    pub view: String,
    /// The task's panic message (or injected-fault description).
    pub message: String,
}

impl fmt::Display for SyncPanic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "view {} panicked while applying {}: {}",
            self.view, self.change, self.message
        )
    }
}

/// What happened to one view under one capability change.
#[derive(Debug, Clone, PartialEq)]
pub enum ViewOutcome {
    /// A previously disabled view became evaluable again (every element
    /// it references exists in the evolved MKB) and was re-activated
    /// with its last known definition.
    Revived,
    /// The view was not affected.
    Unchanged,
    /// The view was rewritten; the adopted definition is stored back into
    /// the synchronizer.
    Rewritten {
        /// The adopted rewriting (boxed: a full rewriting is an order of
        /// magnitude larger than the other variants).
        chosen: Box<LegalRewriting>,
        /// The remaining legal rewritings, best-first.
        alternatives: Vec<LegalRewriting>,
        /// How the rewriting search went (candidates generated, pruned,
        /// kept, and whether a [`crate::options::SearchBudget`] cut it
        /// short) — truncation is reported, never silent.
        stats: SearchStats,
    },
    /// No legal rewriting exists; the view is removed from the active
    /// set.
    Disabled {
        /// Why synchronization failed.
        reason: CvsError,
    },
    /// The view's synchronization task panicked and
    /// [`FailurePolicy::Degrade`] contained it: after `attempts` tries
    /// the view is parked (removed from the active set, kept with its
    /// last known definition for revival) while every other view's
    /// outcome stays byte-identical to the fault-free run.
    Failed {
        /// The last attempt's failure.
        error: SyncFailure,
        /// Total synchronization attempts made (1 + retries).
        attempts: u32,
    },
}

impl ViewOutcome {
    /// Did the view survive (unchanged or rewritten)?
    pub fn survived(&self) -> bool {
        !matches!(
            self,
            ViewOutcome::Disabled { .. } | ViewOutcome::Failed { .. }
        )
    }
}

/// The outcome of applying one capability change.
#[derive(Debug, Clone)]
pub struct ChangeOutcome {
    /// The change that was applied.
    pub change: CapabilityChange,
    /// Per-view outcomes, in view registration order.
    pub views: Vec<(String, ViewOutcome)>,
    /// Hit/miss totals of the per-change [`MkbIndex`] memo tables.
    pub cache: CacheStats,
}

impl PartialEq for ChangeOutcome {
    /// `cache` is deliberately excluded: hit/miss totals depend on how
    /// concurrent workers interleave on the shared memo tables, while
    /// the adopted rewritings are required to be schedule-independent.
    fn eq(&self, other: &Self) -> bool {
        self.change == other.change && self.views == other.views
    }
}

impl ChangeOutcome {
    /// Number of views that survived the change.
    pub fn survivors(&self) -> usize {
        self.views.iter().filter(|(_, o)| o.survived()).count()
    }

    /// Number of views rewritten by the change.
    pub fn rewritten(&self) -> usize {
        self.views
            .iter()
            .filter(|(_, o)| matches!(o, ViewOutcome::Rewritten { .. }))
            .count()
    }

    /// Number of views that failed (panic contained by
    /// [`FailurePolicy::Degrade`]) under the change.
    pub fn failed(&self) -> usize {
        self.views
            .iter()
            .filter(|(_, o)| matches!(o, ViewOutcome::Failed { .. }))
            .count()
    }
}

/// A report over a sequence of applied changes.
#[derive(Debug, Clone, Default)]
pub struct SyncReport {
    /// One outcome per applied change, in order.
    pub outcomes: Vec<ChangeOutcome>,
}

impl SyncReport {
    /// Total views disabled across all changes.
    pub fn disabled(&self) -> usize {
        self.outcomes
            .iter()
            .flat_map(|o| &o.views)
            .filter(|(_, o)| !o.survived())
            .count()
    }
}

impl fmt::Display for ChangeOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "change: {}", self.change)?;
        for (name, outcome) in &self.views {
            match outcome {
                ViewOutcome::Unchanged => writeln!(f, "  {name}: unchanged")?,
                ViewOutcome::Rewritten {
                    chosen,
                    alternatives,
                    stats,
                } => writeln!(
                    f,
                    "  {name}: rewritten (V' {} V, {} alternative(s)){}",
                    chosen.verdict,
                    alternatives.len(),
                    if stats.budget_exhausted {
                        " [search truncated by budget]"
                    } else {
                        ""
                    }
                )?,
                ViewOutcome::Disabled { reason } => writeln!(f, "  {name}: DISABLED ({reason})")?,
                ViewOutcome::Failed { error, attempts } => {
                    writeln!(f, "  {name}: FAILED after {attempts} attempt(s) ({error})")?
                }
                ViewOutcome::Revived => writeln!(f, "  {name}: revived")?,
            }
        }
        Ok(())
    }
}

/// Builder for [`Synchronizer`].
#[derive(Debug, Clone, Default)]
pub struct SynchronizerBuilder {
    mkb: MetaKnowledgeBase,
    views: Vec<(String, ViewDefinition)>,
    opts: CvsOptions,
    require_p3: bool,
    cost_model: Option<CostModel>,
}

impl SynchronizerBuilder {
    /// Start from an MKB.
    pub fn new(mkb: MetaKnowledgeBase) -> Self {
        SynchronizerBuilder {
            mkb,
            views: Vec::new(),
            opts: CvsOptions::default(),
            require_p3: false,
            cost_model: None,
        }
    }

    /// Register a view. The view must be structurally valid with respect
    /// to the §4 assumptions ([`validate_view`]).
    pub fn with_view(mut self, view: ViewDefinition) -> Result<Self, String> {
        let errs = validate_view(&view);
        if !errs.is_empty() {
            return Err(errs
                .iter()
                .map(|e| e.to_string())
                .collect::<Vec<_>>()
                .join("; "));
        }
        self.views.push((view.name.clone(), view));
        Ok(self)
    }

    /// Override the CVS search options.
    pub fn with_options(mut self, opts: CvsOptions) -> Self {
        self.opts = opts;
        self
    }

    /// Require property P3 to be *certified* for a rewriting to be
    /// adopted (default: adopt the best candidate and report its
    /// verdict — the paper's Step 6 is explicitly left open, so
    /// uncertified candidates are presented rather than discarded).
    pub fn require_p3(mut self, require: bool) -> Self {
        self.require_p3 = require;
        self
    }

    /// Rank candidate rewritings with a preservation [`CostModel`] and
    /// adopt the cheapest one (default: the built-in P3-first, smallest-
    /// first ordering).
    pub fn with_cost_model(mut self, model: CostModel) -> Self {
        self.cost_model = Some(model);
        self
    }

    /// Finish building. Out-of-domain option values are clamped via
    /// [`CvsOptions::validated`].
    pub fn build(self) -> Synchronizer {
        let mkb = Arc::new(self.mkb);
        let opts = self.opts.validated();
        let views: Vec<(String, Arc<ViewDefinition>)> = self
            .views
            .into_iter()
            .map(|(n, v)| (n, Arc::new(v)))
            .collect();
        let core = IndexCore::build(&mkb);
        let initial = Snapshot {
            change: None,
            mkb: Arc::clone(&mkb),
            views: views.clone(),
            disabled: Vec::new(),
        };
        Synchronizer {
            mkb,
            views,
            disabled: Vec::new(),
            opts,
            require_p3: self.require_p3,
            cost_model: self.cost_model,
            chain: vec![Arc::new(VersionEntry {
                version: 0,
                delta: None,
                snapshot: initial,
                core: core.clone(),
            })],
            core,
            carry: None,
        }
    }
}

/// A point-in-time snapshot of the synchronizer's evolving state.
///
/// Snapshots share the MKB and view definitions with the live state via
/// [`Arc`] — taking one is O(number of views), never a deep copy.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// The change that produced this state (None for the initial state).
    pub change: Option<CapabilityChange>,
    /// MKB state.
    pub mkb: Arc<MetaKnowledgeBase>,
    /// Active views.
    pub views: Vec<(String, Arc<ViewDefinition>)>,
    /// Disabled views (name, last known definition).
    pub disabled: Vec<(String, Arc<ViewDefinition>)>,
}

/// One link of the [`Synchronizer`]'s append-only version chain: the
/// state after the `version`-th applied change, plus what the change did
/// to the derived index state.
///
/// Entries structurally share everything (`Arc` snapshots and an
/// `Arc`-shared [`IndexCore`]) — the chain costs `O(delta)` per version,
/// not `O(MKB)`. Version 0 is the initial state.
#[derive(Debug, Clone)]
pub struct VersionEntry {
    /// Position in the chain (0 = initial state).
    pub version: usize,
    /// What the change's [`MkbDelta`] did to the derived state (`None`
    /// for the initial entry, and for changes applied under
    /// [`IndexMaintenance::Rebuild`], which bypass delta computation).
    pub delta: Option<DeltaSummary>,
    /// The full state snapshot at this version (MKB, active and
    /// disabled views, the producing change).
    pub snapshot: Snapshot,
    /// The delta-maintained derived index state of `snapshot.mkb`.
    pub(crate) core: IndexCore,
}

impl VersionEntry {
    /// The change that produced this version (`None` for version 0).
    pub fn change(&self) -> Option<&CapabilityChange> {
        self.snapshot.change.as_ref()
    }
}

/// The EVE view synchronizer: an MKB plus the registered (active) views.
///
/// State is held in copy-on-write [`Arc`] snapshots: `apply` builds the
/// next state and swaps the handles, so readers holding earlier
/// snapshots (via [`Synchronizer::mkb_snapshot`] /
/// [`Synchronizer::view_snapshots`], or through
/// [`crate::service::SharedSynchronizer`]) keep a consistent view
/// without copying.
#[derive(Debug)]
pub struct Synchronizer {
    mkb: Arc<MetaKnowledgeBase>,
    views: Vec<(String, Arc<ViewDefinition>)>,
    /// Views disabled by earlier changes, kept with their last known
    /// definition for possible revival (see [`Synchronizer::apply`]).
    disabled: Vec<(String, Arc<ViewDefinition>)>,
    opts: CvsOptions,
    require_p3: bool,
    cost_model: Option<CostModel>,
    /// The append-only version chain: entry 0 is the initial state,
    /// entry `i > 0` the state after the `i`-th applied change, each
    /// with its delta and `Arc`-shared derived core (enables time
    /// travel / rollback / replay across the change log).
    chain: Vec<Arc<VersionEntry>>,
    /// The delta-maintained derived index state of the *current* MKB
    /// (invariant: `core` is always derived from `mkb`).
    core: IndexCore,
    /// Warm memo tables from the previous change's index, carried into
    /// the next change when [`IndexMaintenance::Incremental`] allows it.
    carry: Option<MemoCarry>,
}

impl Clone for Synchronizer {
    fn clone(&self) -> Self {
        Synchronizer {
            mkb: Arc::clone(&self.mkb),
            views: self.views.clone(),
            disabled: self.disabled.clone(),
            opts: self.opts,
            require_p3: self.require_p3,
            cost_model: self.cost_model,
            chain: self.chain.clone(),
            core: self.core.clone(),
            // The memo carry is a latency optimization, never semantics
            // (memoized functions are pure): a clone starts cold.
            carry: None,
        }
    }
}

impl Synchronizer {
    /// The current MKB state.
    pub fn mkb(&self) -> &MetaKnowledgeBase {
        &self.mkb
    }

    /// The options the synchronizer was built with.
    pub fn options(&self) -> &CvsOptions {
        &self.opts
    }

    /// Swap the failure policy in place. The deterministic simulator
    /// uses this to alternate `FailFast` and `Degrade` fault episodes
    /// on one synchronizer without rebuilding it (which would discard
    /// the version chain under test).
    pub fn set_failure_policy(&mut self, policy: FailurePolicy) {
        self.opts.failure = policy;
    }

    /// Register a new view at runtime, against the *current* MKB state.
    ///
    /// Unlike [`SynchronizerBuilder::with_view`] — which collects views
    /// before the version chain exists — runtime registration validates
    /// the view structurally ([`validate_view`]), rejects names already
    /// taken by an active or disabled view, and rejects views that
    /// reference relations absent from the current MKB.
    ///
    /// Registration is not a capability change: the version number does
    /// not advance and no chain entry is appended. The head entry's
    /// snapshot is updated in place, so [`Synchronizer::at_version`] at
    /// the current version (and [`Synchronizer::rollback_to`] the
    /// current version) observe the new view; rolling back *past* the
    /// registration point drops it, exactly as the view did not exist
    /// at that version.
    pub fn register_view(&mut self, view: ViewDefinition) -> Result<(), String> {
        let errs = validate_view(&view);
        if !errs.is_empty() {
            return Err(errs
                .iter()
                .map(|e| e.to_string())
                .collect::<Vec<_>>()
                .join("; "));
        }
        if self.views.iter().any(|(n, _)| *n == view.name)
            || self.disabled.iter().any(|(n, _)| *n == view.name)
        {
            return Err(format!("view name already registered: {}", view.name));
        }
        if let Some(missing) = view
            .relations()
            .into_iter()
            .find(|r| !self.mkb.contains_relation(r))
        {
            return Err(format!(
                "view {} references unknown relation {missing}",
                view.name
            ));
        }
        if let Some(missing) = view.referenced_attrs().into_iter().find(|a| {
            self.mkb
                .relation(&a.relation)
                .is_none_or(|d| d.attrs.iter().all(|attr| attr.name != a.attr))
        }) {
            return Err(format!(
                "view {} references unknown attribute {missing}",
                view.name
            ));
        }
        let name = view.name.clone();
        self.views.push((name, Arc::new(view)));
        if let Some(last) = self.chain.last_mut() {
            Arc::make_mut(last).snapshot.views = self.views.clone();
        }
        Ok(())
    }

    /// A shared handle to the current MKB state (cheap Arc clone; stays
    /// consistent even as the synchronizer applies further changes).
    pub fn mkb_snapshot(&self) -> Arc<MetaKnowledgeBase> {
        Arc::clone(&self.mkb)
    }

    /// The active views, in registration order.
    pub fn views(&self) -> impl Iterator<Item = &ViewDefinition> {
        self.views.iter().map(|(_, v)| v.as_ref())
    }

    /// Shared handles to all active views (cheap Arc clones, in
    /// registration order).
    pub fn view_snapshots(&self) -> Vec<(String, Arc<ViewDefinition>)> {
        self.views.clone()
    }

    /// Look up an active view by name.
    pub fn view(&self, name: &str) -> Option<&ViewDefinition> {
        self.views
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_ref())
    }

    /// A shared handle to one active view.
    pub fn view_snapshot(&self, name: &str) -> Option<Arc<ViewDefinition>> {
        self.views
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| Arc::clone(v))
    }

    /// The currently disabled views (name, last known definition).
    pub fn disabled_views(&self) -> impl Iterator<Item = (&str, &ViewDefinition)> {
        self.disabled.iter().map(|(n, v)| (n.as_str(), v.as_ref()))
    }

    /// Apply one capability change: evolve the MKB, synchronize every
    /// affected view, and return the outcome. Views with no legal
    /// rewriting are disabled (removed from the active set).
    ///
    /// One [`MkbIndex`] is built per change and shared by every affected
    /// view's synchronization — the MKB-derived search structures (and
    /// the enumeration cache inside the index) are computed once, not
    /// once per view.
    ///
    /// With [`CvsOptions::effective_parallelism`] `> 1` the affected
    /// views are synchronized concurrently on a [`parpool`] pool, all
    /// borrowing the shared read-only index. Results are merged back in
    /// registration order, so the outcome is byte-identical to a
    /// sequential run.
    pub fn apply(&mut self, change: &CapabilityChange) -> Result<ChangeOutcome, MisdError> {
        let mut apply_span = telem::span("apply");
        apply_span.label(|| change.to_string());
        let mkb_prime = evolve(&self.mkb, change)?;
        let mode = self.opts.index_maintenance;
        // Delta-maintain the derived core: project the change onto the
        // hypergraphs and constraint maps, then patch — `O(delta)`, not
        // `O(MKB)`. Rebuild mode bypasses this and reconstructs the core
        // from scratch at commit time (the equivalence oracle).
        let (delta, next_core) = match mode {
            IndexMaintenance::Rebuild => (None, None),
            IndexMaintenance::Incremental | IndexMaintenance::IncrementalFresh => {
                let d = MkbDelta::compute(&self.mkb, &mkb_prime, change);
                let next = self.core.apply_delta(&d);
                (Some(d), Some(next))
            }
        };
        // Memo tables survive a change only under full Incremental mode,
        // and only when the change left the relevant H' regions intact.
        let carry_in = match (mode, delta.as_ref(), next_core.as_ref()) {
            (IndexMaintenance::Incremental, Some(d), Some(next)) => {
                self.carry.take().and_then(|c| {
                    let (graph_delta, new_h_prime) = if self.opts.respect_capabilities {
                        (&d.graph_join, next.join_graph())
                    } else {
                        (&d.graph, next.hypergraph())
                    };
                    c.retained(graph_delta, new_h_prime)
                })
            }
            _ => {
                self.carry = None;
                None
            }
        };
        let mut outcomes = Vec::with_capacity(self.views.len());
        let mut next_views = Vec::with_capacity(self.views.len());
        let mut newly_disabled = Vec::new();
        let cache;
        let carry_out;

        {
            let index = match next_core.as_ref() {
                Some(next) => MkbIndex::from_cores(
                    &self.mkb, &mkb_prime, &self.core, next, &self.opts, carry_in,
                ),
                None => MkbIndex::new(&self.mkb, &mkb_prime, &self.opts),
            };

            // Fan the affected views out across the pool; unaffected
            // views never enter the queue. `map_in_order` hands results
            // back in submission (= registration) order.
            let affected: Vec<Arc<ViewDefinition>> = self
                .views
                .iter()
                .filter(|(_, v)| is_affected(v, change))
                .map(|(_, v)| Arc::clone(v))
                .collect();
            apply_span.field("affected", affected.len() as u64);
            // Stamped only when a fault plan is installed, so chaos
            // traces are distinguishable while fault-free traces keep
            // their pinned golden shape.
            if faults::active() {
                apply_span.field("fault-injection", 1);
            }
            let apply_ctx = apply_span.ctx();
            let index_ref = &index;
            let opts_ref = &self.opts;
            let require_p3 = self.require_p3;
            let cost_model = self.cost_model.as_ref();
            // One task body, shared by the pool fan-out and the retry
            // path, so a retried attempt is byte-for-byte the same
            // computation: same span shape, same fault scope (view
            // name — which also keeps injected-fault hit counts
            // deterministic across worker counts).
            let run_view = |task: usize, view: &ViewDefinition| {
                faults::scoped(&view.name, || {
                    // Pool workers have no span stack of their own:
                    // parent explicitly under the apply span so the
                    // fan-out shows up as one tree.
                    let mut view_span = telem::span_under("view-sync", apply_ctx);
                    view_span.label(|| view.name.clone());
                    view_span.field("task", task as u64);
                    engine::synchronize_view(
                        view, change, index_ref, opts_ref, require_p3, cost_model,
                    )
                })
            };
            let mut results =
                parpool::map_in_order(self.opts.effective_parallelism(), affected, |task, view| {
                    run_view(task, &view)
                })
                .into_iter();

            let policy = self.opts.failure;
            let mut task_index = 0usize;
            for (name, view) in &self.views {
                if !is_affected(view, change) {
                    outcomes.push((name.clone(), ViewOutcome::Unchanged));
                    next_views.push((name.clone(), Arc::clone(view)));
                    continue;
                }
                let task = task_index;
                task_index += 1;
                let outcome = match results.next().expect("one pool result per affected view") {
                    Ok(outcome) => outcome,
                    Err(panic) => Self::resolve_failure(policy, change, name, panic, || {
                        telem::counter_add("sync.view_retries", 1);
                        parpool::call_caught(task, || run_view(task, view))
                    }),
                };
                if let ViewOutcome::Rewritten { chosen, .. } = &outcome {
                    next_views.push((name.clone(), Arc::new(chosen.view.clone())));
                } else if outcome.survived() {
                    next_views.push((name.clone(), Arc::clone(view)));
                } else {
                    // Keep the last known definition around for revival
                    // (disabled *and* failed views may come back when
                    // the fault clears or the source returns).
                    newly_disabled.push((name.clone(), Arc::clone(view)));
                }
                outcomes.push((name.clone(), outcome));
            }

            // Revival: a disabled view whose references all exist again in
            // the evolved MKB (e.g. the deleted relation was re-added)
            // returns to the active set with its last known definition.
            let mut still_disabled = Vec::new();
            for (name, view) in self.disabled.drain(..) {
                if is_evaluable(&view, index.mkb_prime()) {
                    outcomes.push((name.clone(), ViewOutcome::Revived));
                    next_views.push((name, view));
                } else {
                    still_disabled.push((name, view));
                }
            }
            still_disabled.extend(newly_disabled);
            self.disabled = still_disabled;

            // Fold the per-index memo counters into the registry before
            // the index (and its atomics) goes away.
            cache = index.cache_stats();
            if telem::enabled() {
                telem::counter_add("index.cache.hits", cache.hits);
                telem::counter_add("index.cache.misses", cache.misses);
            }
            // Full Incremental mode keeps this change's warm memo tables
            // for the next change's index to start from.
            carry_out = match mode {
                IndexMaintenance::Incremental => Some(index.into_carry()),
                _ => None,
            };
        }

        self.views = next_views;
        self.mkb = Arc::new(mkb_prime);
        self.core = match next_core {
            Some(next) => next,
            // Rebuild mode: reconstruct the derived core from scratch so
            // the chain invariant (`core` derived from `mkb`) holds.
            None => IndexCore::build(&self.mkb),
        };
        self.carry = carry_out;
        self.chain.push(Arc::new(VersionEntry {
            version: self.chain.len(),
            delta: delta.map(|d| d.summary),
            snapshot: Snapshot {
                change: Some(change.clone()),
                mkb: Arc::clone(&self.mkb),
                views: self.views.clone(),
                disabled: self.disabled.clone(),
            },
            core: self.core.clone(),
        }));
        let outcome = ChangeOutcome {
            change: change.clone(),
            views: outcomes,
            cache,
        };
        if telem::enabled() {
            telem::counter_add("sync.changes", 1);
            telem::counter_add("sync.views.rewritten", outcome.rewritten() as u64);
            let disabled = outcome.views.iter().filter(|(_, o)| !o.survived()).count();
            telem::counter_add("sync.views.disabled", disabled as u64);
            let revived = outcome
                .views
                .iter()
                .filter(|(_, o)| matches!(o, ViewOutcome::Revived))
                .count();
            telem::counter_add("sync.views.revived", revived as u64);
            // Point-in-time levels for the scrape endpoint: how many
            // views are live vs parked after this change.
            telem::gauge_set("sync.views_active", self.views.len() as u64);
            telem::gauge_set("sync.views_disabled", self.disabled.len() as u64);
        }
        Ok(outcome)
    }

    /// Decide what a panicking view task becomes under the configured
    /// [`FailurePolicy`].
    ///
    /// * `FailFast` re-raises immediately, wrapping the payload in a
    ///   [`SyncPanic`] that names the change and view (the original
    ///   message is preserved inside).
    /// * `Degrade` retries *transient* failures (injected
    ///   `eve_faults` transient payloads) with a
    ///   deterministic linear backoff — retries run serially on the
    ///   applying thread, in registration order, inside the same fault
    ///   scope, so replay is schedule-independent — then lands the view
    ///   as [`ViewOutcome::Failed`]. Non-transient panics never retry.
    fn resolve_failure(
        policy: FailurePolicy,
        change: &CapabilityChange,
        name: &str,
        first: parpool::TaskPanic,
        mut retry: impl FnMut() -> Result<ViewOutcome, parpool::TaskPanic>,
    ) -> ViewOutcome {
        let mut attempts: u32 = 1;
        let mut panic = first;
        loop {
            let (message, transient) = match faults::injected_info(panic.payload.as_ref()) {
                Some((message, transient)) => (message, transient),
                None => (panic.message.clone(), false),
            };
            match policy {
                FailurePolicy::FailFast => {
                    // Last chance for evidence: dump the flight-recorder
                    // window before the panic unwinds out of the engine.
                    telem::flight_trigger("sync-panic", &change.to_string(), name);
                    std::panic::resume_unwind(Box::new(SyncPanic {
                        change: change.to_string(),
                        view: name.to_string(),
                        message,
                    }));
                }
                FailurePolicy::Degrade {
                    max_retries,
                    backoff,
                } => {
                    if transient && attempts <= max_retries {
                        if !backoff.is_zero() {
                            // Virtual-clock aware: under the simulator
                            // this advances virtual time instantly.
                            crate::clock::sleep(backoff.saturating_mul(attempts));
                        }
                        attempts += 1;
                        match retry() {
                            Ok(outcome) => return outcome,
                            Err(next) => {
                                panic = next;
                                continue;
                            }
                        }
                    }
                    telem::counter_add("service.view_failures", 1);
                    telem::flight_trigger("view-failed", &change.to_string(), name);
                    return ViewOutcome::Failed {
                        error: if transient {
                            SyncFailure::Transient { message }
                        } else {
                            SyncFailure::Panicked { message }
                        },
                        attempts,
                    };
                }
            }
        }
    }

    /// The evolution history: snapshot 0 is the initial state; snapshot
    /// `i > 0` is the state after the `i`-th applied change. Derived
    /// from the version chain ([`Synchronizer::chain`]); the snapshots
    /// `Arc`-share all state, so this is cheap.
    pub fn history(&self) -> Vec<Snapshot> {
        self.chain.iter().map(|e| e.snapshot.clone()).collect()
    }

    /// The current version number: 0 after construction, incremented by
    /// every applied change (equals `chain().len() - 1`).
    pub fn version(&self) -> usize {
        self.chain.len() - 1
    }

    /// The full version chain: entry 0 is the initial state, entry
    /// `i > 0` the state after the `i`-th change together with its
    /// delta summary.
    pub fn chain(&self) -> &[Arc<VersionEntry>] {
        &self.chain
    }

    /// Roll the synchronizer back to version `index` (0 = the initial
    /// state), discarding the later chain entries. Returns `false` (and
    /// does nothing) when the version is out of range.
    pub fn rollback_to(&mut self, index: usize) -> bool {
        let Some(entry) = self.chain.get(index).cloned() else {
            return false;
        };
        self.mkb = Arc::clone(&entry.snapshot.mkb);
        self.views = entry.snapshot.views.clone();
        self.disabled = entry.snapshot.disabled.clone();
        self.core = entry.core.clone();
        self.carry = None;
        self.chain.truncate(index + 1);
        true
    }

    /// Time travel: a forked synchronizer positioned at historical
    /// version `version`, exactly as the state was then (same MKB, same
    /// views, same `Arc`-shared derived core — nothing is recomputed).
    /// The fork's chain is truncated to that version; applying changes
    /// to it never affects `self`. Returns `None` when the version is
    /// out of range.
    pub fn at_version(&self, version: usize) -> Option<Synchronizer> {
        let mut fork = self.clone();
        let ok = fork.rollback_to(version);
        ok.then_some(fork)
    }

    /// Re-apply the recorded changes of versions `start+1 ..= end` on a
    /// fork rooted at version `start`, returning the accumulated report.
    /// The recorded changes evolved successfully the first time, so
    /// replaying them from the same states cannot fail. Returns `None`
    /// when the range is invalid (`start > end` or `end` out of range).
    pub fn replay(&self, start: usize, end: usize) -> Option<SyncReport> {
        if start > end || end >= self.chain.len() {
            return None;
        }
        let mut fork = self.at_version(start)?;
        let mut report = SyncReport::default();
        for entry in &self.chain[start + 1..=end] {
            let change = entry
                .snapshot
                .change
                .clone()
                .expect("non-initial chain entries record their change");
            report.outcomes.push(
                fork.apply(&change)
                    .expect("recorded change replays from its recorded state"),
            );
        }
        Some(report)
    }

    /// What-if against history: dry-run `change` as if it were applied
    /// at version `version` instead of now — "what would this change
    /// have done two versions ago?". Returns `None` when the version is
    /// out of range; the synchronizer itself is never mutated.
    pub fn preview_at(
        &self,
        version: usize,
        change: &CapabilityChange,
    ) -> Option<Result<ChangeOutcome, MisdError>> {
        let mut fork = self.at_version(version)?;
        Some(fork.apply(change))
    }

    /// Dry-run a change: compute the outcome (including all rewritings
    /// and disabled views) without mutating the synchronizer — "what
    /// would happen if IS1 dropped Customer?".
    pub fn preview(&self, change: &CapabilityChange) -> Result<ChangeOutcome, MisdError> {
        self.clone().apply(change)
    }

    /// Synchronize against a freshly published MKB snapshot: infer the
    /// capability-change log with [`eve_misd::infer_changes`], apply it,
    /// then merge the snapshot's constraints the evolution could not
    /// carry over (new join/function-of/PC constraints announced by the
    /// ISs). After this call `self.mkb()` equals the snapshot.
    pub fn sync_to(&mut self, snapshot: &MetaKnowledgeBase) -> Result<SyncReport, MisdError> {
        let diff = eve_misd::infer_changes(&self.mkb, snapshot);
        let report = self.apply_all(&diff.changes)?;
        // Adopt the snapshot wholesale: schemas already converged, and
        // the snapshot's constraint set is authoritative. The wholesale
        // merge can add constraints no change delta described, so the
        // derived core is rebuilt from scratch and the memo carry
        // dropped.
        self.mkb = Arc::new(snapshot.clone());
        self.core = IndexCore::build(&self.mkb);
        self.carry = None;
        if let Some(last) = self.chain.last_mut() {
            let entry = Arc::make_mut(last);
            entry.snapshot.mkb = Arc::clone(&self.mkb);
            entry.core = self.core.clone();
        }
        Ok(report)
    }

    /// Apply a newline/semicolon-separated script of textual changes
    /// (see [`CapabilityChange::parse`]), e.g.
    ///
    /// ```text
    /// delete-attribute Customer.Addr
    /// rename-relation Tour -> Excursion ;
    /// delete-relation Customer
    /// ```
    pub fn apply_script(&mut self, script: &str) -> Result<SyncReport, MisdError> {
        let changes: Vec<CapabilityChange> = script
            .lines()
            .flat_map(|l| l.split(';'))
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with("--"))
            .map(CapabilityChange::parse)
            .collect::<Result<_, _>>()?;
        self.apply_all(&changes)
    }

    /// Apply a sequence of changes, accumulating a report.
    pub fn apply_all(&mut self, changes: &[CapabilityChange]) -> Result<SyncReport, MisdError> {
        let mut report = SyncReport::default();
        for ch in changes {
            report.outcomes.push(self.apply(ch)?);
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::travel_mkb;
    use eve_esql::parse_view;
    use eve_relational::{AttrName, AttrRef, RelName};

    fn sync() -> Synchronizer {
        SynchronizerBuilder::new(travel_mkb())
            .with_view(
                parse_view(
                    "CREATE VIEW Customer-Passengers-Asia AS
                     SELECT C.Name (false, true), C.Age (true, true),
                            P.Participant (true, true), P.TourID (true, true),
                            P.StartDate (true, true), F.Date (true, true), F.PName (true, true)
                     FROM Customer C (true, true), FlightRes F (true, true), Participant P (true, true)
                     WHERE (C.Name = F.PName) (false, true) AND (F.Dest = 'Asia') (CD = true)
                       AND (P.StartDate = F.Date) (CD = true) AND (P.Loc = 'Asia') (CD = true)",
                )
                .unwrap(),
            )
            .unwrap()
            .with_view(
                parse_view("CREATE VIEW Tours AS SELECT T.TourName, T.NoDays FROM Tour T")
                    .unwrap(),
            )
            .unwrap()
            .build()
    }

    #[test]
    fn delete_relation_rewrites_affected_only() {
        let mut s = sync();
        let outcome = s
            .apply(&CapabilityChange::DeleteRelation(RelName::new("Customer")))
            .unwrap();
        assert_eq!(outcome.views.len(), 2);
        assert!(matches!(outcome.views[0].1, ViewOutcome::Rewritten { .. }));
        assert!(matches!(outcome.views[1].1, ViewOutcome::Unchanged));
        assert_eq!(outcome.survivors(), 2);
        assert_eq!(outcome.rewritten(), 1);
        // The stored view was updated.
        let v = s.view("Customer-Passengers-Asia").unwrap();
        assert!(!v.uses_relation(&RelName::new("Customer")));
        // The MKB evolved.
        assert!(!s.mkb().contains_relation(&RelName::new("Customer")));
    }

    #[test]
    fn rename_relation_transparent() {
        let mut s = sync();
        let outcome = s
            .apply(&CapabilityChange::RenameRelation {
                from: RelName::new("Tour"),
                to: RelName::new("Excursion"),
            })
            .unwrap();
        assert!(matches!(outcome.views[1].1, ViewOutcome::Rewritten { .. }));
        let v = s.view("Tours").unwrap();
        assert!(v.uses_relation(&RelName::new("Excursion")));
        assert!(v.to_string().contains("Excursion.TourName"));
    }

    #[test]
    fn rename_attribute_preserves_interface() {
        let mut s = sync();
        s.apply(&CapabilityChange::RenameAttribute {
            from: AttrRef::new("Tour", "TourName"),
            to: AttrName::new("Title"),
        })
        .unwrap();
        let v = s.view("Tours").unwrap();
        assert!(v.to_string().contains("Tour.Title"));
        // Exported interface name is unchanged.
        assert_eq!(v.interface_names()[0], AttrName::new("TourName"));
    }

    #[test]
    fn incurable_view_disabled() {
        let mut s = SynchronizerBuilder::new(travel_mkb())
            .with_view(
                parse_view(
                    "CREATE VIEW Frozen AS
                     SELECT C.Phone (AD = false, AR = false) FROM Customer C",
                )
                .unwrap(),
            )
            .unwrap()
            .build();
        let outcome = s
            .apply(&CapabilityChange::DeleteRelation(RelName::new("Customer")))
            .unwrap();
        assert!(matches!(outcome.views[0].1, ViewOutcome::Disabled { .. }));
        assert!(s.view("Frozen").is_none());
        assert_eq!(outcome.survivors(), 0);
    }

    #[test]
    fn invalid_view_rejected_at_registration() {
        let err = SynchronizerBuilder::new(travel_mkb()).with_view(
            parse_view("CREATE VIEW Bad AS SELECT C.Name FROM Customer C, Customer D").unwrap(),
        );
        // duplicate FROM relation — actually parses to two `Customer`
        // entries after alias resolution
        assert!(err.is_err());
    }

    #[test]
    fn disabled_view_revived_when_source_returns() {
        use eve_misd::RelationDescription;
        use eve_relational::{AttributeDef, DataType};
        let mut s = SynchronizerBuilder::new(travel_mkb())
            .with_view(
                parse_view(
                    "CREATE VIEW Frozen AS
                     SELECT C.Phone (AD = false, AR = false) FROM Customer C",
                )
                .unwrap(),
            )
            .unwrap()
            .build();
        let o1 = s
            .apply(&CapabilityChange::DeleteRelation(RelName::new("Customer")))
            .unwrap();
        assert!(matches!(o1.views[0].1, ViewOutcome::Disabled { .. }));
        assert_eq!(s.disabled_views().count(), 1);

        // The IS re-exports Customer (with the Phone attribute): revive.
        let o2 = s
            .apply(&CapabilityChange::AddRelation(RelationDescription::new(
                "IS1",
                "Customer",
                vec![
                    AttributeDef::new("Name", DataType::Str),
                    AttributeDef::new("Phone", DataType::Str),
                ],
            )))
            .unwrap();
        assert!(o2
            .views
            .iter()
            .any(|(n, o)| n == "Frozen" && matches!(o, ViewOutcome::Revived)));
        assert!(s.view("Frozen").is_some());
        assert_eq!(s.disabled_views().count(), 0);

        // Re-exporting without Phone would NOT have revived it — verify
        // via a fresh run.
        let mut s2 = SynchronizerBuilder::new(travel_mkb())
            .with_view(
                parse_view(
                    "CREATE VIEW Frozen AS
                     SELECT C.Phone (AD = false, AR = false) FROM Customer C",
                )
                .unwrap(),
            )
            .unwrap()
            .build();
        s2.apply(&CapabilityChange::DeleteRelation(RelName::new("Customer")))
            .unwrap();
        s2.apply(&CapabilityChange::AddRelation(RelationDescription::new(
            "IS1",
            "Customer",
            vec![AttributeDef::new("Name", DataType::Str)],
        )))
        .unwrap();
        assert!(s2.view("Frozen").is_none());
        assert_eq!(s2.disabled_views().count(), 1);
    }

    #[test]
    fn sync_to_snapshot_converges_and_rewrites() {
        use eve_misd::parse_misd;
        // The snapshot drops Customer but carries the same constraint
        // knowledge otherwise.
        let mut snapshot_text = String::new();
        for line in eve_misd::render_misd(&travel_mkb()).lines() {
            if line.contains("Customer") {
                continue;
            }
            snapshot_text.push_str(line);
            snapshot_text.push('\n');
        }
        let snapshot = parse_misd(&snapshot_text).unwrap();

        let mut s = sync();
        let report = s.sync_to(&snapshot).unwrap();
        assert_eq!(report.outcomes.len(), 1); // one inferred deletion
        assert_eq!(s.mkb(), &snapshot);
        // The affected view was rewritten, not disabled.
        let v = s.view("Customer-Passengers-Asia").unwrap();
        assert!(!v.uses_relation(&RelName::new("Customer")));
    }

    #[test]
    fn apply_script_parses_and_applies() {
        let mut s = sync();
        let report = s
            .apply_script(
                "-- evolve the travel space
                 rename-relation Tour -> Excursion ;
                 delete-relation Customer",
            )
            .unwrap();
        assert_eq!(report.outcomes.len(), 2);
        assert!(s
            .view("Tours")
            .unwrap()
            .uses_relation(&RelName::new("Excursion")));
        assert!(!s.mkb().contains_relation(&RelName::new("Customer")));
        // Bad script surfaces the parse error.
        assert!(s.apply_script("explode Everything").is_err());
    }

    #[test]
    fn history_and_rollback() {
        let mut s = sync();
        assert_eq!(s.history().len(), 1); // initial
        s.apply(&CapabilityChange::DeleteAttribute(AttrRef::new(
            "Tour", "NoDays",
        )))
        .unwrap();
        s.apply(&CapabilityChange::DeleteRelation(RelName::new("Customer")))
            .unwrap();
        assert_eq!(s.history().len(), 3);
        assert!(s.history()[2].change.is_some());
        assert!(!s.mkb().contains_relation(&RelName::new("Customer")));

        // Roll back to before the Customer deletion.
        assert!(s.rollback_to(1));
        assert!(s.mkb().contains_relation(&RelName::new("Customer")));
        assert_eq!(s.history().len(), 2);
        let v = s.view("Customer-Passengers-Asia").unwrap();
        assert!(v.uses_relation(&RelName::new("Customer")));

        // Roll back to the very beginning.
        assert!(s.rollback_to(0));
        assert!(s
            .mkb()
            .relation(&RelName::new("Tour"))
            .unwrap()
            .has_attr(&"NoDays".into()));
        // Out-of-range rollback is a no-op.
        assert!(!s.rollback_to(5));
    }

    #[test]
    fn version_chain_records_changes_and_deltas() {
        let mut s = sync();
        assert_eq!(s.version(), 0);
        assert_eq!(s.chain().len(), 1);
        assert!(s.chain()[0].change().is_none());
        assert!(s.chain()[0].delta.is_none());

        s.apply(&CapabilityChange::DeleteAttribute(AttrRef::new(
            "Tour", "NoDays",
        )))
        .unwrap();
        s.apply(&CapabilityChange::DeleteRelation(RelName::new("Customer")))
            .unwrap();
        assert_eq!(s.version(), 2);
        let chain = s.chain();
        assert_eq!(chain.len(), 3);
        for (i, entry) in chain.iter().enumerate() {
            assert_eq!(entry.version, i);
        }
        // Non-initial entries carry the producing change plus, under the
        // default incremental maintenance, a delta summary.
        assert!(matches!(
            chain[1].change(),
            Some(CapabilityChange::DeleteAttribute(_))
        ));
        assert_eq!(chain[1].delta.as_ref().unwrap().op, "delete-attribute");
        assert_eq!(chain[2].delta.as_ref().unwrap().op, "delete-relation");
        assert!(chain[2].delta.as_ref().unwrap().joins_dropped > 0);
    }

    #[test]
    fn rebuild_mode_records_no_deltas() {
        let mut s = SynchronizerBuilder::new(travel_mkb())
            .with_options(CvsOptions {
                index_maintenance: crate::options::IndexMaintenance::Rebuild,
                ..CvsOptions::default()
            })
            .with_view(
                parse_view("CREATE VIEW Tours AS SELECT T.TourName, T.NoDays FROM Tour T").unwrap(),
            )
            .unwrap()
            .build();
        s.apply(&CapabilityChange::DeleteAttribute(AttrRef::new(
            "Tour", "NoDays",
        )))
        .unwrap();
        assert_eq!(s.version(), 1);
        assert!(s.chain()[1].delta.is_none());
    }

    #[test]
    fn at_version_reconstructs_history_without_mutating() {
        let mut s = sync();
        s.apply(&CapabilityChange::DeleteAttribute(AttrRef::new(
            "Tour", "NoDays",
        )))
        .unwrap();
        s.apply(&CapabilityChange::DeleteRelation(RelName::new("Customer")))
            .unwrap();

        let v1 = s.at_version(1).unwrap();
        assert_eq!(v1.version(), 1);
        assert!(v1.mkb().contains_relation(&RelName::new("Customer")));
        assert!(!v1
            .mkb()
            .relation(&RelName::new("Tour"))
            .unwrap()
            .has_attr(&"NoDays".into()));
        // The fork's views match the recorded snapshot exactly.
        let recorded: Vec<String> = s.chain()[1]
            .snapshot
            .views
            .iter()
            .map(|(_, v)| v.to_string())
            .collect();
        let forked: Vec<String> = v1.views().map(|v| v.to_string()).collect();
        assert_eq!(recorded, forked);

        let v0 = s.at_version(0).unwrap();
        assert_eq!(v0.version(), 0);
        assert!(v0
            .mkb()
            .relation(&RelName::new("Tour"))
            .unwrap()
            .has_attr(&"NoDays".into()));

        // The original is untouched and out-of-range forks are refused.
        assert_eq!(s.version(), 2);
        assert!(s.at_version(3).is_none());
        assert!(!s.mkb().contains_relation(&RelName::new("Customer")));
    }

    #[test]
    fn at_version_fork_can_diverge() {
        let mut s = sync();
        s.apply(&CapabilityChange::DeleteAttribute(AttrRef::new(
            "Tour", "NoDays",
        )))
        .unwrap();
        s.apply(&CapabilityChange::DeleteRelation(RelName::new("Customer")))
            .unwrap();

        // Fork at v1 and take a different second step.
        let mut fork = s.at_version(1).unwrap();
        fork.apply(&CapabilityChange::RenameRelation {
            from: RelName::new("Tour"),
            to: RelName::new("Excursion"),
        })
        .unwrap();
        assert_eq!(fork.version(), 2);
        assert!(fork.mkb().contains_relation(&RelName::new("Excursion")));
        assert!(fork.mkb().contains_relation(&RelName::new("Customer")));
        // The trunk still has its own v2.
        assert!(!s.mkb().contains_relation(&RelName::new("Customer")));
        assert!(s.mkb().contains_relation(&RelName::new("Tour")));
    }

    #[test]
    fn replay_reproduces_recorded_outcomes() {
        let mut s = sync();
        s.apply(&CapabilityChange::DeleteAttribute(AttrRef::new(
            "Tour", "NoDays",
        )))
        .unwrap();
        s.apply(&CapabilityChange::DeleteRelation(RelName::new("Customer")))
            .unwrap();

        let report = s.replay(0, 2).unwrap();
        assert_eq!(report.outcomes.len(), 2);
        assert!(matches!(
            report.outcomes[0].change,
            CapabilityChange::DeleteAttribute(_)
        ));
        assert!(matches!(
            report.outcomes[1].change,
            CapabilityChange::DeleteRelation(_)
        ));
        // Replaying the suffix only.
        let tail = s.replay(1, 2).unwrap();
        assert_eq!(tail.outcomes.len(), 1);
        // Degenerate and out-of-range windows.
        assert_eq!(s.replay(2, 2).unwrap().outcomes.len(), 0);
        assert!(s.replay(2, 1).is_none());
        assert!(s.replay(0, 3).is_none());
    }

    #[test]
    fn preview_at_answers_what_if_against_history() {
        let mut s = sync();
        s.apply(&CapabilityChange::DeleteAttribute(AttrRef::new(
            "Tour", "NoDays",
        )))
        .unwrap();
        s.apply(&CapabilityChange::DeleteRelation(RelName::new("Customer")))
            .unwrap();

        // Against v1, Customer still exists, so deleting it is a real
        // what-if; against the head it would be an evolution error.
        let outcome = s
            .preview_at(
                1,
                &CapabilityChange::DeleteRelation(RelName::new("Customer")),
            )
            .unwrap()
            .unwrap();
        assert_eq!(outcome.rewritten(), 1);
        assert!(s
            .preview_at(
                2,
                &CapabilityChange::DeleteRelation(RelName::new("Customer"))
            )
            .unwrap()
            .is_err());
        assert!(s
            .preview_at(
                9,
                &CapabilityChange::DeleteRelation(RelName::new("Customer"))
            )
            .is_none());
        // preview_at never mutates the trunk.
        assert_eq!(s.version(), 2);
    }

    #[test]
    fn chain_entries_share_state_structurally() {
        let mut s = sync();
        s.apply(&CapabilityChange::DeleteAttribute(AttrRef::new(
            "Tour", "NoDays",
        )))
        .unwrap();
        let chain = s.chain();
        // Entries share view definitions by Arc with the live state:
        // untouched views are the same allocation across versions.
        let find = |entry: &Snapshot, name: &str| {
            entry
                .views
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| Arc::clone(v))
                .unwrap()
        };
        let before = find(&chain[0].snapshot, "Customer-Passengers-Asia");
        let after = find(&chain[1].snapshot, "Customer-Passengers-Asia");
        assert!(Arc::ptr_eq(&before, &after));
    }

    #[test]
    fn preview_does_not_mutate() {
        let s = sync();
        let snapshot_views: Vec<String> = s.views().map(|v| v.to_string()).collect();
        let outcome = s
            .preview(&CapabilityChange::DeleteRelation(RelName::new("Customer")))
            .unwrap();
        assert_eq!(outcome.rewritten(), 1);
        // State untouched.
        let after: Vec<String> = s.views().map(|v| v.to_string()).collect();
        assert_eq!(snapshot_views, after);
        assert!(s.mkb().contains_relation(&RelName::new("Customer")));
    }

    #[test]
    fn apply_all_accumulates() {
        let mut s = sync();
        let report = s
            .apply_all(&[
                CapabilityChange::DeleteAttribute(AttrRef::new("Tour", "NoDays")),
                CapabilityChange::DeleteRelation(RelName::new("Customer")),
            ])
            .unwrap();
        assert_eq!(report.outcomes.len(), 2);
    }

    #[test]
    fn cost_model_prefers_covering_rewriting() {
        // With the default preservation cost model, the adopted rewriting
        // for Eq. (5) must keep all four SELECT items (Age covered via
        // F3), not drop Age.
        let mut s = SynchronizerBuilder::new(travel_mkb())
            .with_view(
                parse_view(
                    "CREATE VIEW CPA AS
                     SELECT C.Name (false, true), C.Age (true, true), F.PName (true, true),
                            P.Participant (true, true), P.TourID (true, true)
                     FROM Customer C (true, true), FlightRes F (true, true), Participant P (true, true)
                     WHERE (C.Name = F.PName) (false, true) AND (F.Dest = 'Asia') (CD = true)
                       AND (P.Loc = 'Asia') (CD = true)",
                )
                .unwrap(),
            )
            .unwrap()
            .with_cost_model(crate::cost::CostModel::default())
            .build();
        let outcome = s
            .apply(&CapabilityChange::DeleteRelation(RelName::new("Customer")))
            .unwrap();
        let ViewOutcome::Rewritten { chosen, .. } = &outcome.views[0].1 else {
            panic!("expected rewriting");
        };
        assert_eq!(chosen.view.select.len(), 5, "{}", chosen.view);
        assert!(
            chosen.view.to_string().contains("Birthday"),
            "{}",
            chosen.view
        );
    }

    #[cfg(feature = "faults")]
    fn sync_with_policy(policy: crate::FailurePolicy) -> Synchronizer {
        let mut s = sync();
        s.opts = CvsOptions {
            failure: policy,
            ..s.opts
        };
        s
    }

    #[cfg(feature = "faults")]
    #[test]
    fn degrade_contains_injected_panic_to_one_view() {
        let _serial = eve_faults::serial_guard();
        let change = CapabilityChange::DeleteRelation(RelName::new("Customer"));
        let mut baseline = sync_with_policy(crate::FailurePolicy::degrade());
        let expected = baseline.apply(&change).unwrap();

        let _ = eve_faults::uninstall();
        eve_faults::install(
            eve_faults::FaultPlan::parse("Customer-Passengers-Asia/view.sync=panic").unwrap(),
        )
        .unwrap();
        let mut s = sync_with_policy(crate::FailurePolicy::degrade());
        let outcome = s.apply(&change).expect("degrade contains the panic");
        eve_faults::uninstall().unwrap();

        // The faulted view failed in one attempt (panics never retry)…
        let ViewOutcome::Failed { error, attempts } = &outcome.views[0].1 else {
            panic!("expected Failed, got {:?}", outcome.views[0].1);
        };
        assert_eq!(*attempts, 1);
        assert!(matches!(error, SyncFailure::Panicked { .. }));
        assert!(error.message().contains("view.sync"), "{error}");
        assert_eq!(outcome.failed(), 1);
        assert!(outcome
            .to_string()
            .contains("FAILED after 1 attempt(s) (panicked: injected"));
        // …every other view's outcome is byte-identical to the
        // fault-free run…
        assert_eq!(outcome.views[1], expected.views[1]);
        // …and the failed view is parked with its last definition for
        // revival, not dropped.
        assert!(s.view("Customer-Passengers-Asia").is_none());
        assert_eq!(s.disabled_views().count(), 1);
    }

    #[cfg(feature = "faults")]
    #[test]
    fn degrade_retries_transient_faults_to_convergence() {
        let _serial = eve_faults::serial_guard();
        let change = CapabilityChange::DeleteRelation(RelName::new("Customer"));
        let mut baseline = sync_with_policy(crate::FailurePolicy::degrade());
        let expected = baseline.apply(&change).unwrap();

        // Hit 0 only: the first attempt dies, the retry sails through.
        let _ = eve_faults::uninstall();
        eve_faults::install(
            eve_faults::FaultPlan::parse("Customer-Passengers-Asia/view.sync#0=transient").unwrap(),
        )
        .unwrap();
        let mut s = sync_with_policy(crate::FailurePolicy::Degrade {
            max_retries: 2,
            backoff: std::time::Duration::ZERO,
        });
        let outcome = s.apply(&change).expect("retry converges");
        let report = eve_faults::uninstall().unwrap();
        assert_eq!(report.injected, 1);
        assert_eq!(outcome, expected, "retried run must match fault-free run");

        // A persistent transient exhausts the retries and reports every
        // attempt.
        eve_faults::install(
            eve_faults::FaultPlan::parse("Customer-Passengers-Asia/view.sync=transient").unwrap(),
        )
        .unwrap();
        let mut s = sync_with_policy(crate::FailurePolicy::Degrade {
            max_retries: 2,
            backoff: std::time::Duration::ZERO,
        });
        let outcome = s.apply(&change).expect("degrade contains the failure");
        eve_faults::uninstall().unwrap();
        let ViewOutcome::Failed { error, attempts } = &outcome.views[0].1 else {
            panic!("expected Failed, got {:?}", outcome.views[0].1);
        };
        assert_eq!(*attempts, 3, "1 attempt + 2 retries");
        assert!(matches!(error, SyncFailure::Transient { .. }));
    }

    #[test]
    fn require_p3_filters() {
        // With require_p3 and VE = ≡ (default), the travel example has no
        // PC constraints, so no rewriting can be certified → disabled.
        let mut s = SynchronizerBuilder::new(travel_mkb())
            .with_view(
                parse_view(
                    "CREATE VIEW Strict AS
                     SELECT C.Name (false, true), F.Dest (true, true), F.PName (true, true)
                     FROM Customer C, FlightRes F WHERE (C.Name = F.PName) (false, true)",
                )
                .unwrap(),
            )
            .unwrap()
            .require_p3(true)
            .build();
        let outcome = s
            .apply(&CapabilityChange::DeleteRelation(RelName::new("Customer")))
            .unwrap();
        assert!(matches!(outcome.views[0].1, ViewOutcome::Disabled { .. }));
    }
}
