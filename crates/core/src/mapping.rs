//! The **R-mapping** of a view into the sub-hypergraph `H_R(MKB)`
//! (Def. 2 of the paper).
//!
//! Given a view `V` referring to relation `R`, the R-mapping splits `V`
//! into
//!
//! ```text
//! V = π_{B_V}( σ_{C_Max/Min}( Min(H_R) ) ⋈_{C_Rest} Rest )
//!     └────────────────┬────────────────┘
//!                  Max(V_R)
//! ```
//!
//! * `Max(V_R)` — the *maximal* join of FROM-clause relations containing
//!   `R` whose join conditions imply corresponding MKB join constraints
//!   (property III: `Max(V_R) ⊆ Min(H_R)`);
//! * `Min(H_R)` — the *minimal* MKB join expression over those relations
//!   (a spanning tree of implied join constraints);
//! * `C_Max/Min` — the residual selection (Eq. 9) applied on top of
//!   `Min(H_R)` to recover `Max(V_R)`;
//! * `Rest`, `C_Rest` — the rest of the view, untouched by the rewriting.
//!
//! As the paper notes after Def. 2, it suffices that each join constraint
//! `JC_{S,S'}` of `Min(H_R)` is implied by the view's join condition
//! `C_{S,S'}`. We test implication against the *full* WHERE conjunction
//! (a sound, strictly more complete premise that also recognises
//! transitive equality chains); the implication strength is configurable
//! ([`crate::options::ImplicationMode`]).

use crate::options::{CvsOptions, ImplicationMode};
use eve_esql::{CondItem, ViewDefinition};
use eve_hypergraph::Hypergraph;
use eve_misd::JoinConstraint;
use eve_relational::{Clause, RelName};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// The computed R-mapping (Def. 2): `(Max(V_R), Min(H_R))` plus the
/// partition of the view's conditions.
#[derive(Debug, Clone, PartialEq)]
pub struct RMapping {
    /// The relation being dropped, `R`.
    pub target: RelName,
    /// Relations of `Max(V_R)` / `Min(H_R)` (they share the relation set;
    /// includes `R`).
    pub max_relations: BTreeSet<RelName>,
    /// The join constraints of `Min(H_R)` — a spanning tree of the
    /// implied-constraint graph over `max_relations`.
    pub min_joins: Vec<JoinConstraint>,
    /// `C_Max/Min`: the view's conditions over `max_relations` that are
    /// not absorbed by (identical to) a clause of `min_joins`. Evolution
    /// parameters are preserved for Step 4/5.
    pub c_max_min: Vec<CondItem>,
    /// FROM-clause relations outside `Max(V_R)`.
    pub rest_relations: BTreeSet<RelName>,
    /// `C_Rest`: every other view condition (conditions over `Rest` and
    /// conditions crossing the `Max`/`Rest` boundary).
    pub c_rest: Vec<CondItem>,
}

/// Does the view's WHERE conjunction imply `target` under the given mode?
///
/// `Interval` mode uses the full conjunction machinery (clause
/// implication with interval subsumption plus equality-congruence
/// closure: `A = B AND B = C ⊢ A = C`); `Syntactic` restricts to
/// normalised-equality matching, the weakest sufficient test of Def. 2.
fn clause_implied(
    facts: &eve_relational::Conjunction,
    congruence: &eve_relational::Congruence<'_>,
    target: &Clause,
    mode: ImplicationMode,
) -> bool {
    match mode {
        ImplicationMode::Syntactic => {
            let t = target.normalized_parts();
            facts.clauses().iter().any(|c| c.normalized_parts() == t)
        }
        ImplicationMode::Interval => facts.implies_clause_cached(congruence, target),
    }
}

/// Compute the R-mapping of `view` with respect to dropping `target`,
/// searching the connected sub-hypergraph `h_r = H_R(MKB)`.
///
/// `h_r` must be the component of `H(MKB)` containing `target`
/// ([`Hypergraph::component_of`]); view relations outside `h_r` can never
/// be part of `Max(V_R)` and fall into `Rest`.
pub fn compute_r_mapping(
    view: &ViewDefinition,
    target: &RelName,
    h_r: &Hypergraph,
    opts: &CvsOptions,
) -> RMapping {
    let from_rels: Vec<RelName> = view.relations();

    // 1. Build the implied-edge graph over the view's FROM relations:
    //    (S, S') is an edge when some MKB join constraint between S and S'
    //    is implied by the view's WHERE conjunction. (Def. 2 states the
    //    per-pair condition C_{S,S'} ⊢ JC_{S,S'} as *sufficient*; the
    //    full conjunction is a sound, strictly more complete premise —
    //    it recognises transitive joins like A.x = B.y AND B.y = C.z
    //    implying JC_{A,C}: A.x = C.z.)
    let facts = view.where_conjunction();
    // Equality closure of the WHERE conjunction, built once for every
    // pair × constraint-clause implication probe below.
    let congruence = facts.congruence();
    let mut edges: BTreeMap<(RelName, RelName), JoinConstraint> = BTreeMap::new();
    for (i, s1) in from_rels.iter().enumerate() {
        for s2 in from_rels.iter().skip(i + 1) {
            if !h_r.contains(s1) || !h_r.contains(s2) {
                continue;
            }
            if facts.is_empty() {
                continue;
            }
            for jc in h_r.joins_between(s1, s2) {
                let all_implied = jc
                    .predicate
                    .clauses()
                    .iter()
                    .all(|c| clause_implied(&facts, &congruence, c, opts.implication));
                if all_implied {
                    edges.insert((s1.clone(), s2.clone()), jc.clone());
                    break; // first implied constraint wins (deterministic)
                }
            }
        }
    }

    // 2. BFS closure from R over implied edges → Max(V_R); the BFS tree
    //    edges are Min(H_R) (minimal by construction: removing any tree
    //    edge disconnects the relation set).
    let mut max_relations: BTreeSet<RelName> = BTreeSet::new();
    let mut min_joins: Vec<JoinConstraint> = Vec::new();
    max_relations.insert(target.clone());
    let mut queue = VecDeque::from([target.clone()]);
    while let Some(cur) = queue.pop_front() {
        for ((a, b), jc) in &edges {
            let next = if a == &cur {
                b
            } else if b == &cur {
                a
            } else {
                continue;
            };
            if max_relations.insert(next.clone()) {
                min_joins.push(jc.clone());
                queue.push_back(next.clone());
            }
        }
    }

    // 3. Partition the view's conditions.
    let absorbed: BTreeSet<Clause> = min_joins
        .iter()
        .flat_map(|j| j.predicate.clauses().iter().map(Clause::normalized))
        .collect();
    let mut c_max_min = Vec::new();
    let mut c_rest = Vec::new();
    for cond in &view.conditions {
        let rels = cond.clause.relations();
        if rels.iter().all(|r| max_relations.contains(r)) {
            if absorbed.contains(&cond.clause.normalized()) {
                continue; // already expressed by Min(H_R)
            }
            c_max_min.push(cond.clone());
        } else {
            c_rest.push(cond.clone());
        }
    }

    let rest_relations = from_rels
        .into_iter()
        .filter(|r| !max_relations.contains(r))
        .collect();

    RMapping {
        target: target.clone(),
        max_relations,
        min_joins,
        c_max_min,
        rest_relations,
        c_rest,
    }
}

/// Compute the R-mapping against a prebuilt [`MkbIndex`]: `H_R` is the
/// cached component of `H(MKB)` containing `target`, so no hypergraph is
/// rebuilt per view.
///
/// # Panics
///
/// Panics when `target` is not described in the MKB the index was built
/// from.
pub fn r_mapping_with_index(
    view: &ViewDefinition,
    target: &RelName,
    index: &crate::index::MkbIndex<'_>,
    opts: &CvsOptions,
) -> RMapping {
    let h_r = index
        .component_of(target)
        .expect("target relation must be described in the MKB");
    compute_r_mapping(view, target, h_r, opts)
}

impl RMapping {
    /// The relations of `Min(H'_R)`: what survives dropping `R`
    /// (Def. 3 III).
    pub fn surviving_relations(&self) -> BTreeSet<RelName> {
        self.max_relations
            .iter()
            .filter(|r| **r != self.target)
            .cloned()
            .collect()
    }

    /// The join constraints of `Min(H_R)` that do not touch `R` — these
    /// must all appear in any candidate replacement (Def. 3 III).
    pub fn surviving_joins(&self) -> Vec<JoinConstraint> {
        self.min_joins
            .iter()
            .filter(|j| !j.touches(&self.target))
            .cloned()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eve_esql::parse_view;
    use eve_misd::{parse_misd, MetaKnowledgeBase};

    /// The travel-agency MKB slice relevant to Examples 5–10.
    fn mkb() -> MetaKnowledgeBase {
        parse_misd(
            "RELATION IS1 Customer(Name str, Addr str, Phone str, Age int)
             RELATION IS2 Tour(TourID str, TourName str, Type str, NoDays int)
             RELATION IS3 Participant(Participant str, TourID str, StartDate date, Loc str)
             RELATION IS4 FlightRes(PName str, Airline str, FlightNo int, Source str, Dest str, Date date)
             RELATION IS5 Accident-Ins(Holder str, Type str, Amount int, Birthday date)
             RELATION IS6 Hotels(City str, Address str, PhoneNumber str)
             RELATION IS7 RentACar(Company str, City str, PhoneNumber str, Location str)
             JOIN JC1: Customer, FlightRes ON Customer.Name = FlightRes.PName
             JOIN JC2: Customer, Accident-Ins ON Customer.Name = Accident-Ins.Holder AND Customer.Age > 1
             JOIN JC3: Customer, Participant ON Customer.Name = Participant.Participant
             JOIN JC4: Participant, Tour ON Participant.TourID = Tour.TourID
             JOIN JC5: Hotels, RentACar ON Hotels.Address = RentACar.Location
             JOIN JC6: FlightRes, Accident-Ins ON FlightRes.PName = Accident-Ins.Holder",
        )
        .unwrap()
    }

    /// Eq. (5): Customer-Passengers-Asia.
    fn view() -> ViewDefinition {
        parse_view(
            "CREATE VIEW Customer-Passengers-Asia AS
             SELECT C.Name (false, true), C.Age (true, true),
                    P.Participant (true, true), P.TourID (true, true)
             FROM Customer C (true, true), FlightRes F (true, true), Participant P (true, true)
             WHERE (C.Name = F.PName) (false, true) AND (F.Dest = 'Asia')
               AND (P.StartDate = F.Date) AND (P.Loc = 'Asia')",
        )
        .unwrap()
    }

    #[test]
    fn example_8_r_mapping() {
        // Paper Ex. 8: Max(V_Customer) = FlightRes ⋈ Customer with
        // C_Max/Min = (FlightRes.Dest = 'Asia'); Participant is in Rest
        // because the view joins it on StartDate = Date, which does NOT
        // imply any MKB join constraint.
        let m = mkb();
        let customer = RelName::new("Customer");
        let h = Hypergraph::build(&m);
        let h_r = h.component_of(&customer).unwrap();
        let rm = compute_r_mapping(&view(), &customer, &h_r, &CvsOptions::default());

        assert_eq!(
            rm.max_relations,
            [RelName::new("Customer"), RelName::new("FlightRes")]
                .into_iter()
                .collect()
        );
        assert_eq!(rm.min_joins.len(), 1);
        assert_eq!(rm.min_joins[0].id, "JC1");
        // C_Max/Min = (F.Dest = 'Asia') — the join clause is absorbed.
        assert_eq!(rm.c_max_min.len(), 1);
        assert!(rm.c_max_min[0].clause.to_string().contains("Dest"));
        // Rest = {Participant} with the two Participant conditions.
        assert_eq!(
            rm.rest_relations,
            [RelName::new("Participant")].into_iter().collect()
        );
        assert_eq!(rm.c_rest.len(), 2);
        // Survivors.
        assert_eq!(
            rm.surviving_relations(),
            [RelName::new("FlightRes")].into_iter().collect()
        );
        assert!(rm.surviving_joins().is_empty());
    }

    #[test]
    fn stronger_view_condition_implies_jc2() {
        // A view joining Customer with Accident-Ins using Age > 21 implies
        // JC2 (which requires Age > 1) only in Interval mode.
        let m = mkb();
        let customer = RelName::new("Customer");
        let h = Hypergraph::build(&m);
        let h_r = h.component_of(&customer).unwrap();
        let v = parse_view(
            "CREATE VIEW V AS
             SELECT C.Name, C.Age, A.Amount
             FROM Customer C, Accident-Ins A
             WHERE (C.Name = A.Holder) AND (C.Age > 21)",
        )
        .unwrap();

        let rm = compute_r_mapping(&v, &customer, &h_r, &CvsOptions::default());
        assert_eq!(rm.max_relations.len(), 2);
        assert_eq!(rm.min_joins[0].id, "JC2");
        // Age > 21 is NOT absorbed (JC2 only has Age > 1) — it stays in
        // C_Max/Min to preserve Eq. (9).
        assert!(rm
            .c_max_min
            .iter()
            .any(|c| c.clause.to_string().contains("21")));

        // Syntactic-only implication misses JC2.
        let syntactic = CvsOptions {
            implication: ImplicationMode::Syntactic,
            ..CvsOptions::default()
        };
        let rm2 = compute_r_mapping(&v, &customer, &h_r, &syntactic);
        assert_eq!(rm2.max_relations.len(), 1);
        assert!(rm2.min_joins.is_empty());
    }

    #[test]
    fn isolated_relation_yields_singleton_mapping() {
        let m = mkb();
        let hotels = RelName::new("Hotels");
        let h = Hypergraph::build(&m);
        let h_r = h.component_of(&hotels).unwrap();
        let v = parse_view(
            "CREATE VIEW V AS SELECT H.City, C.Name FROM Hotels H, Customer C
             WHERE H.City = C.Addr",
        )
        .unwrap();
        // Customer is not in Hotels' component; no MKB constraint backs
        // the H.City = C.Addr join.
        let rm = compute_r_mapping(&v, &hotels, &h_r, &CvsOptions::default());
        assert_eq!(rm.max_relations.len(), 1);
        assert_eq!(rm.rest_relations.len(), 1);
        assert_eq!(rm.c_rest.len(), 1);
    }

    #[test]
    fn three_relation_chain_mapping() {
        // View joins Customer—FlightRes—Accident-Ins along JC1 and JC6;
        // dropping Customer must keep FlightRes ⋈ Accident-Ins (JC6) as
        // the surviving join.
        let m = mkb();
        let customer = RelName::new("Customer");
        let h = Hypergraph::build(&m);
        let h_r = h.component_of(&customer).unwrap();
        let v = parse_view(
            "CREATE VIEW V AS
             SELECT C.Name, F.PName, A.Holder
             FROM Customer C, FlightRes F, Accident-Ins A
             WHERE (C.Name = F.PName) AND (F.PName = A.Holder)",
        )
        .unwrap();
        let rm = compute_r_mapping(&v, &customer, &h_r, &CvsOptions::default());
        assert_eq!(rm.max_relations.len(), 3);
        assert_eq!(rm.min_joins.len(), 2);
        let surviving = rm.surviving_joins();
        assert_eq!(surviving.len(), 1);
        assert_eq!(surviving[0].id, "JC6");
        assert!(rm.c_max_min.is_empty()); // both clauses absorbed
    }
}

#[cfg(test)]
mod congruence_tests {
    use super::*;
    use eve_esql::parse_view;
    use eve_misd::parse_misd;

    /// A view that equates A.x = B.y and B.y = C.z; the MKB's join
    /// constraint between A and C equates A.x = C.z directly. The
    /// congruence-aware implication must recognise the view's conditions
    /// as implying the constraint, pulling C into Max(V_A).
    #[test]
    fn transitive_equalities_extend_the_mapping() {
        let mkb = parse_misd(
            "RELATION IS1 A(x int)
             RELATION IS2 B(y int)
             RELATION IS3 C(z int)
             JOIN JAB: A, B ON A.x = B.y
             JOIN JAC: A, C ON A.x = C.z",
        )
        .unwrap();
        let view = parse_view(
            "CREATE VIEW V AS SELECT A.x, B.y, C.z FROM A, B, C
             WHERE (A.x = B.y) AND (B.y = C.z)",
        )
        .unwrap();
        let a = RelName::new("A");
        let h = Hypergraph::build(&mkb);
        let h_r = h.component_of(&a).unwrap();
        let rm = compute_r_mapping(&view, &a, &h_r, &CvsOptions::default());
        assert_eq!(
            rm.max_relations.len(),
            3,
            "C must join Max(V_A) through the congruence A.x = B.y = C.z: {rm:?}"
        );
    }
}
