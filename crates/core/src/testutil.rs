//! Shared fixtures for the crate's unit tests: the travel-agency MKB of
//! Fig. 2 of the paper.

use eve_misd::{parse_misd, MetaKnowledgeBase};

/// The full travel-agency MKB of Fig. 2 (relations, join constraints
/// JC1–JC6 and function-of constraints F1–F7).
pub(crate) fn travel_mkb() -> MetaKnowledgeBase {
    parse_misd(
        "RELATION IS1 Customer(Name str, Addr str, Phone str, Age int)
         RELATION IS2 Tour(TourID str, TourName str, Type str, NoDays int)
         RELATION IS3 Participant(Participant str, TourID str, StartDate date, Loc str)
         RELATION IS4 FlightRes(PName str, Airline str, FlightNo int, Source str, Dest str, Date date)
         RELATION IS5 Accident-Ins(Holder str, Type str, Amount int, Birthday date)
         RELATION IS6 Hotels(City str, Address str, PhoneNumber str)
         RELATION IS7 RentACar(Company str, City str, PhoneNumber str, Location str)
         JOIN JC1: Customer, FlightRes ON Customer.Name = FlightRes.PName
         JOIN JC2: Customer, Accident-Ins ON Customer.Name = Accident-Ins.Holder AND Customer.Age > 1
         JOIN JC3: Customer, Participant ON Customer.Name = Participant.Participant
         JOIN JC4: Participant, Tour ON Participant.TourID = Tour.TourID
         JOIN JC5: Hotels, RentACar ON Hotels.Address = RentACar.Location
         JOIN JC6: FlightRes, Accident-Ins ON FlightRes.PName = Accident-Ins.Holder
         FUNCOF F1: Customer.Name = FlightRes.PName
         FUNCOF F2: Customer.Name = Accident-Ins.Holder
         FUNCOF F3: Customer.Age = (today() - Accident-Ins.Birthday) / 365
         FUNCOF F4: Customer.Name = Participant.Participant
         FUNCOF F5: Participant.TourID = Tour.TourID
         FUNCOF F6: Hotels.Address = RentACar.Location
         FUNCOF F7: Hotels.City = RentACar.City",
    )
    .unwrap()
}

use crate::error::CvsError;
use crate::index::MkbIndex;
use crate::legal::LegalRewriting;
use crate::options::CvsOptions;
use eve_esql::ViewDefinition;
use eve_relational::RelName;

/// Test shorthand: build a throwaway per-change index and run CVS
/// delete-relation (what the removed non-indexed wrapper used to do).
pub(crate) fn cvs_dr(
    view: &ViewDefinition,
    target: &RelName,
    mkb: &eve_misd::MetaKnowledgeBase,
    mkb_prime: &eve_misd::MetaKnowledgeBase,
    opts: &CvsOptions,
) -> Result<Vec<LegalRewriting>, CvsError> {
    let index = MkbIndex::new(mkb, mkb_prime, opts);
    crate::rewrite::cvs_delete_relation_indexed(view, target, &index, opts)
}

/// Test shorthand for the SVS baseline (one-hop search radius).
pub(crate) fn svs_dr(
    view: &ViewDefinition,
    target: &RelName,
    mkb: &eve_misd::MetaKnowledgeBase,
    mkb_prime: &eve_misd::MetaKnowledgeBase,
) -> Result<Vec<LegalRewriting>, CvsError> {
    let opts = CvsOptions::svs_baseline();
    let index = MkbIndex::new(mkb, mkb_prime, &opts);
    crate::svs::svs_delete_relation_indexed(view, target, &index, &opts)
}
