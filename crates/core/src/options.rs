//! Tuning knobs for the CVS search, including the ablation switches
//! called out in `DESIGN.md`.

/// How clause implication is tested when computing the R-mapping
/// (Def. 2 III: each MKB join constraint must be implied by the view's
/// join condition).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ImplicationMode {
    /// Syntactic equality modulo operand orientation only.
    Syntactic,
    /// Syntactic equality plus interval subsumption over constant
    /// comparisons (`Age > 21 ⇒ Age > 1`) — required to recognise JC2 of
    /// the running example. The default.
    #[default]
    Interval,
}

/// Options controlling the CVS search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CvsOptions {
    /// Maximum number of join-constraint hops allowed when attaching a
    /// cover or a surviving `Min` relation to the candidate join tree.
    /// `usize::MAX` (the default) is full CVS; `1` degrades the search to
    /// the *one-step-away* SVS baseline of [4, 12].
    pub max_path_edges: usize,
    /// Maximum number of connection-tree variants considered per cover
    /// combination (alternative parallel join constraints).
    pub max_trees_per_combination: usize,
    /// Maximum number of cover combinations explored (the cartesian
    /// product over per-attribute cover choices is truncated, breadth
    /// first, at this bound).
    pub max_cover_combinations: usize,
    /// Clause-implication strength for the R-mapping.
    pub implication: ImplicationMode,
    /// Run the Step 4 WHERE-consistency check and discard inconsistent
    /// candidates.
    pub check_consistency: bool,
    /// Exclude relations whose IS does not advertise the *join*
    /// capability from replacement search: a cover that cannot be joined
    /// is unusable (§2's capability descriptions, enforced).
    pub respect_capabilities: bool,
}

impl Default for CvsOptions {
    fn default() -> Self {
        CvsOptions {
            max_path_edges: usize::MAX,
            max_trees_per_combination: 4,
            max_cover_combinations: 32,
            implication: ImplicationMode::Interval,
            check_consistency: true,
            respect_capabilities: true,
        }
    }
}

impl CvsOptions {
    /// The configuration reproducing the *simple* one-step-away view
    /// synchronization (SVS) of the authors' prior work [4, 12]: covers
    /// must attach by a single direct join constraint.
    pub fn svs_baseline() -> Self {
        CvsOptions {
            max_path_edges: 1,
            ..CvsOptions::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let o = CvsOptions::default();
        assert_eq!(o.max_path_edges, usize::MAX);
        assert_eq!(o.implication, ImplicationMode::Interval);
        assert!(o.check_consistency);
    }

    #[test]
    fn svs_baseline_is_one_step() {
        assert_eq!(CvsOptions::svs_baseline().max_path_edges, 1);
    }
}
