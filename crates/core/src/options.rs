//! Tuning knobs for the CVS search, including the ablation switches
//! called out in `DESIGN.md`.

/// How clause implication is tested when computing the R-mapping
/// (Def. 2 III: each MKB join constraint must be implied by the view's
/// join condition).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ImplicationMode {
    /// Syntactic equality modulo operand orientation only.
    Syntactic,
    /// Syntactic equality plus interval subsumption over constant
    /// comparisons (`Age > 21 ⇒ Age > 1`) — required to recognise JC2 of
    /// the running example. The default.
    #[default]
    Interval,
}

/// Options controlling the CVS search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CvsOptions {
    /// Maximum number of join-constraint hops allowed when attaching a
    /// cover or a surviving `Min` relation to the candidate join tree.
    /// `usize::MAX` (the default) is full CVS; `1` degrades the search to
    /// the *one-step-away* SVS baseline of [4, 12].
    ///
    /// `0` is nonsensical — a zero-hop bound can never attach anything,
    /// so every multi-relation search would come back empty by
    /// construction. [`CvsOptions::validated`] (applied by the
    /// synchronizer when it builds) clamps it to ≥ 1.
    pub max_path_edges: usize,
    /// Maximum number of connection-tree variants considered per cover
    /// combination (alternative parallel join constraints).
    pub max_trees_per_combination: usize,
    /// Maximum number of cover combinations explored (the cartesian
    /// product over per-attribute cover choices is truncated, breadth
    /// first, at this bound).
    pub max_cover_combinations: usize,
    /// Clause-implication strength for the R-mapping.
    pub implication: ImplicationMode,
    /// Run the Step 4 WHERE-consistency check and discard inconsistent
    /// candidates.
    pub check_consistency: bool,
    /// Exclude relations whose IS does not advertise the *join*
    /// capability from replacement search: a cover that cannot be joined
    /// is unusable (§2's capability descriptions, enforced).
    pub respect_capabilities: bool,
    /// Worker threads for fanning affected views out during
    /// [`crate::Synchronizer::apply`].
    ///
    /// * `Some(n)` — use up to `n` workers (`n ≤ 1` means sequential);
    /// * `None` (the default) — consult the `EVE_PARALLELISM` environment
    ///   variable, falling back to sequential when it is unset or
    ///   unparseable.
    ///
    /// Parallel and sequential runs produce byte-identical outcomes
    /// (results are merged back in view-registration order), so this is
    /// purely a throughput knob.
    pub parallelism: Option<usize>,
}

impl Default for CvsOptions {
    fn default() -> Self {
        CvsOptions {
            max_path_edges: usize::MAX,
            max_trees_per_combination: 4,
            max_cover_combinations: 32,
            implication: ImplicationMode::Interval,
            check_consistency: true,
            respect_capabilities: true,
            parallelism: None,
        }
    }
}

impl CvsOptions {
    /// The configuration reproducing the *simple* one-step-away view
    /// synchronization (SVS) of the authors' prior work [4, 12]: covers
    /// must attach by a single direct join constraint.
    pub fn svs_baseline() -> Self {
        CvsOptions {
            max_path_edges: 1,
            ..CvsOptions::default()
        }
    }

    /// Clamp out-of-domain values: `max_path_edges = 0` (which could
    /// never attach anything — see the field docs) becomes `1`, the
    /// tightest meaningful bound. The synchronizer applies this when it
    /// is built, so a zero smuggled in through a config file degrades to
    /// the SVS radius instead of silently disabling the search.
    pub fn validated(self) -> Self {
        CvsOptions {
            max_path_edges: self.max_path_edges.max(1),
            ..self
        }
    }

    /// Resolve [`CvsOptions::parallelism`] to a concrete worker count:
    /// the explicit setting wins, then the `EVE_PARALLELISM` environment
    /// variable, then sequential (1).
    pub fn effective_parallelism(&self) -> usize {
        match self.parallelism {
            Some(n) => n.max(1),
            None => std::env::var("EVE_PARALLELISM")
                .ok()
                .and_then(|v| v.trim().parse::<usize>().ok())
                .map(|n| n.max(1))
                .unwrap_or(1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let o = CvsOptions::default();
        assert_eq!(o.max_path_edges, usize::MAX);
        assert_eq!(o.implication, ImplicationMode::Interval);
        assert!(o.check_consistency);
    }

    #[test]
    fn svs_baseline_is_one_step() {
        assert_eq!(CvsOptions::svs_baseline().max_path_edges, 1);
    }

    #[test]
    fn validated_clamps_zero_hop_bound() {
        let o = CvsOptions {
            max_path_edges: 0,
            ..CvsOptions::default()
        };
        assert_eq!(o.validated().max_path_edges, 1);
        // In-domain values pass through untouched.
        assert_eq!(CvsOptions::default().validated(), CvsOptions::default());
        assert_eq!(CvsOptions::svs_baseline().validated().max_path_edges, 1);
    }

    #[test]
    fn explicit_parallelism_wins() {
        let o = CvsOptions {
            parallelism: Some(4),
            ..CvsOptions::default()
        };
        assert_eq!(o.effective_parallelism(), 4);
        // Zero is nonsensical; clamp to sequential.
        let o = CvsOptions {
            parallelism: Some(0),
            ..CvsOptions::default()
        };
        assert_eq!(o.effective_parallelism(), 1);
    }
}
