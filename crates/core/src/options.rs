//! Tuning knobs for the CVS search, including the ablation switches
//! called out in `DESIGN.md`.

use std::time::Duration;

/// Resource bounds for the streaming rewriting search.
///
/// The lazy candidate pipeline (see DESIGN.md, "Budgeted rewriting
/// search") generates candidates best-first; these knobs bound how far
/// it runs. The default is fully unlimited, which makes the search
/// byte-identical to the legacy materialize-then-rank pipeline. Any
/// truncation is reported through `SearchStats::budget_exhausted` —
/// never silent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchBudget {
    /// Cap on candidate rewritings generated (assembled and costed)
    /// for one view. `0` is clamped to unlimited by
    /// [`CvsOptions::validated`]; use `top_k` to bound the *kept* set.
    pub max_candidates: usize,
    /// Global cap on connection trees enumerated across all cover
    /// combinations of one view's search. `0` is clamped to unlimited.
    pub max_trees: usize,
    /// Wall-clock deadline for one view's search, measured from the
    /// start of the candidate generation. `None` (the default) means no
    /// deadline. The SVS baseline strips any deadline so the
    /// CVS-vs-SVS comparison stays exhaustive.
    pub deadline: Option<Duration>,
    /// Number of best rewritings retained (and returned) by the
    /// search. Dominated candidates — provably worse than the current
    /// top-k — are pruned before expansion. `usize::MAX` (the default)
    /// keeps everything; `0` is clamped to `1`.
    pub top_k: usize,
}

impl Default for SearchBudget {
    fn default() -> Self {
        SearchBudget {
            max_candidates: usize::MAX,
            max_trees: usize::MAX,
            deadline: None,
            top_k: usize::MAX,
        }
    }
}

impl SearchBudget {
    /// The default, fully unbounded budget (exhaustive search).
    pub fn unlimited() -> Self {
        SearchBudget::default()
    }

    /// A budget that keeps only the best `k` rewritings but bounds
    /// nothing else.
    pub fn top_k(k: usize) -> Self {
        SearchBudget {
            top_k: k,
            ..SearchBudget::default()
        }
    }

    /// Is every bound at its unlimited setting?
    pub fn is_unlimited(&self) -> bool {
        *self == SearchBudget::default()
    }

    /// Clamp out-of-domain values: `top_k = 0` (which would keep
    /// nothing and make every search come back empty) becomes `1`, zero
    /// candidate/tree caps (same degenerate emptiness) become
    /// unlimited, and a zero deadline (which would truncate every
    /// search on its first iteration) becomes no deadline.
    pub fn validated(self) -> Self {
        SearchBudget {
            max_candidates: if self.max_candidates == 0 {
                usize::MAX
            } else {
                self.max_candidates
            },
            max_trees: if self.max_trees == 0 {
                usize::MAX
            } else {
                self.max_trees
            },
            deadline: self.deadline.filter(|d| !d.is_zero()),
            top_k: self.top_k.max(1),
        }
    }
}

/// What [`crate::Synchronizer::apply`] does when one view's
/// synchronization task panics (organically, or injected via
/// `eve-faults`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FailurePolicy {
    /// Re-raise the panic on the applying thread, wrapped in a
    /// [`crate::SyncPanic`] payload naming the change and the failing
    /// view. The default — a programming error stays loud.
    #[default]
    FailFast,
    /// Contain the failure to the view: retry *transient* failures up to
    /// `max_retries` times (sleeping `backoff × attempt` between tries,
    /// deterministically, on the applying thread), then land the view as
    /// [`crate::ViewOutcome::Failed`] while every other view's outcome
    /// stays byte-identical to the fault-free run.
    Degrade {
        /// Retries after the first attempt (transient failures only —
        /// non-transient panics never retry).
        max_retries: u32,
        /// Base sleep between retries; attempt `n` waits `backoff × n`.
        backoff: Duration,
    },
}

impl FailurePolicy {
    /// The degraded-service preset used by `eve-cli --faults`: two
    /// retries with a 1 ms base backoff.
    pub fn degrade() -> Self {
        FailurePolicy::Degrade {
            max_retries: 2,
            backoff: Duration::from_millis(1),
        }
    }
}

/// How the per-change [`crate::MkbIndex`] derived state is produced when
/// [`crate::Synchronizer::apply`] moves from one MKB version to the next.
///
/// Rebuild equivalence is the contract: all three modes produce
/// byte-identical [`crate::ChangeOutcome`]s (the property suite in
/// `tests/delta_equivalence.rs` enforces it); the modes differ only in
/// how much work each change costs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IndexMaintenance {
    /// Rebuild every derived structure from scratch per change (the
    /// pre-delta behaviour): `O(MKB)` per change, no carried state.
    Rebuild,
    /// Maintain the derived state with typed [`crate::MkbDelta`]s —
    /// incremental interner growth, CSR patching, component
    /// split-recheck, constraint-bucket edits — and carry the
    /// enumeration memo tables across changes, invalidating only the
    /// entries whose key `RelSet` intersects the affected component.
    /// `O(delta)` per change. The default.
    #[default]
    Incremental,
    /// Delta-maintain the derived state but start every change with
    /// fresh (empty) memo tables. Isolates the delta-apply contribution
    /// from the memo-carry contribution in benchmarks.
    IncrementalFresh,
}

/// How clause implication is tested when computing the R-mapping
/// (Def. 2 III: each MKB join constraint must be implied by the view's
/// join condition).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ImplicationMode {
    /// Syntactic equality modulo operand orientation only.
    Syntactic,
    /// Syntactic equality plus interval subsumption over constant
    /// comparisons (`Age > 21 ⇒ Age > 1`) — required to recognise JC2 of
    /// the running example. The default.
    #[default]
    Interval,
}

/// Options controlling the CVS search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CvsOptions {
    /// Maximum number of join-constraint hops allowed when attaching a
    /// cover or a surviving `Min` relation to the candidate join tree.
    /// `usize::MAX` (the default) is full CVS; `1` degrades the search to
    /// the *one-step-away* SVS baseline of [4, 12].
    ///
    /// `0` is nonsensical — a zero-hop bound can never attach anything,
    /// so every multi-relation search would come back empty by
    /// construction. [`CvsOptions::validated`] (applied by the
    /// synchronizer when it builds) clamps it to ≥ 1.
    pub max_path_edges: usize,
    /// Maximum number of connection-tree variants considered per cover
    /// combination (alternative parallel join constraints).
    pub max_trees_per_combination: usize,
    /// Maximum number of cover combinations explored (the cartesian
    /// product over per-attribute cover choices is truncated, breadth
    /// first, at this bound).
    pub max_cover_combinations: usize,
    /// Clause-implication strength for the R-mapping.
    pub implication: ImplicationMode,
    /// Run the Step 4 WHERE-consistency check and discard inconsistent
    /// candidates.
    pub check_consistency: bool,
    /// Exclude relations whose IS does not advertise the *join*
    /// capability from replacement search: a cover that cannot be joined
    /// is unusable (§2's capability descriptions, enforced).
    pub respect_capabilities: bool,
    /// Worker threads for fanning affected views out during
    /// [`crate::Synchronizer::apply`].
    ///
    /// * `Some(n)` — use up to `n` workers (`n ≤ 1` means sequential);
    /// * `None` (the default) — consult the `EVE_PARALLELISM` environment
    ///   variable, falling back to sequential when it is unset or
    ///   unparseable.
    ///
    /// Parallel and sequential runs produce byte-identical outcomes
    /// (results are merged back in view-registration order), so this is
    /// purely a throughput knob.
    pub parallelism: Option<usize>,
    /// Resource bounds for the streaming rewriting search. The default
    /// ([`SearchBudget::unlimited`]) reproduces the exhaustive legacy
    /// pipeline exactly.
    pub budget: SearchBudget,
    /// What to do when a view's synchronization task panics: fail fast
    /// (the default) or degrade that view to
    /// [`crate::ViewOutcome::Failed`] after deterministic retries.
    pub failure: FailurePolicy,
    /// How the per-change [`crate::MkbIndex`] is produced: delta-
    /// maintained (the default) or rebuilt from scratch. All modes
    /// produce identical outcomes; this is purely a throughput knob.
    pub index_maintenance: IndexMaintenance,
}

impl Default for CvsOptions {
    fn default() -> Self {
        CvsOptions {
            max_path_edges: usize::MAX,
            max_trees_per_combination: 4,
            max_cover_combinations: 32,
            implication: ImplicationMode::Interval,
            check_consistency: true,
            respect_capabilities: true,
            parallelism: None,
            budget: SearchBudget::default(),
            failure: FailurePolicy::default(),
            index_maintenance: IndexMaintenance::default(),
        }
    }
}

impl CvsOptions {
    /// The configuration reproducing the *simple* one-step-away view
    /// synchronization (SVS) of the authors' prior work [4, 12]: covers
    /// must attach by a single direct join constraint. SVS is defined
    /// as an *exhaustive* one-step search, so any deadline is rejected
    /// (stripped) — a time-truncated baseline would make the CVS-vs-SVS
    /// comparison meaningless.
    pub fn svs_baseline() -> Self {
        CvsOptions {
            max_path_edges: 1,
            budget: SearchBudget {
                deadline: None,
                ..SearchBudget::default()
            },
            ..CvsOptions::default()
        }
    }

    /// Clamp out-of-domain values: `max_path_edges = 0` (which could
    /// never attach anything — see the field docs) becomes `1`, the
    /// tightest meaningful bound, and the budget fields are clamped by
    /// [`SearchBudget::validated`] (`top_k ≥ 1`, zero caps →
    /// unlimited). The synchronizer applies this when it is built, so a
    /// zero smuggled in through a config file degrades gracefully
    /// instead of silently disabling the search.
    pub fn validated(self) -> Self {
        CvsOptions {
            max_path_edges: self.max_path_edges.max(1),
            budget: self.budget.validated(),
            ..self
        }
    }

    /// Resolve [`CvsOptions::parallelism`] to a concrete worker count:
    /// the explicit setting wins, then the `EVE_PARALLELISM` environment
    /// variable, then sequential (1).
    pub fn effective_parallelism(&self) -> usize {
        match self.parallelism {
            Some(n) => n.max(1),
            None => std::env::var("EVE_PARALLELISM")
                .ok()
                .and_then(|v| v.trim().parse::<usize>().ok())
                .map(|n| n.max(1))
                .unwrap_or(1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let o = CvsOptions::default();
        assert_eq!(o.max_path_edges, usize::MAX);
        assert_eq!(o.implication, ImplicationMode::Interval);
        assert!(o.check_consistency);
    }

    #[test]
    fn svs_baseline_is_one_step() {
        assert_eq!(CvsOptions::svs_baseline().max_path_edges, 1);
    }

    #[test]
    fn validated_clamps_zero_hop_bound() {
        let o = CvsOptions {
            max_path_edges: 0,
            ..CvsOptions::default()
        };
        assert_eq!(o.validated().max_path_edges, 1);
        // In-domain values pass through untouched.
        assert_eq!(CvsOptions::default().validated(), CvsOptions::default());
        assert_eq!(CvsOptions::svs_baseline().validated().max_path_edges, 1);
    }

    #[test]
    fn default_budget_is_unlimited() {
        let b = CvsOptions::default().budget;
        assert!(b.is_unlimited());
        assert_eq!(b.top_k, usize::MAX);
        assert_eq!(b.max_candidates, usize::MAX);
        assert_eq!(b.max_trees, usize::MAX);
        assert_eq!(b.deadline, None);
        assert_eq!(SearchBudget::top_k(1).top_k, 1);
        assert!(!SearchBudget::top_k(1).is_unlimited());
    }

    #[test]
    fn validated_clamps_budget_fields() {
        let o = CvsOptions {
            budget: SearchBudget {
                max_candidates: 0,
                max_trees: 0,
                deadline: None,
                top_k: 0,
            },
            ..CvsOptions::default()
        };
        let v = o.validated().budget;
        assert_eq!(v.top_k, 1);
        assert_eq!(v.max_candidates, usize::MAX);
        assert_eq!(v.max_trees, usize::MAX);
        // In-domain budgets pass through untouched.
        let tight = SearchBudget {
            max_candidates: 5,
            max_trees: 7,
            deadline: Some(std::time::Duration::from_millis(10)),
            top_k: 2,
        };
        assert_eq!(tight.validated(), tight);
    }

    #[test]
    fn validated_clamps_zero_deadline_to_none() {
        let o = CvsOptions {
            budget: SearchBudget {
                deadline: Some(Duration::ZERO),
                ..SearchBudget::default()
            },
            ..CvsOptions::default()
        };
        assert_eq!(o.validated().budget.deadline, None);
        // A real deadline passes through untouched.
        let o = CvsOptions {
            budget: SearchBudget {
                deadline: Some(Duration::from_millis(10)),
                ..SearchBudget::default()
            },
            ..CvsOptions::default()
        };
        assert_eq!(
            o.validated().budget.deadline,
            Some(Duration::from_millis(10))
        );
    }

    #[test]
    fn failure_policy_defaults_and_preset() {
        assert_eq!(CvsOptions::default().failure, FailurePolicy::FailFast);
        let FailurePolicy::Degrade {
            max_retries,
            backoff,
        } = FailurePolicy::degrade()
        else {
            panic!("preset must degrade");
        };
        assert_eq!(max_retries, 2);
        assert_eq!(backoff, Duration::from_millis(1));
    }

    #[test]
    fn svs_baseline_rejects_deadline() {
        assert_eq!(CvsOptions::svs_baseline().budget.deadline, None);
        assert!(CvsOptions::svs_baseline().budget.is_unlimited());
    }

    #[test]
    fn explicit_parallelism_wins() {
        let o = CvsOptions {
            parallelism: Some(4),
            ..CvsOptions::default()
        };
        assert_eq!(o.effective_parallelism(), 4);
        // Zero is nonsensical; clamp to sequential.
        let o = CvsOptions {
            parallelism: Some(0),
            ..CvsOptions::default()
        };
        assert_eq!(o.effective_parallelism(), 1);
    }
}
