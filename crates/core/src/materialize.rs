//! Materialized views and refresh.
//!
//! In the paper's setting (§1) a view is "materialized at the user site
//! as what's called a view (or data warehouse)". View synchronization
//! changes the *definition*; this module closes the loop on the *data*:
//! a [`MaterializedView`] stores the definition together with its
//! materialised extent and can be refreshed against a database state —
//! including after its definition was evolved by the synchronizer, which
//! is when the paper's VE parameter becomes observable as a concrete
//! delta (`V' ⊇ V` shows up as `removed == 0`).

use crate::eval::evaluate_view;
use eve_esql::ViewDefinition;
use eve_relational::{Database, FuncRegistry, Relation, RelationalError};
use std::fmt;

/// A view definition together with its materialised extent.
#[derive(Debug, Clone)]
pub struct MaterializedView {
    /// The current (possibly evolved) definition.
    pub definition: ViewDefinition,
    /// The materialised extent as of the last refresh.
    pub data: Relation,
}

/// The change observed by a refresh.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RefreshDelta {
    /// Tuples present after the refresh but not before.
    pub added: usize,
    /// Tuples present before the refresh but not after.
    pub removed: usize,
}

impl RefreshDelta {
    /// Did the extent change at all?
    pub fn is_empty(self) -> bool {
        self.added == 0 && self.removed == 0
    }
}

impl fmt::Display for RefreshDelta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "+{} / -{}", self.added, self.removed)
    }
}

impl MaterializedView {
    /// Materialise a view against a database state.
    pub fn new(
        definition: ViewDefinition,
        db: &Database,
        funcs: &FuncRegistry,
    ) -> Result<Self, RelationalError> {
        let data = evaluate_view(&definition, db, funcs)?;
        Ok(MaterializedView { definition, data })
    }

    /// Re-evaluate the current definition and swap in the new extent,
    /// reporting the delta.
    ///
    /// Note: the delta is computed positionally over the *current*
    /// schema; after a definition change that renames columns the whole
    /// extent naturally counts as replaced.
    pub fn refresh(
        &mut self,
        db: &Database,
        funcs: &FuncRegistry,
    ) -> Result<RefreshDelta, RelationalError> {
        let new = evaluate_view(&self.definition, db, funcs)?;
        let delta = if new.schema().arity() == self.data.schema().arity() {
            RefreshDelta {
                added: new.rows().filter(|t| !self.data.contains(t)).count(),
                removed: self.data.rows().filter(|t| !new.contains(t)).count(),
            }
        } else {
            RefreshDelta {
                added: new.len(),
                removed: self.data.len(),
            }
        };
        self.data = new;
        Ok(delta)
    }

    /// Replace the definition (e.g. with a legal rewriting adopted by
    /// the synchronizer) and refresh in one step.
    pub fn evolve_to(
        &mut self,
        definition: ViewDefinition,
        db: &Database,
        funcs: &FuncRegistry,
    ) -> Result<RefreshDelta, RelationalError> {
        self.definition = definition;
        self.refresh(db, funcs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eve_esql::parse_view;
    use eve_relational::{AttributeDef, DataType, RelName, Schema, Tuple, Value};

    fn db(ages: &[(&str, i64)]) -> Database {
        let mut db = Database::new();
        let name = RelName::new("Customer");
        let schema = Schema::of_relation(
            &name,
            &[
                AttributeDef::new("Name", DataType::Str),
                AttributeDef::new("Age", DataType::Int),
            ],
        );
        let rel = Relation::from_rows(
            schema,
            ages.iter()
                .map(|(n, a)| Tuple::new(vec![Value::str(*n), Value::Int(*a)])),
        )
        .unwrap();
        db.put(name, rel);
        db
    }

    fn adult_view() -> ViewDefinition {
        parse_view("CREATE VIEW Adults AS SELECT C.Name, C.Age FROM Customer C WHERE C.Age >= 18")
            .unwrap()
    }

    #[test]
    fn materialize_and_refresh_delta() {
        let funcs = FuncRegistry::new();
        let state1 = db(&[("ann", 30), ("bob", 10)]);
        let mut mv = MaterializedView::new(adult_view(), &state1, &funcs).unwrap();
        assert_eq!(mv.data.len(), 1);

        // bob turns 18, cat arrives, ann leaves.
        let state2 = db(&[("bob", 18), ("cat", 44)]);
        let delta = mv.refresh(&state2, &funcs).unwrap();
        assert_eq!(
            delta,
            RefreshDelta {
                added: 2,
                removed: 1
            }
        );
        assert_eq!(mv.data.len(), 2);

        // No change → empty delta.
        let delta = mv.refresh(&state2, &funcs).unwrap();
        assert!(delta.is_empty());
    }

    #[test]
    fn evolve_to_swaps_definition() {
        let funcs = FuncRegistry::new();
        let state = db(&[("ann", 30), ("bob", 10)]);
        let mut mv = MaterializedView::new(adult_view(), &state, &funcs).unwrap();
        let wider =
            parse_view("CREATE VIEW Adults AS SELECT C.Name, C.Age FROM Customer C").unwrap();
        let delta = mv.evolve_to(wider, &state, &funcs).unwrap();
        assert_eq!(delta.added, 1); // bob now qualifies
        assert_eq!(delta.removed, 0); // V' ⊇ V observable in the delta
        assert_eq!(mv.data.len(), 2);
    }

    #[test]
    fn schema_change_counts_full_replacement() {
        let funcs = FuncRegistry::new();
        let state = db(&[("ann", 30)]);
        let mut mv = MaterializedView::new(adult_view(), &state, &funcs).unwrap();
        let narrower = parse_view("CREATE VIEW Adults AS SELECT C.Name FROM Customer C").unwrap();
        let delta = mv.evolve_to(narrower, &state, &funcs).unwrap();
        assert_eq!(delta.added, 1);
        assert_eq!(delta.removed, 1);
    }

    #[test]
    fn display() {
        assert_eq!(
            RefreshDelta {
                added: 2,
                removed: 1
            }
            .to_string(),
            "+2 / -1"
        );
    }
}
