//! CVS Steps 4–5: assembling a synchronized view definition `V'` from an
//! R-replacement candidate, and the top-level
//! [`cvs_delete_relation_indexed`] driver implementing the whole
//! `CVS(V, ch = delete-relation R, MKB, MKB')` algorithm of §5.
//!
//! Step 4: "A synchronized view definition V' is found by replacing
//! `Max(V_R)` with `Max(V_{j,R})` in Eq. (10); and then by substituting
//! the attributes of R in V with the corresponding replacements found in
//! `Max(V_{j,R})`. Because some more conditions are added in the WHERE
//! clause […] we have to check if there are no inconsistencies in the
//! WHERE clause."
//!
//! Step 5 (evolution parameters for new components — the rule of tech
//! report \[8\], reconstructed in DESIGN.md): a replaced component inherits
//! the dispensability of the component it replaces and becomes
//! replaceable; relations and join conditions added to connect covers are
//! `(dispensable = false, replaceable = true)`.

use crate::cost::CostModel;
use crate::error::CvsError;
use crate::extent::{infer_extent_with, satisfies_extent_param, ExtentCtx};
use crate::index::MkbIndex;
use crate::legal::LegalRewriting;
use crate::mapping::{compute_r_mapping, RMapping};
use crate::options::CvsOptions;
use crate::replacement::{CandidateBound, Replacement, ReplacementStream};

use eve_esql::{CondItem, EvolutionParams, FromItem, SelectItem, ViewDefinition};
use eve_relational::{AttrName, Clause, RelName, ScalarExpr};
use std::cmp::Ordering;
use std::collections::BTreeSet;

/// The result of assembling one candidate: the new view plus the
/// bookkeeping needed for P4 verification and extent inference.
#[derive(Debug, Clone)]
pub(crate) struct Assembled {
    pub view: ViewDefinition,
    pub kept_select: Vec<usize>,
    pub dropped_conditions: Vec<CondItem>,
}

/// The cover-combination-level two thirds of assembly: everything below
/// depends only on `(view, rm, rep.covers, rep.c_max_min)` — shared by
/// every connection tree of one cover combination — so the search
/// computes it once per combination and reuses it across the
/// combination's candidates. Kept fields are cloned into each
/// candidate's view; the clones are refcount bumps, the substitution
/// walks and classification checks are not repeated.
#[derive(Debug)]
pub(crate) struct ComboAssembly {
    select: Vec<SelectItem>,
    kept_select: Vec<usize>,
    interface: Option<Vec<AttrName>>,
    /// FROM minus the dropped relation (candidate relations are appended
    /// per tree).
    base_from: Vec<FromItem>,
    existing_from: BTreeSet<RelName>,
    /// `C'_Max/Min` followed by the substituted `C_Rest` — the
    /// tree-independent WHERE prefix, in final order.
    conditions: Vec<CondItem>,
    /// Normalized forms of `conditions`, for the join-clause dedup.
    seen: BTreeSet<Clause>,
    /// `rep.dropped_conditions` followed by the `C_Rest` drops.
    dropped_conditions: Vec<CondItem>,
}

/// The search loop's one-slot combo-assembly cache: the cover map Arc of
/// the combination it was prepared for (pointer identity is the cache
/// key) plus the prepared assembly or the error it failed with.
type ComboAsmCache = (
    std::sync::Arc<
        std::collections::BTreeMap<eve_relational::AttrRef, crate::replacement::CoverChoice>,
    >,
    Result<ComboAssembly, CvsError>,
);

/// Run the combination-level part of Steps 4–5 (SELECT substitution,
/// interface projection, FROM base, `C_Rest` substitution), with the
/// same outcomes — including error order — as the legacy single-pass
/// assembly.
pub(crate) fn prepare_combo_assembly(
    view: &ViewDefinition,
    rm: &RMapping,
    rep: &Replacement,
) -> Result<ComboAssembly, CvsError> {
    let target = &rm.target;

    // ---- SELECT ---------------------------------------------------------
    let mut select = Vec::new();
    let mut kept_select = Vec::new();
    for (i, item) in view.select.iter().enumerate() {
        // Substitute lazily: most items mention none of the covered
        // attributes, and substituting an absent attribute returns an
        // identical clone — skip both the walk and the clone.
        let mut substituted: Option<ScalarExpr> = None;
        if item.params.replaceable {
            for (attr, cover) in rep.covers.iter() {
                let cur = substituted.as_ref().unwrap_or(&item.expr);
                if cur.contains_attr(attr) {
                    substituted = Some(cur.substitute(attr, &cover.replacement));
                }
            }
        }
        let expr_ref = substituted.as_ref().unwrap_or(&item.expr);
        if expr_ref.references_relation(target) {
            if item.params.dispensable {
                continue; // dropped
            }
            return Err(CvsError::IndispensableNotReplaceable {
                component: item.expr.to_string(),
            });
        }
        let changed = match &substituted {
            Some(e) => *e != item.expr,
            None => false,
        };
        let expr = substituted.unwrap_or_else(|| item.expr.clone());
        // Preserve the interface name of a replaced bare attribute so
        // that P3's common-interface comparison keeps the column.
        let alias = item
            .alias
            .clone()
            .or_else(|| if changed { item.output_name() } else { None });
        let params = if changed {
            EvolutionParams::new(item.params.dispensable, true)
        } else {
            item.params
        };
        kept_select.push(i);
        select.push(SelectItem {
            expr,
            alias,
            params,
        });
    }
    if select.is_empty() {
        return Err(CvsError::NoLegalRewriting);
    }

    // Interface list: keep the names of surviving items.
    let interface = view.interface.as_ref().map(|names| {
        kept_select
            .iter()
            .filter_map(|&i| names.get(i).cloned())
            .collect::<Vec<AttrName>>()
    });

    // ---- FROM (base) ----------------------------------------------------
    let base_from: Vec<FromItem> = view
        .from
        .iter()
        .filter(|f| &f.relation != target)
        .cloned()
        .collect();
    let existing_from: BTreeSet<RelName> = base_from.iter().map(|f| f.relation.clone()).collect();

    // ---- WHERE (tree-independent prefix) --------------------------------
    let mut conditions: Vec<CondItem> = Vec::new();
    let mut dropped_conditions: Vec<CondItem> = (*rep.dropped_conditions).clone();

    // C'_Max/Min (already substituted by the replacement computation).
    conditions.extend(rep.c_max_min.iter().cloned());

    // C_Rest, substituted under the same replaceability rules.
    for cond in &rm.c_rest {
        let mut substituted: Option<Clause> = None;
        if cond.params.replaceable {
            for (attr, cover) in rep.covers.iter() {
                let cur = substituted.as_ref().unwrap_or(&cond.clause);
                if cur.lhs.contains_attr(attr) || cur.rhs.contains_attr(attr) {
                    substituted = Some(cur.substitute(attr, &cover.replacement));
                }
            }
        }
        let clause_ref = substituted.as_ref().unwrap_or(&cond.clause);
        if clause_ref.references_relation(target) {
            if cond.params.dispensable {
                dropped_conditions.push(cond.clone());
                continue;
            }
            return Err(CvsError::IndispensableNotReplaceable {
                component: cond.clause.to_string(),
            });
        }
        let changed = match &substituted {
            Some(c) => *c != cond.clause,
            None => false,
        };
        let clause = substituted.unwrap_or_else(|| cond.clause.clone());
        let params = if changed {
            EvolutionParams::new(cond.params.dispensable, true)
        } else {
            cond.params
        };
        conditions.push(CondItem { clause, params });
    }

    let seen: BTreeSet<Clause> = conditions.iter().map(|c| c.clause.normalized()).collect();

    Ok(ComboAssembly {
        select,
        kept_select,
        interface,
        base_from,
        existing_from,
        conditions,
        seen,
        dropped_conditions,
    })
}

/// The per-tree third of assembly: append the candidate's relations to
/// FROM, its join conditions to WHERE (deduplicated against the
/// combination prefix), and check WHERE consistency.
pub(crate) fn assemble_prepared(
    view: &ViewDefinition,
    pre: &ComboAssembly,
    rep: &Replacement,
    opts: &CvsOptions,
) -> Result<Assembled, CvsError> {
    // ---- FROM -----------------------------------------------------------
    let mut from = pre.base_from.clone();
    for rel in &rep.relations {
        if !pre.existing_from.contains(rel) {
            from.push(FromItem {
                relation: rel.clone(),
                alias: None,
                params: EvolutionParams::new(false, true),
            });
        }
    }

    // ---- WHERE ----------------------------------------------------------
    let mut conditions = pre.conditions.clone();

    // Join conditions of Max(V_{j,R}) (Step 5 parameters: required,
    // replaceable), deduplicated against what is already present. The
    // handful of freshly added clauses is scanned linearly instead of
    // growing a per-candidate set.
    let mut added: Vec<Clause> = Vec::new();
    for jc in &rep.joins {
        for clause in jc.predicate.clauses() {
            let n = clause.normalized();
            if !pre.seen.contains(&n) && !added.contains(&n) {
                added.push(n);
                conditions.push(CondItem {
                    clause: clause.clone(),
                    params: EvolutionParams::new(false, true),
                });
            }
        }
    }

    let assembled = ViewDefinition {
        name: view.name.clone(),
        interface: pre.interface.clone(),
        extent: view.extent,
        select: pre.select.clone(),
        from,
        conditions,
    };

    // Step 4 consistency check, over the assembled clauses in place
    // (identical verdict to `where_conjunction().is_consistent()`,
    // without cloning the WHERE list).
    if opts.check_consistency
        && !eve_relational::clauses_consistent(assembled.conditions.iter().map(|c| &c.clause))
    {
        return Err(CvsError::Inconsistent);
    }

    Ok(Assembled {
        view: assembled,
        kept_select: pre.kept_select.clone(),
        dropped_conditions: pre.dropped_conditions.clone(),
    })
}

/// The CVS algorithm for `ch = delete-relation R` (§5):
///
/// 1. construct `H_R(MKB)`;
/// 2. compute the R-mapping (Def. 2);
/// 3. compute the R-replacement set over `H'_R(MKB')` (Def. 3);
/// 4. assemble a synchronized definition per candidate, checking WHERE
///    consistency;
/// 5. set evolution parameters for the new components;
/// 6. evaluate the extent parameter against the PC constraints.
///
/// Returns every assembled rewriting, ordered best-first: P3-certified
/// rewritings before unverified ones, smaller ones before larger ones.
/// Errors only when *no* candidate could be assembled.
///
/// Runs against a prebuilt [`MkbIndex`]: `H_R`, `H'(MKB')`, covers, and
/// PC buckets all come from the index, so synchronizing many views
/// against one capability change performs the MKB-derived work once
/// instead of once per view (and tree searches hit the index's
/// per-change memo tables).
pub fn cvs_delete_relation_indexed(
    view: &ViewDefinition,
    target: &RelName,
    index: &MkbIndex<'_>,
    opts: &CvsOptions,
) -> Result<Vec<LegalRewriting>, CvsError> {
    cvs_delete_relation_searched(view, target, index, opts, false, None).map(|r| r.rewritings)
}

/// Counters describing one view's rewriting search, threaded into
/// [`crate::synchronizer::ViewOutcome`] so budget truncation is
/// reported, never silent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SearchStats {
    /// Candidates expanded through assembly (Steps 4–6). This is the
    /// quantity bounded by `SearchBudget::max_candidates` and the one
    /// the budgeted-vs-exhaustive benchmark compares.
    pub generated: usize,
    /// Branches discarded by the admissible lower bound before
    /// expansion: whole cover combinations (counted once each, before
    /// their trees were enumerated) plus individual dominated
    /// candidates cut before assembly.
    pub pruned: usize,
    /// Rewritings retained in the final (top-k) result.
    pub kept: usize,
    /// Connection trees enumerated across all cover combinations.
    pub trees_enumerated: usize,
    /// Cover combinations whose tree enumeration was (provably or
    /// actually) empty.
    pub disconnected_combos: usize,
    /// Did any budget (`max_candidates`, `max_trees`, `deadline`) cut
    /// the search short? When `false` the result is exhaustive up to
    /// `top_k` — identical to the legacy materialize-then-rank
    /// pipeline's prefix.
    pub budget_exhausted: bool,
}

/// A ranked rewriting list plus the [`SearchStats`] describing how it
/// was found.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchResult {
    /// Best-first rewritings (at most `SearchBudget::top_k`).
    pub rewritings: Vec<LegalRewriting>,
    /// How the search went: candidates generated, pruned, kept, and
    /// whether any budget truncated it.
    pub stats: SearchStats,
}

impl SearchResult {
    /// Wrap an exhaustively computed rewriting list (strategies that do
    /// not stream, e.g. delete-attribute and rename): everything was
    /// generated and kept, nothing pruned or truncated.
    pub fn exhaustive(rewritings: Vec<LegalRewriting>) -> Self {
        let n = rewritings.len();
        SearchResult {
            rewritings,
            stats: SearchStats {
                generated: n,
                kept: n,
                ..SearchStats::default()
            },
        }
    }
}

/// Comparison key of one (real or lower-bound) candidate in the top-k
/// selector. Mirrors the legacy two-pass ordering exactly: a stable
/// structural sort `(¬P3, |relations|, |joins|, rendered view)` followed
/// by the stable cost re-sort `(total, rendered view)` — composed, that
/// is the lexicographic key `(total, rendered, ¬P3, |relations|,
/// |joins|)` when a cost model drives the ranking and the structural key
/// alone otherwise.
#[derive(Debug, Clone)]
struct CandKey {
    /// `Some` iff a cost model drives the ranking.
    cost: Option<f64>,
    /// The canonical rendering, filled lazily: most comparisons are
    /// decided by the cost or the structural triple, so a candidate's
    /// view is rendered only the first time a comparison actually
    /// reaches the textual tie-break (and then cached).
    rendered: std::cell::OnceCell<String>,
    not_p3: bool,
    relations: usize,
    joins: usize,
}

fn rendered_of<'k>(key: &'k CandKey, lr: &LegalRewriting) -> &'k str {
    key.rendered.get_or_init(|| lr.view.rendered())
}

/// The legacy two-pass comparator between two *kept* candidates, each a
/// `(key, rewriting)` pair so the textual tie-break can render on
/// demand.
fn cmp_keys(a: &CandKey, la: &LegalRewriting, b: &CandKey, lb: &LegalRewriting) -> Ordering {
    if let (Some(ca), Some(cb)) = (&a.cost, &b.cost) {
        // The legacy `CostModel::rank` comparator…
        let ord = ca
            .partial_cmp(cb)
            .unwrap_or(Ordering::Equal)
            .then_with(|| rendered_of(a, la).cmp(rendered_of(b, lb)));
        if ord != Ordering::Equal {
            return ord;
        }
        // …falling back to the structural pre-sort it re-sorted.
    }
    (a.not_p3, a.relations, a.joins)
        .cmp(&(b.not_p3, b.relations, b.joins))
        .then_with(|| rendered_of(a, la).cmp(rendered_of(b, lb)))
}

fn key_for(lr: &LegalRewriting, view: &ViewDefinition, cost_model: Option<&CostModel>) -> CandKey {
    CandKey {
        cost: cost_model.map(|m| m.assess(view, lr).total),
        rendered: std::cell::OnceCell::new(),
        not_p3: !lr.satisfies_p3,
        relations: lr.replacement.relations.len(),
        joins: lr.replacement.joins.len(),
    }
}

/// Compare an admissible [`CandidateBound`]'s implied key against a kept
/// candidate's key, as the legacy `cmp_keys(bound_key(b), w)` did with
/// the bound's rendered text bottomed out at `""` and `¬P3` at `false`.
/// A real candidate always renders non-empty (`CREATE VIEW …`), so every
/// textual tie-break resolves to [`Ordering::Less`] without rendering
/// `w` at all.
fn cmp_bound(b: &CandidateBound, cost_model: Option<&CostModel>, w: &CandKey) -> Ordering {
    if let (Some(ca), Some(cb)) = (cost_model.map(|m| cost_lower_bound(m, b)), &w.cost) {
        let ord = ca
            .partial_cmp(cb)
            .unwrap_or(Ordering::Equal)
            .then(Ordering::Less);
        if ord != Ordering::Equal {
            return ord;
        }
    }
    (false, b.min_relations, b.min_joins)
        .cmp(&(w.not_p3, w.relations, w.joins))
        .then(Ordering::Less)
}

/// Admissible lower bound on `CostModel::assess(..).total` for any
/// candidate satisfying `b`: every cost term is a non-negative weight
/// times a count, and `b` lower-bounds the extra-relation and
/// dropped-condition counts. With any negative weight admissibility is
/// lost, so the bound collapses to `-∞` (cost pruning disabled).
fn cost_lower_bound(m: &CostModel, b: &CandidateBound) -> f64 {
    let weights = [
        m.dropped_attr,
        m.dropped_condition,
        m.replaced_component,
        m.extra_relation,
        m.extra_join,
        m.extent_superset,
        m.extent_subset,
        m.extent_unknown,
    ];
    if weights.iter().any(|w| *w < 0.0) {
        return f64::NEG_INFINITY;
    }
    m.extra_relation * b.min_extra_relations as f64
        + m.dropped_condition * b.min_dropped_conditions as f64
}

/// The streaming, budgeted form of [`cvs_delete_relation_indexed`]:
/// candidates are pulled lazily from the (cover combination × connection
/// tree) choice space, dominated branches are pruned through admissible
/// lower bounds, and only the best `opts.budget.top_k` rewritings are
/// retained in a bounded selector.
///
/// With an unlimited budget this is *exactly* the legacy
/// materialize-then-rank pipeline: same rewritings, same order, same
/// errors. `require_p3` filters unverified rewritings before they enter
/// the selector (so a budgeted top-k is not wasted on rewritings the
/// caller will discard), and `cost_model` ranks by assessed cost the way
/// [`CostModel::rank`] did — both previously applied by the engine
/// after full materialization.
///
/// Truncation by any budget is reported through
/// [`SearchStats::budget_exhausted`]; the kept rewritings are then a
/// prefix-consistent subset of the exhaustive ranking, never a silently
/// wrong "best".
pub fn cvs_delete_relation_searched(
    view: &ViewDefinition,
    target: &RelName,
    index: &MkbIndex<'_>,
    opts: &CvsOptions,
    require_p3: bool,
    cost_model: Option<&CostModel>,
) -> Result<SearchResult, CvsError> {
    if !view.uses_relation(target) {
        return Err(CvsError::ViewNotAffected(target.clone()));
    }
    if !index.mkb().contains_relation(target) {
        return Err(CvsError::UnknownRelation(target.clone()));
    }

    // Step 1: H_R(MKB) — the cached component containing R.
    let h_r = index
        .component_of(target)
        .expect("target is described, hence a vertex of H(MKB)");

    // Step 2: R-mapping.
    let rm = compute_r_mapping(view, target, h_r, opts);

    // Step 3 becomes a lazy stream over the cached capability-filtered
    // H'(MKB'); Steps 4–6 run per candidate as it is pulled.
    let budget = opts.budget.validated();
    // `clock::anchor` instead of `Instant::now`: under the simulator a
    // virtual clock governs the deadline, so search truncation is
    // deterministic; outside it this IS wall time.
    let start = crate::clock::anchor();
    let mut stream = ReplacementStream::new(view, &rm, index, opts, budget.max_trees)?;
    let ext_ctx = ExtentCtx::new(&rm);

    let from_rels: BTreeSet<RelName> = view
        .from
        .iter()
        .map(|f| f.relation.clone())
        .filter(|r| r != target)
        .collect();

    let k = budget.top_k;
    let mut rank_span = crate::telem::span("ranking");
    rank_span.label(|| view.name.clone());
    // Kept candidates, sorted ascending by `cmp_keys`; ties inserted
    // after their equals, reproducing the legacy stable sorts.
    let mut selector: Vec<(CandKey, LegalRewriting)> = Vec::new();
    let mut last_err = CvsError::NoLegalRewriting;
    let mut assembled_any = false;
    // Combination-level assembly, recomputed only when the stream moves
    // to a new cover combination (each combination owns a distinct
    // `covers` Arc, so pointer identity detects the switch exactly).
    let mut combo_asm: Option<ComboAsmCache> = None;
    let mut generated = 0usize;
    let mut pruned_candidates = 0usize;
    let mut deadline_hit = false;
    let mut candidate_cap_hit = false;

    loop {
        // An injected budget-exhaustion fault truncates exactly like a
        // real deadline (reported, never silent); injected panics and
        // transients unwind from inside the call.
        if crate::faults::hit("search.candidate") {
            deadline_hit = true;
            break;
        }
        if let Some(d) = budget.deadline {
            if start.elapsed() >= d {
                deadline_hit = true;
                break;
            }
        }
        let full = selector.len() >= k;
        let mut prune = |b: &CandidateBound| match selector.last() {
            // A bound no better than the current worst kept candidate
            // cannot improve the top-k: cut the whole branch.
            Some((w, _)) if full => cmp_bound(b, cost_model, w) != Ordering::Less,
            _ => false,
        };
        let Some(rep) = stream.next_candidate(&mut prune) else {
            break;
        };
        if generated >= budget.max_candidates {
            // The stream had more to offer but the candidate budget is
            // spent — truncation, reported below.
            candidate_cap_hit = true;
            break;
        }
        // Candidate-level admissible bound (exact counts are known
        // now), cutting the assemble + extent inference + costing.
        if full {
            if let Some((w, _)) = selector.last() {
                let cb = CandidateBound {
                    min_relations: rep.relations.len(),
                    min_joins: rep.joins.len(),
                    min_extra_relations: rep
                        .relations
                        .iter()
                        .filter(|r| !from_rels.contains(*r))
                        .count(),
                    min_dropped_conditions: rep.dropped_conditions.len(),
                };
                if cmp_bound(&cb, cost_model, w) != Ordering::Less {
                    pruned_candidates += 1;
                    continue;
                }
            }
        }
        generated += 1;
        let pre = match &combo_asm {
            Some((covers, pre)) if std::sync::Arc::ptr_eq(covers, &rep.covers) => pre,
            _ => {
                let pre = prepare_combo_assembly(view, &rm, &rep);
                &combo_asm.insert((rep.covers.clone(), pre)).1
            }
        };
        let asm_res = match pre {
            Ok(pre) => assemble_prepared(view, pre, &rep, opts),
            Err(e) => Err(e.clone()),
        };
        match asm_res {
            Ok(asm) => {
                assembled_any = true;
                let verdict =
                    infer_extent_with(&ext_ctx, &rep, asm.dropped_conditions.len(), index);
                let satisfies_p3 = satisfies_extent_param(view.extent, verdict);
                if require_p3 && !satisfies_p3 {
                    continue;
                }
                let lr = LegalRewriting {
                    view: asm.view,
                    replacement: rep,
                    verdict,
                    satisfies_p3,
                    kept_select: asm.kept_select,
                    dropped_conditions: asm.dropped_conditions,
                };
                let key = key_for(&lr, view, cost_model);
                let pos = selector
                    .partition_point(|(k2, lr2)| cmp_keys(k2, lr2, &key, &lr) != Ordering::Greater);
                selector.insert(pos, (key, lr));
                if selector.len() > k {
                    selector.pop();
                }
            }
            Err(e) => last_err = e,
        }
    }

    let stats = SearchStats {
        generated,
        pruned: pruned_candidates + stream.combos_pruned(),
        kept: selector.len(),
        trees_enumerated: stream.trees_enumerated(),
        disconnected_combos: stream.disconnected_combos(),
        budget_exhausted: deadline_hit || candidate_cap_hit || stream.tree_budget_exhausted(),
    };
    // The registry totals are a read-out of `stats` (which itself reads
    // the stream's accumulators) — one accumulation path, so the
    // per-view public API and the process-wide metrics can never
    // disagree.
    if crate::telem::enabled() {
        rank_span.field("generated", stats.generated as u64);
        rank_span.field("pruned", stats.pruned as u64);
        rank_span.field("kept", stats.kept as u64);
        rank_span.field("trees", stats.trees_enumerated as u64);
        crate::telem::counter_add("search.candidates_generated", stats.generated as u64);
        crate::telem::counter_add("search.candidates_pruned", stats.pruned as u64);
        crate::telem::counter_add("search.candidates_kept", stats.kept as u64);
        crate::telem::counter_add("search.trees_enumerated", stats.trees_enumerated as u64);
        if stats.disconnected_combos > 0 {
            crate::telem::counter_add(
                "search.disconnected_combos",
                stats.disconnected_combos as u64,
            );
        }
        if stream.tree_budget_exhausted() {
            // Covers both exhaustion sites (budget spent mid-stream and
            // the clipped-fill case the old inline counter missed).
            crate::telem::counter_add("search.tree_budget_exhausted", 1);
        }
        if stats.budget_exhausted {
            crate::telem::counter_add("search.budget_exhausted", 1);
        }
    }
    drop(rank_span);
    if selector.is_empty() {
        return Err(if assembled_any {
            // Candidates assembled fine but all failed the P3
            // requirement — the engine's legacy verdict for that.
            CvsError::NoLegalRewriting
        } else if generated > 0 {
            // Every assembly failed: surface the last assembly error.
            last_err
        } else if stream.any_disconnected() {
            CvsError::Disconnected
        } else {
            CvsError::NoLegalRewriting
        });
    }
    Ok(SearchResult {
        rewritings: selector.into_iter().map(|(_, lr)| lr).collect(),
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extent::ExtentVerdict;
    use crate::testutil::travel_mkb;
    use eve_esql::{parse_view, validate_view};
    use eve_misd::{evolve, CapabilityChange, MetaKnowledgeBase};
    use eve_relational::AttrRef;

    fn eq5_view() -> ViewDefinition {
        parse_view(
            "CREATE VIEW Customer-Passengers-Asia AS
             SELECT C.Name (false, true), C.Age (true, true),
                    P.Participant (true, true), P.TourID (true, true)
             FROM Customer C (true, true), FlightRes F (true, true), Participant P (true, true)
             WHERE (C.Name = F.PName) (false, true) AND (F.Dest = 'Asia')
               AND (P.StartDate = F.Date) AND (P.Loc = 'Asia')",
        )
        .unwrap()
    }

    fn run_eq5() -> (
        ViewDefinition,
        Vec<LegalRewriting>,
        CapabilityChange,
        MetaKnowledgeBase,
    ) {
        let mkb = travel_mkb();
        let view = eq5_view();
        let customer = RelName::new("Customer");
        let change = CapabilityChange::DeleteRelation(customer.clone());
        let mkb2 = evolve(&mkb, &change).unwrap();
        let rewritings =
            crate::testutil::cvs_dr(&view, &customer, &mkb, &mkb2, &CvsOptions::default()).unwrap();
        (view, rewritings, change, mkb2)
    }

    #[test]
    fn example_10_rewriting_via_accident_ins() {
        // The paper's Eq. (13): Customer replaced by Accident-Ins; Name →
        // A.Holder, Age → f(A.Birthday); join F.PName = A.Holder (JC6).
        let (view, rewritings, change, mkb2) = run_eq5();
        let via_ins = rewritings
            .iter()
            .find(|r| {
                r.replacement
                    .covers
                    .get(&AttrRef::new("Customer", "Name"))
                    .map(|c| c.funcof_id == "F2")
                    .unwrap_or(false)
                    && r.replacement.covers.len() == 2
            })
            .expect("Eq. (13) rewriting missing");
        let text = via_ins.view.to_string();
        assert!(text.contains("Accident-Ins.Holder"), "{text}");
        assert!(text.contains("Accident-Ins.Birthday"), "{text}");
        assert!(!text.contains("Customer."), "{text}");
        assert!(
            text.contains("FlightRes.PName = Accident-Ins.Holder")
                || text.contains("Accident-Ins.Holder = FlightRes.PName"),
            "JC6 join condition missing: {text}"
        );
        // The Rest conditions survive untouched.
        assert!(
            text.contains("Participant.StartDate = FlightRes.Date"),
            "{text}"
        );
        assert!(text.contains("Participant.Loc = 'Asia'"), "{text}");

        // Legality: P1, P2, P4 all hold.
        assert!(via_ins.check_p1(&change));
        assert!(via_ins.check_p2(&mkb2));
        assert!(via_ins.check_p4(&view));
        // The rewriting is structurally valid (relations known, WHERE
        // consistent).
        let errs: Vec<_> = validate_view(&via_ins.view)
            .into_iter()
            // evolved views may use join attributes that are not
            // preserved (Eq. (4) does exactly this) — ignore that class
            .filter(|e| !matches!(e, eve_esql::ValidationError::DistinguishedNotPreserved(_)))
            .collect();
        assert!(errs.is_empty(), "{errs:?}");
    }

    #[test]
    fn interface_names_preserved_for_replaced_attrs() {
        // C.Name is replaced by A.Holder but must still export as "Name"
        // so that P3's common-interface comparison sees the column.
        let (_, rewritings, _, _) = run_eq5();
        for r in &rewritings {
            let names = r.view.interface_names();
            assert!(
                names.iter().any(|n| n.as_str() == "Name"),
                "interface lost Name: {names:?}"
            );
        }
    }

    #[test]
    fn dispensable_uncovered_attr_dropped() {
        // Remove F3 from the MKB: Age has no cover, but it is dispensable
        // — rewritings must simply drop it.
        let mkb = travel_mkb();
        let customer = RelName::new("Customer");
        let change = CapabilityChange::DeleteRelation(customer.clone());
        let mkb2 = evolve(&mkb, &change).unwrap();
        let view = eq5_view();
        let rewritings =
            crate::testutil::cvs_dr(&view, &customer, &mkb, &mkb2, &CvsOptions::default()).unwrap();
        let no_age = rewritings
            .iter()
            .find(|r| {
                !r.replacement
                    .covers
                    .contains_key(&AttrRef::new("Customer", "Age"))
            })
            .expect("some candidate leaves Age uncovered");
        // Age dropped from SELECT (it has no cover in this candidate).
        assert_eq!(no_age.view.select.len(), 3);
        assert!(no_age.check_p4(&view));
    }

    #[test]
    fn nonreplaceable_dispensable_item_is_dropped_not_substituted() {
        // Eq. (1) semantics: Phone (AD = true, AR = false) must be
        // dropped, never replaced — even if a cover existed.
        let mkb = travel_mkb();
        let customer = RelName::new("Customer");
        let change = CapabilityChange::DeleteRelation(customer.clone());
        let mkb2 = evolve(&mkb, &change).unwrap();
        let view = parse_view(
            "CREATE VIEW Asia-Customer (VE = superset) AS
             SELECT C.Name (AR = true), C.Phone (AD = true, AR = false)
             FROM Customer C (RR = true), FlightRes F
             WHERE (C.Name = F.PName) AND (F.Dest = 'Asia') (CD = true)",
        )
        .unwrap();
        let rewritings =
            crate::testutil::cvs_dr(&view, &customer, &mkb, &mkb2, &CvsOptions::default()).unwrap();
        for r in &rewritings {
            assert!(
                !r.view.to_string().contains("Phone")
                    || r.view
                        .interface_names()
                        .iter()
                        .all(|n| n.as_str() != "Phone"),
            );
            assert!(r.check_p4(&view), "{:#?}", r.view);
        }
    }

    #[test]
    fn results_ordered_p3_first() {
        let (_, rewritings, _, _) = run_eq5();
        let first_unsat = rewritings.iter().position(|r| !r.satisfies_p3);
        let last_sat = rewritings.iter().rposition(|r| r.satisfies_p3);
        if let (Some(u), Some(s)) = (first_unsat, last_sat) {
            assert!(s < u, "satisfied-P3 rewritings must sort first");
        }
    }

    #[test]
    fn unaffected_view_errors() {
        let mkb = travel_mkb();
        let customer = RelName::new("Customer");
        let mkb2 = evolve(&mkb, &CapabilityChange::DeleteRelation(customer.clone())).unwrap();
        let view = parse_view("CREATE VIEW V AS SELECT T.TourName FROM Tour T").unwrap();
        assert!(matches!(
            crate::testutil::cvs_dr(&view, &customer, &mkb, &mkb2, &CvsOptions::default()),
            Err(CvsError::ViewNotAffected(_))
        ));
    }

    #[test]
    fn verdicts_populated() {
        let (_, rewritings, _, _) = run_eq5();
        // Without PC constraints in the MKB the cover swaps cannot be
        // certified — all verdicts are Unknown (or Superset for pure
        // drops); none may claim equivalence.
        for r in &rewritings {
            assert_ne!(r.verdict, ExtentVerdict::Equivalent);
        }
    }
}
