//! CVS Steps 4–5: assembling a synchronized view definition `V'` from an
//! R-replacement candidate, and the top-level
//! [`cvs_delete_relation_indexed`] driver implementing the whole
//! `CVS(V, ch = delete-relation R, MKB, MKB')` algorithm of §5.
//!
//! Step 4: "A synchronized view definition V' is found by replacing
//! `Max(V_R)` with `Max(V_{j,R})` in Eq. (10); and then by substituting
//! the attributes of R in V with the corresponding replacements found in
//! `Max(V_{j,R})`. Because some more conditions are added in the WHERE
//! clause […] we have to check if there are no inconsistencies in the
//! WHERE clause."
//!
//! Step 5 (evolution parameters for new components — the rule of tech
//! report \[8\], reconstructed in DESIGN.md): a replaced component inherits
//! the dispensability of the component it replaces and becomes
//! replaceable; relations and join conditions added to connect covers are
//! `(dispensable = false, replaceable = true)`.

use crate::error::CvsError;
use crate::extent::{infer_extent_indexed, satisfies_extent_param};
use crate::index::MkbIndex;
use crate::legal::LegalRewriting;
use crate::mapping::{compute_r_mapping, RMapping};
use crate::options::CvsOptions;
use crate::replacement::{compute_replacements_indexed, Replacement};
use eve_esql::{CondItem, EvolutionParams, FromItem, SelectItem, ViewDefinition};
use eve_relational::{AttrName, Clause, RelName};
use std::collections::BTreeSet;

/// The result of assembling one candidate: the new view plus the
/// bookkeeping needed for P4 verification and extent inference.
#[derive(Debug, Clone)]
pub(crate) struct Assembled {
    pub view: ViewDefinition,
    pub kept_select: Vec<usize>,
    pub dropped_conditions: Vec<CondItem>,
}

/// Assemble `V'` for one replacement candidate (Steps 4–5).
pub(crate) fn assemble(
    view: &ViewDefinition,
    rm: &RMapping,
    rep: &Replacement,
    opts: &CvsOptions,
) -> Result<Assembled, CvsError> {
    let target = &rm.target;

    // ---- SELECT ---------------------------------------------------------
    let mut select = Vec::new();
    let mut kept_select = Vec::new();
    for (i, item) in view.select.iter().enumerate() {
        let mut expr = item.expr.clone();
        if item.params.replaceable {
            for (attr, cover) in &rep.covers {
                expr = expr.substitute(attr, &cover.replacement);
            }
        }
        if expr.relations().contains(target) {
            if item.params.dispensable {
                continue; // dropped
            }
            return Err(CvsError::IndispensableNotReplaceable {
                component: item.expr.to_string(),
            });
        }
        let changed = expr != item.expr;
        // Preserve the interface name of a replaced bare attribute so
        // that P3's common-interface comparison keeps the column.
        let alias = item
            .alias
            .clone()
            .or_else(|| if changed { item.output_name() } else { None });
        let params = if changed {
            EvolutionParams::new(item.params.dispensable, true)
        } else {
            item.params
        };
        kept_select.push(i);
        select.push(SelectItem {
            expr,
            alias,
            params,
        });
    }
    if select.is_empty() {
        return Err(CvsError::NoLegalRewriting);
    }

    // Interface list: keep the names of surviving items.
    let interface = view.interface.as_ref().map(|names| {
        kept_select
            .iter()
            .filter_map(|&i| names.get(i).cloned())
            .collect::<Vec<AttrName>>()
    });

    // ---- FROM -----------------------------------------------------------
    let mut from: Vec<FromItem> = view
        .from
        .iter()
        .filter(|f| &f.relation != target)
        .cloned()
        .collect();
    let existing: BTreeSet<RelName> = from.iter().map(|f| f.relation.clone()).collect();
    for rel in &rep.relations {
        if !existing.contains(rel) {
            from.push(FromItem {
                relation: rel.clone(),
                alias: None,
                params: EvolutionParams::new(false, true),
            });
        }
    }

    // ---- WHERE ----------------------------------------------------------
    let mut conditions: Vec<CondItem> = Vec::new();
    let mut dropped_conditions: Vec<CondItem> = rep.dropped_conditions.clone();

    // C'_Max/Min (already substituted by the replacement computation).
    conditions.extend(rep.c_max_min.iter().cloned());

    // C_Rest, substituted under the same replaceability rules.
    for cond in &rm.c_rest {
        let mut clause = cond.clause.clone();
        if cond.params.replaceable {
            for (attr, cover) in &rep.covers {
                clause = clause.substitute(attr, &cover.replacement);
            }
        }
        if clause.relations().contains(target) {
            if cond.params.dispensable {
                dropped_conditions.push(cond.clone());
                continue;
            }
            return Err(CvsError::IndispensableNotReplaceable {
                component: cond.clause.to_string(),
            });
        }
        let changed = clause != cond.clause;
        let params = if changed {
            EvolutionParams::new(cond.params.dispensable, true)
        } else {
            cond.params
        };
        conditions.push(CondItem { clause, params });
    }

    // Join conditions of Max(V_{j,R}) (Step 5 parameters: required,
    // replaceable), deduplicated against what is already present.
    let mut seen: BTreeSet<Clause> = conditions.iter().map(|c| c.clause.normalized()).collect();
    for jc in &rep.joins {
        for clause in jc.predicate.clauses() {
            if seen.insert(clause.normalized()) {
                conditions.push(CondItem {
                    clause: clause.clone(),
                    params: EvolutionParams::new(false, true),
                });
            }
        }
    }

    let assembled = ViewDefinition {
        name: view.name.clone(),
        interface,
        extent: view.extent,
        select,
        from,
        conditions,
    };

    // Step 4 consistency check.
    if opts.check_consistency && !assembled.where_conjunction().is_consistent() {
        return Err(CvsError::Inconsistent);
    }

    Ok(Assembled {
        view: assembled,
        kept_select,
        dropped_conditions,
    })
}

/// The CVS algorithm for `ch = delete-relation R` (§5):
///
/// 1. construct `H_R(MKB)`;
/// 2. compute the R-mapping (Def. 2);
/// 3. compute the R-replacement set over `H'_R(MKB')` (Def. 3);
/// 4. assemble a synchronized definition per candidate, checking WHERE
///    consistency;
/// 5. set evolution parameters for the new components;
/// 6. evaluate the extent parameter against the PC constraints.
///
/// Returns every assembled rewriting, ordered best-first: P3-certified
/// rewritings before unverified ones, smaller ones before larger ones.
/// Errors only when *no* candidate could be assembled.
///
/// Runs against a prebuilt [`MkbIndex`]: `H_R`, `H'(MKB')`, covers, and
/// PC buckets all come from the index, so synchronizing many views
/// against one capability change performs the MKB-derived work once
/// instead of once per view (and tree searches hit the index's
/// per-change memo tables).
pub fn cvs_delete_relation_indexed(
    view: &ViewDefinition,
    target: &RelName,
    index: &MkbIndex<'_>,
    opts: &CvsOptions,
) -> Result<Vec<LegalRewriting>, CvsError> {
    if !view.uses_relation(target) {
        return Err(CvsError::ViewNotAffected(target.clone()));
    }
    if !index.mkb().contains_relation(target) {
        return Err(CvsError::UnknownRelation(target.clone()));
    }

    // Step 1: H_R(MKB) — the cached component containing R.
    let h_r = index
        .component_of(target)
        .expect("target is described, hence a vertex of H(MKB)");

    // Step 2: R-mapping.
    let rm = compute_r_mapping(view, target, h_r, opts);

    // Step 3: R-replacement over the cached capability-filtered H'(MKB').
    let reps = compute_replacements_indexed(view, &rm, index, opts)?;

    // Steps 4–6 per candidate.
    let mut out: Vec<LegalRewriting> = Vec::new();
    let mut last_err = CvsError::NoLegalRewriting;
    for rep in reps {
        match assemble(view, &rm, &rep, opts) {
            Ok(asm) => {
                let verdict = infer_extent_indexed(&rm, &rep, asm.dropped_conditions.len(), index);
                let satisfies_p3 = satisfies_extent_param(view.extent, verdict);
                out.push(LegalRewriting {
                    view: asm.view,
                    replacement: rep,
                    verdict,
                    satisfies_p3,
                    kept_select: asm.kept_select,
                    dropped_conditions: asm.dropped_conditions,
                });
            }
            Err(e) => last_err = e,
        }
    }
    if out.is_empty() {
        return Err(last_err);
    }
    out.sort_by_key(|r| {
        (
            !r.satisfies_p3,
            r.replacement.relations.len(),
            r.replacement.joins.len(),
            r.view.to_string(),
        )
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extent::ExtentVerdict;
    use crate::testutil::travel_mkb;
    use eve_esql::{parse_view, validate_view};
    use eve_misd::{evolve, CapabilityChange, MetaKnowledgeBase};
    use eve_relational::AttrRef;

    fn eq5_view() -> ViewDefinition {
        parse_view(
            "CREATE VIEW Customer-Passengers-Asia AS
             SELECT C.Name (false, true), C.Age (true, true),
                    P.Participant (true, true), P.TourID (true, true)
             FROM Customer C (true, true), FlightRes F (true, true), Participant P (true, true)
             WHERE (C.Name = F.PName) (false, true) AND (F.Dest = 'Asia')
               AND (P.StartDate = F.Date) AND (P.Loc = 'Asia')",
        )
        .unwrap()
    }

    fn run_eq5() -> (
        ViewDefinition,
        Vec<LegalRewriting>,
        CapabilityChange,
        MetaKnowledgeBase,
    ) {
        let mkb = travel_mkb();
        let view = eq5_view();
        let customer = RelName::new("Customer");
        let change = CapabilityChange::DeleteRelation(customer.clone());
        let mkb2 = evolve(&mkb, &change).unwrap();
        let rewritings =
            crate::testutil::cvs_dr(&view, &customer, &mkb, &mkb2, &CvsOptions::default()).unwrap();
        (view, rewritings, change, mkb2)
    }

    #[test]
    fn example_10_rewriting_via_accident_ins() {
        // The paper's Eq. (13): Customer replaced by Accident-Ins; Name →
        // A.Holder, Age → f(A.Birthday); join F.PName = A.Holder (JC6).
        let (view, rewritings, change, mkb2) = run_eq5();
        let via_ins = rewritings
            .iter()
            .find(|r| {
                r.replacement
                    .covers
                    .get(&AttrRef::new("Customer", "Name"))
                    .map(|c| c.funcof_id == "F2")
                    .unwrap_or(false)
                    && r.replacement.covers.len() == 2
            })
            .expect("Eq. (13) rewriting missing");
        let text = via_ins.view.to_string();
        assert!(text.contains("Accident-Ins.Holder"), "{text}");
        assert!(text.contains("Accident-Ins.Birthday"), "{text}");
        assert!(!text.contains("Customer."), "{text}");
        assert!(
            text.contains("FlightRes.PName = Accident-Ins.Holder")
                || text.contains("Accident-Ins.Holder = FlightRes.PName"),
            "JC6 join condition missing: {text}"
        );
        // The Rest conditions survive untouched.
        assert!(
            text.contains("Participant.StartDate = FlightRes.Date"),
            "{text}"
        );
        assert!(text.contains("Participant.Loc = 'Asia'"), "{text}");

        // Legality: P1, P2, P4 all hold.
        assert!(via_ins.check_p1(&change));
        assert!(via_ins.check_p2(&mkb2));
        assert!(via_ins.check_p4(&view));
        // The rewriting is structurally valid (relations known, WHERE
        // consistent).
        let errs: Vec<_> = validate_view(&via_ins.view)
            .into_iter()
            // evolved views may use join attributes that are not
            // preserved (Eq. (4) does exactly this) — ignore that class
            .filter(|e| !matches!(e, eve_esql::ValidationError::DistinguishedNotPreserved(_)))
            .collect();
        assert!(errs.is_empty(), "{errs:?}");
    }

    #[test]
    fn interface_names_preserved_for_replaced_attrs() {
        // C.Name is replaced by A.Holder but must still export as "Name"
        // so that P3's common-interface comparison sees the column.
        let (_, rewritings, _, _) = run_eq5();
        for r in &rewritings {
            let names = r.view.interface_names();
            assert!(
                names.iter().any(|n| n.as_str() == "Name"),
                "interface lost Name: {names:?}"
            );
        }
    }

    #[test]
    fn dispensable_uncovered_attr_dropped() {
        // Remove F3 from the MKB: Age has no cover, but it is dispensable
        // — rewritings must simply drop it.
        let mkb = travel_mkb();
        let customer = RelName::new("Customer");
        let change = CapabilityChange::DeleteRelation(customer.clone());
        let mkb2 = evolve(&mkb, &change).unwrap();
        let view = eq5_view();
        let rewritings =
            crate::testutil::cvs_dr(&view, &customer, &mkb, &mkb2, &CvsOptions::default()).unwrap();
        let no_age = rewritings
            .iter()
            .find(|r| {
                !r.replacement
                    .covers
                    .contains_key(&AttrRef::new("Customer", "Age"))
            })
            .expect("some candidate leaves Age uncovered");
        // Age dropped from SELECT (it has no cover in this candidate).
        assert_eq!(no_age.view.select.len(), 3);
        assert!(no_age.check_p4(&view));
    }

    #[test]
    fn nonreplaceable_dispensable_item_is_dropped_not_substituted() {
        // Eq. (1) semantics: Phone (AD = true, AR = false) must be
        // dropped, never replaced — even if a cover existed.
        let mkb = travel_mkb();
        let customer = RelName::new("Customer");
        let change = CapabilityChange::DeleteRelation(customer.clone());
        let mkb2 = evolve(&mkb, &change).unwrap();
        let view = parse_view(
            "CREATE VIEW Asia-Customer (VE = superset) AS
             SELECT C.Name (AR = true), C.Phone (AD = true, AR = false)
             FROM Customer C (RR = true), FlightRes F
             WHERE (C.Name = F.PName) AND (F.Dest = 'Asia') (CD = true)",
        )
        .unwrap();
        let rewritings =
            crate::testutil::cvs_dr(&view, &customer, &mkb, &mkb2, &CvsOptions::default()).unwrap();
        for r in &rewritings {
            assert!(
                !r.view.to_string().contains("Phone")
                    || r.view
                        .interface_names()
                        .iter()
                        .all(|n| n.as_str() != "Phone"),
            );
            assert!(r.check_p4(&view), "{:#?}", r.view);
        }
    }

    #[test]
    fn results_ordered_p3_first() {
        let (_, rewritings, _, _) = run_eq5();
        let first_unsat = rewritings.iter().position(|r| !r.satisfies_p3);
        let last_sat = rewritings.iter().rposition(|r| r.satisfies_p3);
        if let (Some(u), Some(s)) = (first_unsat, last_sat) {
            assert!(s < u, "satisfied-P3 rewritings must sort first");
        }
    }

    #[test]
    fn unaffected_view_errors() {
        let mkb = travel_mkb();
        let customer = RelName::new("Customer");
        let mkb2 = evolve(&mkb, &CapabilityChange::DeleteRelation(customer.clone())).unwrap();
        let view = parse_view("CREATE VIEW V AS SELECT T.TourName FROM Tour T").unwrap();
        assert!(matches!(
            crate::testutil::cvs_dr(&view, &customer, &mkb, &mkb2, &CvsOptions::default()),
            Err(CvsError::ViewNotAffected(_))
        ));
    }

    #[test]
    fn verdicts_populated() {
        let (_, rewritings, _, _) = run_eq5();
        // Without PC constraints in the MKB the cover swaps cannot be
        // certified — all verdicts are Unknown (or Superset for pure
        // drops); none may claim equivalence.
        for r in &rewritings {
            assert_ne!(r.verdict, ExtentVerdict::Equivalent);
        }
    }
}
