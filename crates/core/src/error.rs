//! Errors for the CVS pipeline.

use eve_relational::{AttrRef, RelName};
use std::fmt;

/// Why a view could not be synchronized (Step 3 failure causes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CvsError {
    /// The deleted relation is not in the view's FROM clause — nothing to
    /// synchronize.
    ViewNotAffected(RelName),
    /// The deleted relation is not described in the MKB.
    UnknownRelation(RelName),
    /// An indispensable, non-replaceable component references the deleted
    /// element; Def. 1 P4 forbids both dropping and replacing it.
    IndispensableNotReplaceable {
        /// The referencing component, rendered for diagnostics.
        component: String,
    },
    /// An indispensable attribute of the deleted relation has no cover
    /// (no function-of constraint defines it from a surviving relation).
    NoCover(AttrRef),
    /// The surviving relations of `Min(H'_R)` (plus covers) fall into
    /// disconnected components of `H'(MKB')`, so the R-replacement set is
    /// empty (Def. 3).
    Disconnected,
    /// Every candidate rewriting failed (inconsistent WHERE clause,
    /// missing covers, or extent-parameter violation).
    NoLegalRewriting,
    /// The view, together with a candidate, produced an inconsistent
    /// WHERE clause (Step 4 check) — reported per candidate internally.
    Inconsistent,
    /// A [`crate::engine::SynchronizationStrategy`] was invoked with a
    /// change operator it does not handle (engine dispatch should have
    /// routed elsewhere).
    UnsupportedChange {
        /// The change, rendered for diagnostics.
        change: String,
    },
    /// MKB evolution itself failed.
    Misd(eve_misd::MisdError),
}

impl fmt::Display for CvsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CvsError::ViewNotAffected(r) => {
                write!(f, "view does not reference relation {r}; nothing to do")
            }
            CvsError::UnknownRelation(r) => write!(f, "relation {r} not described in MKB"),
            CvsError::IndispensableNotReplaceable { component } => write!(
                f,
                "component `{component}` is indispensable and non-replaceable"
            ),
            CvsError::NoCover(a) => write!(f, "no cover found for indispensable attribute {a}"),
            CvsError::Disconnected => write!(
                f,
                "surviving relations are disconnected in H'(MKB'); R-replacement set is empty"
            ),
            CvsError::NoLegalRewriting => write!(f, "no legal rewriting exists"),
            CvsError::Inconsistent => write!(f, "candidate WHERE clause is inconsistent"),
            CvsError::UnsupportedChange { change } => {
                write!(f, "strategy does not handle change `{change}`")
            }
            CvsError::Misd(e) => write!(f, "MKB evolution failed: {e}"),
        }
    }
}

impl std::error::Error for CvsError {}

impl From<eve_misd::MisdError> for CvsError {
    fn from(e: eve_misd::MisdError) -> Self {
        CvsError::Misd(e)
    }
}
