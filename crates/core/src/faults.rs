//! Crate-internal facade over `eve-faults`, mirroring the
//! `crate::telem` pattern: with the default `faults` feature the real
//! injection registry is consulted (one relaxed atomic load per site
//! when no plan is installed); without it every site compiles down to a
//! no-op. Call sites use `crate::faults::…` and never mention the
//! feature themselves.
//!
//! Site naming: `<subsystem>.<event>` — `index.build`,
//! `index.enumerate-trees`, `search.candidate`, `view.sync` (plus
//! `hypergraph.tree-iter` wired in `eve-hypergraph`). The synchronizer
//! scopes each view task by view name, so `EVE_FAULTS=CPA/view.sync#0=panic`
//! hits view `CPA`'s first synchronization attempt and nothing else.

#[cfg(feature = "faults")]
mod real {
    use std::any::Any;

    #[inline]
    pub(crate) fn active() -> bool {
        eve_faults::active()
    }

    /// Run `f` under the named fault scope (panic-safe pop).
    #[inline]
    pub(crate) fn scoped<R>(scope: &str, f: impl FnOnce() -> R) -> R {
        eve_faults::scoped(scope, f)
    }

    /// Count a hit of `site` and execute any fault addressed to it.
    /// Returns `true` exactly when a budget-exhaustion fault fired (the
    /// site truncates its search); panic/transient faults unwind from
    /// inside, delays sleep and return `false`. Every injected fault is
    /// also counted on the `faults.injected` telemetry counter and
    /// captured by the flight recorder (scope/site/hit/kind).
    #[inline]
    pub(crate) fn hit(site: &str) -> bool {
        if !eve_faults::active() {
            return false;
        }
        match eve_faults::check_fired(site) {
            None => false,
            Some((kind, fired)) => {
                crate::telem::counter_add("faults.injected", 1);
                crate::telem::flight_fault(&fired.scope, &fired.site, fired.hit, fired.kind);
                eve_faults::execute(site, kind)
            }
        }
    }

    /// Describe a caught panic payload when it is an injected fault:
    /// `(deterministic message, retryable?)`.
    pub(crate) fn injected_info(payload: &(dyn Any + Send)) -> Option<(String, bool)> {
        eve_faults::injected(payload).map(|f| (f.to_string(), f.transient))
    }
}

#[cfg(feature = "faults")]
pub(crate) use real::*;

#[cfg(not(feature = "faults"))]
pub(crate) use inert::*;

#[cfg(not(feature = "faults"))]
mod inert {
    //! Signature-compatible no-op mirror of the facade.
    #![allow(dead_code)]

    use std::any::Any;

    #[inline(always)]
    pub(crate) fn active() -> bool {
        false
    }

    #[inline(always)]
    pub(crate) fn scoped<R>(_scope: &str, f: impl FnOnce() -> R) -> R {
        f()
    }

    #[inline(always)]
    pub(crate) fn hit(_site: &str) -> bool {
        false
    }

    #[inline(always)]
    pub(crate) fn injected_info(_payload: &(dyn Any + Send)) -> Option<(String, bool)> {
        None
    }
}
