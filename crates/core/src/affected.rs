//! Step 2 of the three-step strategy (§4): detecting the views affected by
//! a capability change.
//!
//! A view is affected when it references the deleted/renamed element. The
//! *indirect* effects the paper mentions (a view affected "due to MKB
//! evolution") arise for delete operators through cascaded constraint
//! removal; for SELECT-FROM-WHERE views over base relations, reference
//! inspection is exact: a view evaluates in the new information space iff
//! every relation/attribute it references still exists.

use crate::index::MkbIndex;
use eve_esql::ViewDefinition;
use eve_misd::{CapabilityChange, MetaKnowledgeBase};

/// Is this view affected by the change?
///
/// * `delete-relation R` — affected iff `R` occurs in the FROM clause;
/// * `delete-attribute R.A` — affected iff the view references `R.A`;
/// * `rename-relation` / `rename-attribute` — affected iff the view
///   references the old name (the synchronizer rewrites references
///   transparently; the paper counts these as non-invalidating);
/// * `add-relation` / `add-attribute` — never affect existing views.
pub fn is_affected(view: &ViewDefinition, change: &CapabilityChange) -> bool {
    match change {
        CapabilityChange::AddRelation(_) | CapabilityChange::AddAttribute { .. } => false,
        CapabilityChange::DeleteRelation(r) => view.uses_relation(r),
        CapabilityChange::RenameRelation { from, .. } => view.uses_relation(from),
        CapabilityChange::DeleteAttribute(a) => view.uses_attr(a),
        CapabilityChange::RenameAttribute { from, .. } => view.uses_attr(from),
    }
}

/// Does the view evaluate in the information space described by `mkb` —
/// i.e. does every relation and attribute it references exist there?
/// This is the exact evaluability test for SELECT-FROM-WHERE views over
/// base relations (see the module docs), used both for registration-time
/// validation and for reviving disabled views.
pub fn is_evaluable(view: &ViewDefinition, mkb: &MetaKnowledgeBase) -> bool {
    view.relations().iter().all(|r| mkb.contains_relation(r))
        && view.referenced_attrs().iter().all(|a| mkb.has_attr(a))
}

/// Would this (previously disabled) view evaluate against the evolved
/// MKB' of `index`? Used by the synchronizer's revival pass after
/// `add-relation` / `add-attribute` changes restore referenced elements.
pub fn revivable(view: &ViewDefinition, index: &MkbIndex<'_>) -> bool {
    is_evaluable(view, index.mkb_prime())
}

/// Indices of the affected views among `views`.
pub fn affected_views(views: &[ViewDefinition], change: &CapabilityChange) -> Vec<usize> {
    views
        .iter()
        .enumerate()
        .filter(|(_, v)| is_affected(v, change))
        .map(|(i, _)| i)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use eve_esql::parse_view;
    use eve_misd::RelationDescription;
    use eve_relational::{AttrName, AttrRef, AttributeDef, DataType, RelName};

    fn view() -> ViewDefinition {
        parse_view(
            "CREATE VIEW V AS SELECT C.Name, F.Dest FROM Customer C, FlightRes F
             WHERE C.Name = F.PName",
        )
        .unwrap()
    }

    #[test]
    fn delete_relation_affects_referencing_views() {
        let v = view();
        assert!(is_affected(
            &v,
            &CapabilityChange::DeleteRelation(RelName::new("Customer"))
        ));
        assert!(!is_affected(
            &v,
            &CapabilityChange::DeleteRelation(RelName::new("Tour"))
        ));
    }

    #[test]
    fn delete_attribute_checks_references() {
        let v = view();
        assert!(is_affected(
            &v,
            &CapabilityChange::DeleteAttribute(AttrRef::new("FlightRes", "PName"))
        ));
        // Airline exists in FlightRes but the view never touches it.
        assert!(!is_affected(
            &v,
            &CapabilityChange::DeleteAttribute(AttrRef::new("FlightRes", "Airline"))
        ));
    }

    #[test]
    fn adds_never_affect() {
        let v = view();
        assert!(!is_affected(
            &v,
            &CapabilityChange::AddRelation(RelationDescription::new("IS9", "New", vec![]))
        ));
        assert!(!is_affected(
            &v,
            &CapabilityChange::AddAttribute {
                relation: RelName::new("Customer"),
                attr: AttributeDef::new("Fax", DataType::Str),
            }
        ));
    }

    #[test]
    fn renames_affect_referencing_views() {
        let v = view();
        assert!(is_affected(
            &v,
            &CapabilityChange::RenameRelation {
                from: RelName::new("Customer"),
                to: RelName::new("Client"),
            }
        ));
        assert!(is_affected(
            &v,
            &CapabilityChange::RenameAttribute {
                from: AttrRef::new("Customer", "Name"),
                to: AttrName::new("FullName"),
            }
        ));
    }

    #[test]
    fn affected_views_filters() {
        let v1 = view();
        let v2 = parse_view("CREATE VIEW W AS SELECT T.TourName FROM Tour T").unwrap();
        let hits = affected_views(
            &[v1, v2],
            &CapabilityChange::DeleteRelation(RelName::new("Customer")),
        );
        assert_eq!(hits, vec![0]);
    }
}
