//! Answering queries using (materialized) views — the classical problem
//! the paper builds Step 6 on (§5: "This problem is similar to the
//! problem of answering queries using views which was extensively
//! studied in the database community \[6, 13\]") and contrasts itself
//! against in §6: Levy et al. rewrite a query into an *equivalent* one
//! over view definitions, while EVE deliberately relaxes equivalence.
//!
//! This module implements the classical, equivalence-preserving case for
//! conjunctive SELECT-FROM-WHERE queries — the \[6, 13\] baseline:
//! [`answer_using_view`] rewrites a query to scan a single view when the
//! view *subsumes* the query:
//!
//! * the view joins exactly the query's relations (same FROM set);
//! * every view condition appears among the query's conditions (the view
//!   filters no more than the query);
//! * every attribute the query projects — and every attribute of the
//!   query's *residual* conditions — is preserved in the view's output.
//!
//! The residual conditions (query conditions absent from the view) are
//! lifted onto the view's output columns. The result is an equivalent
//! query over the view, which [`crate::eval::evaluate_view`] can run
//! against a database containing the materialized view instead of the
//! base relations.

use eve_esql::{CondItem, EvolutionParams, FromItem, SelectItem, ViewDefinition};
use eve_relational::{AttrRef, Clause, RelName, ScalarExpr};
use std::collections::BTreeSet;

/// Try to rewrite `query` as an equivalent scan over `view`.
///
/// Returns the rewritten query (FROM clause = the view, treated as a
/// relation named `view.name`; SELECT/WHERE lifted onto the view's
/// output columns), or `None` when the view does not subsume the query.
pub fn answer_using_view(query: &ViewDefinition, view: &ViewDefinition) -> Option<ViewDefinition> {
    // Same relation set.
    let q_rels: BTreeSet<RelName> = query.relations().into_iter().collect();
    let v_rels: BTreeSet<RelName> = view.relations().into_iter().collect();
    if q_rels != v_rels {
        return None;
    }

    // View conditions ⊆ query conditions (normalised clause sets).
    let q_conds: BTreeSet<Clause> = query
        .conditions
        .iter()
        .map(|c| c.clause.normalized())
        .collect();
    let v_conds: BTreeSet<Clause> = view
        .conditions
        .iter()
        .map(|c| c.clause.normalized())
        .collect();
    if !v_conds.is_subset(&q_conds) {
        return None;
    }
    let residual: Vec<Clause> = q_conds.difference(&v_conds).cloned().collect();

    // Lift an expression onto the view's output columns: every base
    // attribute it references must be preserved (appear as a bare
    // SELECT item of the view).
    let view_rel = RelName::new(view.name.clone());
    let names = view.interface_names();
    let lift = |expr: &ScalarExpr| -> Option<ScalarExpr> {
        let mut lifted = expr.clone();
        for attr in expr.attrs() {
            let pos = view
                .select
                .iter()
                .position(|item| item.expr == ScalarExpr::Attr(attr.clone()))?;
            let out = AttrRef::new(view_rel.clone(), names[pos].clone());
            lifted = lifted.substitute(&attr, &ScalarExpr::Attr(out));
        }
        Some(lifted)
    };

    // SELECT list.
    let mut select = Vec::new();
    for item in &query.select {
        let expr = lift(&item.expr)?;
        // Preserve the query's exported column names.
        let alias = item.alias.clone().or_else(|| item.output_name());
        select.push(SelectItem {
            expr,
            alias,
            params: item.params,
        });
    }

    // Residual WHERE.
    let mut conditions = Vec::new();
    for clause in residual {
        let lifted = Clause {
            lhs: lift(&clause.lhs)?,
            op: clause.op,
            rhs: lift(&clause.rhs)?,
        };
        conditions.push(CondItem {
            clause: lifted,
            params: EvolutionParams::DEFAULT,
        });
    }

    Some(ViewDefinition {
        name: format!("{}_over_{}", query.name, view.name),
        interface: query.interface.clone(),
        extent: query.extent,
        select,
        from: vec![FromItem {
            relation: view_rel,
            alias: None,
            params: EvolutionParams::DEFAULT,
        }],
        conditions,
    })
}

/// Rewrite `query` over the first subsuming view of `views` (in order).
pub fn answer_using_views<'a>(
    query: &ViewDefinition,
    views: impl IntoIterator<Item = &'a ViewDefinition>,
) -> Option<ViewDefinition> {
    views.into_iter().find_map(|v| answer_using_view(query, v))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::evaluate_view;
    use eve_esql::parse_view;
    use eve_relational::{
        AttributeDef, DataType, Database, FuncRegistry, Relation, Schema, Tuple, Value,
    };

    fn db() -> Database {
        let mut db = Database::new();
        let name = RelName::new("Customer");
        let schema = Schema::of_relation(
            &name,
            &[
                AttributeDef::new("Name", DataType::Str),
                AttributeDef::new("Age", DataType::Int),
                AttributeDef::new("City", DataType::Str),
            ],
        );
        db.put(
            name,
            Relation::from_rows(
                schema,
                [
                    ("ann", 30, "Detroit"),
                    ("bob", 10, "Detroit"),
                    ("cat", 44, "Boston"),
                ]
                .map(|(n, a, c)| Tuple::new(vec![Value::str(n), Value::Int(a), Value::str(c)])),
            )
            .unwrap(),
        );
        db
    }

    /// Materialize `view` into the database under its own name, then
    /// evaluate the rewritten query against it and compare with direct
    /// evaluation.
    fn check_equivalent(query_src: &str, view_src: &str) {
        let funcs = FuncRegistry::new();
        let query = parse_view(query_src).unwrap();
        let view = parse_view(view_src).unwrap();
        let rewritten =
            answer_using_view(&query, &view).unwrap_or_else(|| panic!("view should subsume query"));

        let mut database = db();
        // Materialize the view as a base relation named after it.
        let extent = evaluate_view(&view, &database, &funcs).unwrap();
        // Re-key the columns as a plain relation (evaluate_view already
        // names them view.<iface>).
        database.put(RelName::new(view.name.clone()), extent);

        let via_view = evaluate_view(&rewritten, &database, &funcs).unwrap();
        let direct = evaluate_view(&query, &database, &funcs).unwrap();
        assert_eq!(via_view.row_set(), direct.row_set(), "{rewritten}");
    }

    #[test]
    fn exact_match_rewrites() {
        check_equivalent(
            "CREATE VIEW Q AS SELECT C.Name FROM Customer C WHERE C.Age > 18",
            "CREATE VIEW V AS SELECT C.Name, C.Age FROM Customer C WHERE C.Age > 18",
        );
    }

    #[test]
    fn residual_condition_lifts() {
        check_equivalent(
            "CREATE VIEW Q AS SELECT C.Name FROM Customer C WHERE (C.Age > 18) AND (C.City = 'Detroit')",
            "CREATE VIEW V AS SELECT C.Name, C.Age, C.City FROM Customer C WHERE C.Age > 18",
        );
    }

    #[test]
    fn unfiltered_view_answers_filtered_query() {
        check_equivalent(
            "CREATE VIEW Q AS SELECT C.Name, C.Age FROM Customer C WHERE C.Age >= 30",
            "CREATE VIEW V AS SELECT C.Name, C.Age FROM Customer C",
        );
    }

    #[test]
    fn view_with_extra_filter_rejected() {
        // The view filters more than the query — not equivalent.
        let query = parse_view("CREATE VIEW Q AS SELECT C.Name FROM Customer C").unwrap();
        let view =
            parse_view("CREATE VIEW V AS SELECT C.Name FROM Customer C WHERE C.Age > 18").unwrap();
        assert!(answer_using_view(&query, &view).is_none());
    }

    #[test]
    fn missing_projection_rejected() {
        // The query needs Age, the view only exports Name.
        let query = parse_view("CREATE VIEW Q AS SELECT C.Age FROM Customer C").unwrap();
        let view = parse_view("CREATE VIEW V AS SELECT C.Name FROM Customer C").unwrap();
        assert!(answer_using_view(&query, &view).is_none());
    }

    #[test]
    fn residual_over_unpreserved_attr_rejected() {
        let query =
            parse_view("CREATE VIEW Q AS SELECT C.Name FROM Customer C WHERE C.City = 'Boston'")
                .unwrap();
        let view = parse_view("CREATE VIEW V AS SELECT C.Name FROM Customer C").unwrap();
        assert!(answer_using_view(&query, &view).is_none());
    }

    #[test]
    fn different_from_set_rejected() {
        let query = parse_view("CREATE VIEW Q AS SELECT T.x FROM T").unwrap();
        let view = parse_view("CREATE VIEW V AS SELECT C.Name FROM Customer C").unwrap();
        assert!(answer_using_view(&query, &view).is_none());
    }

    #[test]
    fn first_subsuming_view_wins() {
        let query = parse_view("CREATE VIEW Q AS SELECT C.Name FROM Customer C").unwrap();
        let narrow =
            parse_view("CREATE VIEW V1 AS SELECT C.Name FROM Customer C WHERE C.Age > 18").unwrap();
        let wide = parse_view("CREATE VIEW V2 AS SELECT C.Name FROM Customer C").unwrap();
        let rewritten = answer_using_views(&query, [&narrow, &wide]).unwrap();
        assert!(rewritten.uses_relation(&RelName::new("V2")));
    }
}
