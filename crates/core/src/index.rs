//! A per-change index over the meta knowledge base.
//!
//! Every step of the CVS algorithm consults the MKB: R-mapping walks the
//! join-constraint hypergraph `H(MKB)` (Def. 2), R-replacement looks up
//! function-of covers and the capability-filtered hypergraph `H'(MKB')`
//! (Def. 3), and extent inference scans partial/complete constraints.
//! Before this module, each synchronization call rebuilt all of that
//! from scratch — once **per view** — even though the underlying MKB
//! only changes once per capability change.
//!
//! [`MkbIndex`] hoists those derived structures out of the per-view
//! loop: one index serves every affected view of one capability change,
//! threaded by reference through mapping, replacement, rewriting, extent
//! inference, and attribute deletion. Synchronizing `n` affected views
//! touches the MKB-derived state `O(1)` times instead of `O(n)`.
//!
//! The derived structures themselves are **delta-maintained, not rebuilt
//! from scratch on every change**: the index holds them behind `Arc`s
//! and is normally assembled by [`MkbIndex::from_cores`] from two
//! [`IndexCore`]s (the pre- and post-change derived state), where the
//! post core was produced by [`IndexCore::apply_delta`] — an `O(delta)`
//! patch that rebuilds only the touched component and constraint
//! buckets and `Arc`-shares everything else. [`MkbIndex::new`] remains
//! the from-scratch constructor (one-shot/what-if uses, and the rebuild
//! oracle the equivalence property suite compares against).
//!
//! The index *borrows* both MKBs (`MkbIndex<'m>`), so constructing a
//! throwaway index never clones a knowledge base.
//!
//! ## Per-change enumeration cache
//!
//! Beyond the precomputed maps, the index carries a **memoization layer**
//! for the expensive graph searches that R-replacement repeats across
//! views: connection-tree enumeration over `H'(MKB')`
//! ([`MkbIndex::enumerate_trees`]), greedy single-tree connection
//! ([`MkbIndex::connect_tree`]), viable-cover filtering
//! ([`MkbIndex::viable_covers`]) and `Min(H_R)` survival sets
//! ([`MkbIndex::survival_set`]). Views registered against the same
//! information space overwhelmingly share terminal sets (they draw on the
//! same relations), so under one `delete-relation R` the second view
//! asking for the trees spanning `{S, T, U}` hits the memo instead of
//! re-walking `H'`.
//!
//! The memo tables are sharded `RwLock<HashMap>`s: the hot path is a
//! short shared-read lock per lookup, writers only contend on their own
//! shard, and a compute race between two workers is benign because every
//! memoized function is a pure, deterministic function of its key — both
//! racers produce the identical value and first-write-wins. Cached or
//! not, callers observe byte-identical results, which is what lets the
//! parallel synchronizer share one index across workers.

use crate::delta::{build_covers, build_pcs, pair_key, IndexCore};
use crate::options::CvsOptions;
use crate::replacement::CoverChoice;
use eve_hypergraph::{ConnectionTree, GraphDelta, Hypergraph, RelId, RelSet};
use eve_misd::{MetaKnowledgeBase, PartialComplete};
use eve_relational::{AttrRef, RelName};
use std::collections::hash_map::RandomState;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::hash::{BuildHasher, Hash};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Shard count for the memo tables. Small and fixed: the tables are
/// per-change (short-lived) and the worker pool is small, so a handful of
/// shards already makes write contention negligible.
const MEMO_SHARDS: usize = 8;

/// A sharded, read-mostly memo table.
///
/// `get_or_insert_with` takes a shared-read lock on one shard for the
/// lookup and only upgrades to a write lock on a miss. Two threads may
/// race to compute the same key; the memoized functions are
/// deterministic, so both compute the identical value and the first
/// write wins — the loser's copy is dropped, never observed.
struct Memo<K, V> {
    shards: [RwLock<HashMap<K, V>>; MEMO_SHARDS],
    hasher: RandomState,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<K: Eq + Hash, V: Clone> Memo<K, V> {
    fn new() -> Self {
        Memo {
            shards: std::array::from_fn(|_| RwLock::new(HashMap::new())),
            hasher: RandomState::new(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &K) -> &RwLock<HashMap<K, V>> {
        let h = self.hasher.hash_one(key) as usize;
        &self.shards[h % MEMO_SHARDS]
    }

    fn get_or_insert_with(&self, key: K, compute: impl FnOnce() -> V) -> V {
        let shard = self.shard(&key);
        // A poisoned lock means a sibling worker panicked mid-insert; the
        // map holds only fully-inserted deterministic values, so
        // recovering the guard is safe.
        if let Some(v) = shard.read().unwrap_or_else(|e| e.into_inner()).get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return v.clone();
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let v = compute();
        shard
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .entry(key)
            .or_insert(v)
            .clone()
    }

    /// Fetch the entry for `key` without touching the hit/miss
    /// counters, inserting `default()` on first sight. Used by the
    /// prefix-serving tree cache, which accounts hits at the prefix
    /// level (a present-but-too-short prefix is a miss, not a hit).
    fn entry_uncounted(&self, key: K, default: impl FnOnce() -> V) -> V {
        let shard = self.shard(&key);
        if let Some(v) = shard.read().unwrap_or_else(|e| e.into_inner()).get(&key) {
            return v.clone();
        }
        let v = default();
        shard
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .entry(key)
            .or_insert(v)
            .clone()
    }

    fn count_hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    fn count_miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Drop every entry whose key fails `keep`. Used when a memo table
    /// is carried across a capability change: entries touching the
    /// changed region are invalidated, the rest stay warm.
    fn retain(&self, mut keep: impl FnMut(&K) -> bool) {
        for shard in &self.shards {
            shard
                .write()
                .unwrap_or_else(|e| e.into_inner())
                .retain(|k, _| keep(k));
        }
    }

    /// Zero the hit/miss counters, so a carried table reports only the
    /// activity of the change it now serves.
    fn reset_stats(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }
}

impl<K, V> std::fmt::Debug for Memo<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Memo")
            .field("hits", &self.hits.load(Ordering::Relaxed))
            .field("misses", &self.misses.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

/// Hit/miss counters aggregated over all of an index's memo tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from a memo table.
    pub hits: u64,
    /// Lookups that had to compute (and then populated the memo).
    pub misses: u64,
}

/// Memo key for tree searches: the terminal set as an interned-id
/// bitset over `H'(MKB')` (a 32-byte inline value for graphs of ≤ 256
/// relations — probing the memo hashes four words instead of a
/// `Vec<RelName>` of cloned strings), plus the hop bound that shapes
/// the search. The *tree limit* is deliberately not part of the key:
/// tree enumeration is a deterministic stream, so one cached prefix
/// serves every requested limit (see [`TreePrefix`]).
///
/// Terminal sets containing a relation that is not a vertex of
/// `H'(MKB')` have no interned key; every graph search over such a set
/// deterministically yields nothing, so those calls bypass the memo and
/// return the empty answer directly.
type TreeKey = (RelSet, usize);

/// A growable cached prefix of the deterministic connection-tree stream
/// for one `(terminal set, hop bound)` key.
///
/// [`eve_hypergraph::ConnectionTreeIter`] yields trees in a fixed
/// order, so the first `n` trees requested by one view are a prefix of
/// the first `m ≥ n` trees requested by another — the cache stores the
/// longest prefix seen so far and serves any shorter request by
/// truncation, extending (by re-running the iterator, which is pure)
/// only when a longer prefix is demanded. `exhausted` records that the
/// stream ended, making the prefix the complete answer for every limit.
#[derive(Debug, Default)]
struct TreePrefix {
    trees: Arc<Vec<ConnectionTree>>,
    exhausted: bool,
}

impl TreePrefix {
    /// Can this prefix answer a request for `limit` trees exactly?
    fn serves(&self, limit: usize) -> bool {
        self.exhausted || self.trees.len() >= limit
    }

    /// The answer for `limit` trees. Shares the stored allocation
    /// whenever the stored prefix *is* the answer.
    fn serve(&self, limit: usize) -> Arc<Vec<ConnectionTree>> {
        if self.trees.len() <= limit {
            Arc::clone(&self.trees)
        } else {
            Arc::new(self.trees[..limit].to_vec())
        }
    }
}

/// Precomputed, read-only derived state for one capability change.
///
/// Built by [`MkbIndex::new`] from the pre-change MKB and the evolved
/// MKB'. All accessors are cheap lookups; nothing is recomputed after
/// construction.
#[derive(Debug)]
pub struct MkbIndex<'m> {
    mkb: &'m MetaKnowledgeBase,
    mkb_prime: &'m MetaKnowledgeBase,
    /// The full join-constraint hypergraph `H(MKB)` over the pre-change
    /// MKB. `Arc`-shared with the [`IndexCore`] chain under delta
    /// maintenance.
    h: Arc<Hypergraph>,
    /// Connected components of `h`, indexed by `h`'s precomputed
    /// per-vertex component number (no name→component map needed: the
    /// interner resolves a relation to its component in two array
    /// lookups). Each component is individually `Arc`ed so delta
    /// maintenance can reuse untouched ones across changes.
    components: Arc<Vec<Arc<Hypergraph>>>,
    /// `H'(MKB')`: the post-change hypergraph, restricted to join-capable
    /// relations when the options say capabilities must be respected.
    h_prime: Arc<Hypergraph>,
    /// Function-of covers grouped by the attribute they re-derive. Raw
    /// (unfiltered) covers in MKB declaration order; consumers filter by
    /// target relation / `h_prime` membership as their definitions require.
    covers: Arc<BTreeMap<AttrRef, Vec<CoverChoice>>>,
    /// Partial/complete constraints keyed by the (unordered) relation pair
    /// they relate; each bucket preserves MKB declaration order. Owned
    /// (not borrowed from the MKB) so the buckets can be `Arc`-shared
    /// across versions.
    pcs_by_pair: Arc<BTreeMap<(RelName, RelName), Vec<PartialComplete>>>,
    /// Dense ids for the cover-target attributes (sorted `covers` key
    /// order), so viable-cover memo keys are a pair of `u32`s instead of
    /// a cloned `AttrRef` + `RelName`.
    cover_attr_ids: HashMap<AttrRef, u32>,
    /// Memoized prefixes of the connection-tree stream over `h_prime`,
    /// keyed by `(terminal set, hop bound)`; any requested tree limit
    /// is served from (or extends) the cached prefix.
    trees: Memo<TreeKey, Arc<RwLock<TreePrefix>>>,
    /// Memoized pairwise shortest-path distances (in join-constraint
    /// hops) over `h_prime`, keyed by the unordered interned-id pair.
    /// `None` (disconnected) is cached too. Feeds the admissible lower
    /// bounds of the budgeted replacement search.
    distances: Memo<(RelId, RelId), Option<usize>>,
    /// Memoized [`Hypergraph::connect_tree`] over `h_prime`, keyed by
    /// `(terminal id set, hop bound)`. Negative results (`None`:
    /// disconnected terminals) are cached too.
    connects: Memo<(RelSet, usize), Option<Arc<ConnectionTree>>>,
    /// Memoized viable-cover lists, keyed by `(cover-attribute id,
    /// deleted relation id)` — the Def. 3 (IV) filter of `covers`
    /// against `h_prime`.
    viable: Memo<(u32, RelId), Arc<Vec<CoverChoice>>>,
    /// Memoized `Min(H_R)` survival sets, keyed by `(Min(H_R) relation
    /// id set, deleted relation id)` over `H(MKB)`'s interner.
    survivors: Memo<(RelSet, RelId), Arc<BTreeSet<RelName>>>,
    /// When false, every memoized accessor computes directly (used by the
    /// benches to A/B the cache against PR 1's plain indexed path).
    cache_enabled: bool,
}

/// Warm memo tables extracted from a spent [`MkbIndex`] so the next
/// change's index can start from them instead of cold
/// ([`MkbIndex::into_carry`] / [`MkbIndex::from_cores`]).
///
/// Only the `H'(MKB')`-keyed tables (trees, distances, connects) are
/// carried — and only when the change left `H'` intact
/// (`add-attribute`) or touched it attribute-locally
/// (`delete-attribute`/`rename-attribute`, where
/// [`MemoCarry::retained`] evicts every entry whose component the
/// change touched). Vertex-level changes re-intern the graph, so
/// nothing survives them.
#[derive(Debug)]
pub struct MemoCarry {
    /// The `H'` the carried tables were computed over (interner owner of
    /// every `RelSet`/`RelId` key).
    h_prime: Arc<Hypergraph>,
    trees: Memo<TreeKey, Arc<RwLock<TreePrefix>>>,
    distances: Memo<(RelId, RelId), Option<usize>>,
    connects: Memo<(RelSet, usize), Option<Arc<ConnectionTree>>>,
}

impl MemoCarry {
    /// Filter this carry for the change that produced `new_h_prime` from
    /// the carried `H'` (described by `delta`, the change's projection
    /// onto that graph). Returns `None` when nothing can be carried —
    /// any vertex-level change, or a vertex-set mismatch (defensive:
    /// memo keys are interned ids, which only survive an identical
    /// vertex set).
    pub(crate) fn retained(
        self,
        delta: &GraphDelta,
        new_h_prime: &Hypergraph,
    ) -> Option<MemoCarry> {
        if self.h_prime.relations() != new_h_prime.relations() {
            return None;
        }
        let attr = match delta {
            // `H'` unchanged: every entry is still exact.
            GraphDelta::None => return Some(self),
            GraphDelta::RemoveAttrEdges(a) => a,
            GraphDelta::RenameAttr { from, .. } => from,
            // Vertex-level change: the interner (and thus every key)
            // is invalidated wholesale.
            _ => return None,
        };
        // Cached answers embed join-constraint values, so every entry
        // whose component contains an edge mentioning `attr` is stale;
        // entries confined to other components saw no edge change (a
        // capability change never adds edges) and stay warm.
        let old = &self.h_prime;
        let mut touched_comps: BTreeSet<u32> = BTreeSet::new();
        for (e, j) in old.joins().iter().enumerate() {
            if j.attrs().contains(attr) {
                let (l, _) = old.join_endpoints(e as u32);
                touched_comps.insert(old.component_index(l));
            }
        }
        if touched_comps.is_empty() {
            return Some(self);
        }
        let mut affected = old.relset();
        for v in 0..old.rel_count() {
            if touched_comps.contains(&old.component_index(v as RelId)) {
                affected.insert(v as RelId);
            }
        }
        self.distances
            .retain(|&(a, b)| !affected.contains(a) && !affected.contains(b));
        self.connects.retain(|(s, _)| !s.intersects(&affected));
        self.trees.retain(|(s, _)| !s.intersects(&affected));
        Some(self)
    }
}

impl<'m> MkbIndex<'m> {
    /// Build the index for one capability change: `mkb` is the state the
    /// views were defined against, `mkb_prime` the evolved state they must
    /// be rewritten against. For read-only uses (e.g. R-mapping outside a
    /// change), pass the same MKB for both.
    pub fn new(
        mkb: &'m MetaKnowledgeBase,
        mkb_prime: &'m MetaKnowledgeBase,
        opts: &CvsOptions,
    ) -> Self {
        let mut span = crate::telem::span("index-build");
        span.field("relations", mkb.relation_count() as u64);
        span.field("joins", mkb.joins().len() as u64);
        crate::telem::counter_add("index.builds", 1);
        crate::faults::hit("index.build");
        let h = Arc::new(Hypergraph::build(mkb));
        let components = Arc::new(h.components().into_iter().map(Arc::new).collect::<Vec<_>>());
        let h_prime = Arc::new(Hypergraph::build_filtered(mkb_prime, |desc| {
            !opts.respect_capabilities || desc.capabilities.join
        }));
        let covers = Arc::new(build_covers(mkb));
        let pcs_by_pair = Arc::new(build_pcs(mkb));
        // Covers is a BTreeMap, so enumeration assigns attribute ids in
        // ascending AttrRef order — deterministic across builds.
        let cover_attr_ids: HashMap<AttrRef, u32> = covers
            .keys()
            .enumerate()
            .map(|(i, a)| (a.clone(), i as u32))
            .collect();
        MkbIndex {
            mkb,
            mkb_prime,
            h,
            components,
            h_prime,
            covers,
            pcs_by_pair,
            cover_attr_ids,
            trees: Memo::new(),
            distances: Memo::new(),
            connects: Memo::new(),
            viable: Memo::new(),
            survivors: Memo::new(),
            cache_enabled: true,
        }
    }

    /// Assemble the index for one capability change from delta-maintained
    /// derived state: `pre` is the [`IndexCore`] of the MKB the views were
    /// defined against, `post` the core produced by
    /// [`IndexCore::apply_delta`] for the evolved MKB'. Everything is
    /// `Arc`-shared — no hypergraph build, no constraint scan.
    ///
    /// Equivalence contract: the result behaves byte-identically to
    /// `MkbIndex::new(mkb, mkb_prime, opts)` (enforced by the property
    /// suite in `tests/delta_equivalence.rs`). `carry`, when present,
    /// seeds the `H'`-keyed memo tables from the previous change's index
    /// (already filtered by [`MemoCarry::retained`]) — memoized functions
    /// are pure, so a warm start changes latency, never answers.
    pub fn from_cores(
        mkb: &'m MetaKnowledgeBase,
        mkb_prime: &'m MetaKnowledgeBase,
        pre: &IndexCore,
        post: &IndexCore,
        opts: &CvsOptions,
        carry: Option<MemoCarry>,
    ) -> Self {
        let mut span = crate::telem::span("index-from-cores");
        span.field("relations", mkb.relation_count() as u64);
        span.field("carried", carry.is_some() as u64);
        crate::telem::counter_add("index.delta_builds", 1);
        // Distinct from `index.build` (the full-rebuild path) so fault
        // plans can address delta maintenance specifically.
        crate::faults::hit("index.delta-build");
        let h_prime = if opts.respect_capabilities {
            Arc::clone(&post.h_join)
        } else {
            Arc::clone(&post.h)
        };
        let covers = Arc::clone(&pre.covers);
        let cover_attr_ids: HashMap<AttrRef, u32> = covers
            .keys()
            .enumerate()
            .map(|(i, a)| (a.clone(), i as u32))
            .collect();
        let (trees, distances, connects) = match carry {
            Some(c) => {
                debug_assert_eq!(
                    c.h_prime.relations(),
                    h_prime.relations(),
                    "carry must be pre-filtered against the new H'"
                );
                c.trees.reset_stats();
                c.distances.reset_stats();
                c.connects.reset_stats();
                (c.trees, c.distances, c.connects)
            }
            None => (Memo::new(), Memo::new(), Memo::new()),
        };
        MkbIndex {
            mkb,
            mkb_prime,
            h: Arc::clone(&pre.h),
            components: Arc::clone(&pre.components),
            h_prime,
            covers,
            pcs_by_pair: Arc::clone(&pre.pcs),
            cover_attr_ids,
            trees,
            distances,
            connects,
            viable: Memo::new(),
            survivors: Memo::new(),
            cache_enabled: true,
        }
    }

    /// Consume the index, extracting the memo tables a successor index
    /// may start warm from. The caller filters the result with
    /// [`MemoCarry::retained`] against the next change before handing it
    /// to [`MkbIndex::from_cores`].
    pub fn into_carry(self) -> MemoCarry {
        MemoCarry {
            h_prime: self.h_prime,
            trees: self.trees,
            distances: self.distances,
            connects: self.connects,
        }
    }

    /// Disable the enumeration cache: every memoized accessor computes
    /// directly, reproducing PR 1's plain indexed behaviour. For
    /// benchmarking the cache's contribution; results are identical
    /// either way (the cache memoizes deterministic functions).
    pub fn without_cache(mut self) -> Self {
        self.cache_enabled = false;
        self
    }

    /// Aggregate hit/miss counters across all memo tables.
    pub fn cache_stats(&self) -> CacheStats {
        let mut s = CacheStats::default();
        for (h, m) in [
            (&self.trees.hits, &self.trees.misses),
            (&self.distances.hits, &self.distances.misses),
            (&self.connects.hits, &self.connects.misses),
            (&self.viable.hits, &self.viable.misses),
            (&self.survivors.hits, &self.survivors.misses),
        ] {
            s.hits += h.load(Ordering::Relaxed);
            s.misses += m.load(Ordering::Relaxed);
        }
        s
    }

    /// The first `limit` connection trees spanning `terminals` in
    /// `H'(MKB')`, memoized per `(terminal set, max_path_edges)` with
    /// prefix sharing: the cache stores the longest prefix of the
    /// deterministic tree stream computed so far, serving shorter
    /// requests by truncation and extending only when a longer prefix
    /// is demanded. A request answerable from the stored prefix counts
    /// as a hit; first sight or an extension counts as a miss.
    pub fn enumerate_trees(
        &self,
        terminals: &BTreeSet<RelName>,
        limit: usize,
        max_path_edges: usize,
    ) -> Arc<Vec<ConnectionTree>> {
        self.enumerate_trees_interned(
            self.intern_terminals(terminals).as_ref(),
            terminals,
            limit,
            max_path_edges,
        )
    }

    /// [`MkbIndex::enumerate_trees`] with the terminal set already
    /// interned over `H'(MKB')` (`None` when some terminal is not a
    /// vertex). Lets the replacement stream intern each combination's
    /// terminals once instead of on every chunked re-request. `interned`
    /// must be the interning of `terminals`.
    pub(crate) fn enumerate_trees_interned(
        &self,
        interned: Option<&RelSet>,
        terminals: &BTreeSet<RelName>,
        limit: usize,
        max_path_edges: usize,
    ) -> Arc<Vec<ConnectionTree>> {
        crate::faults::hit("index.enumerate-trees");
        debug_assert_eq!(interned, self.intern_terminals(terminals).as_ref());
        let key_set = match (self.cache_enabled, interned) {
            (true, Some(k)) => k,
            // Cache off, or an absent terminal (the stream is
            // deterministically empty — nothing worth memoizing):
            // compute directly.
            _ => {
                let mut span = crate::telem::span("tree-enumeration");
                span.field("terminals", terminals.len() as u64);
                let trees = self
                    .h_prime
                    .enumerate_trees(terminals, limit, max_path_edges);
                span.field("yielded", trees.len() as u64);
                return Arc::new(trees);
            }
        };
        let key = (key_set.clone(), max_path_edges);
        let cell = self
            .trees
            .entry_uncounted(key, || Arc::new(RwLock::new(TreePrefix::default())));
        {
            let prefix = cell.read().unwrap_or_else(|e| e.into_inner());
            if prefix.serves(limit) {
                self.trees.count_hit();
                return prefix.serve(limit);
            }
        }
        self.trees.count_miss();
        let mut span = crate::telem::span("tree-enumeration");
        span.field("terminals", terminals.len() as u64);
        let mut prefix = cell.write().unwrap_or_else(|e| e.into_inner());
        if !prefix.serves(limit) {
            // Extend by re-running the pure stream from the start — the
            // iterator is deterministic, so the new prefix agrees with
            // the old one on every position it already covered.
            let mut iter = self.h_prime.tree_iter(terminals, max_path_edges);
            let mut trees = Vec::new();
            let mut exhausted = false;
            while trees.len() < limit {
                match iter.next() {
                    Some(t) => trees.push(t),
                    None => {
                        exhausted = true;
                        break;
                    }
                }
            }
            prefix.trees = Arc::new(trees);
            prefix.exhausted = exhausted;
        }
        span.field("yielded", prefix.trees.len() as u64);
        prefix.serve(limit)
    }

    /// Shortest-path distance (in join-constraint hops) between `a` and
    /// `b` in `H'(MKB')`, `None` when they are disconnected (or either
    /// is not a vertex). Memoized per unordered pair. This is the
    /// admissible lower bound used by the budgeted replacement search:
    /// any connection tree containing both relations has at least this
    /// many joins.
    pub fn pair_distance(&self, a: &RelName, b: &RelName) -> Option<usize> {
        match (self.h_prime.rel_id(a), self.h_prime.rel_id(b)) {
            (Some(a), Some(b)) => self.pair_distance_ids(a, b),
            // A non-vertex is disconnected from everything; nothing to
            // memoize.
            _ => None,
        }
    }

    /// [`MkbIndex::pair_distance`] over interned `H'(MKB')` ids — the
    /// form the replacement stream's pairwise lower-bound loop uses, so
    /// a memo probe hashes two `u32`s instead of cloning two names.
    pub(crate) fn pair_distance_ids(&self, a: RelId, b: RelId) -> Option<usize> {
        let compute = || self.h_prime.pair_distance_ids(a, b);
        if !self.cache_enabled {
            return compute();
        }
        let key = if a <= b { (a, b) } else { (b, a) };
        self.distances.get_or_insert_with(key, compute)
    }

    /// The greedy connection tree spanning `terminals` in `H'(MKB')`
    /// (`None` when disconnected), memoized per `(terminal set,
    /// max_path_edges)` — negative answers included.
    pub fn connect_tree(
        &self,
        terminals: &BTreeSet<RelName>,
        max_path_edges: usize,
    ) -> Option<Arc<ConnectionTree>> {
        let key_set = match (self.cache_enabled, self.intern_terminals(terminals)) {
            (true, Some(k)) => k,
            // Cache off, or an absent terminal (never connectable —
            // `None` without running the search).
            (false, _) => {
                return self
                    .h_prime
                    .connect_tree(terminals, max_path_edges)
                    .map(Arc::new);
            }
            (true, None) => return None,
        };
        self.connects
            .get_or_insert_with((key_set, max_path_edges), || {
                self.h_prime
                    .connect_tree(terminals, max_path_edges)
                    .map(Arc::new)
            })
    }

    /// The viable covers for `attr` under `delete-relation target`:
    /// [`MkbIndex::covers_of`] filtered to sources distinct from `target`
    /// and alive in `H'(MKB')` (Def. 3 IV). Memoized per `(attr, target)`.
    pub fn viable_covers(&self, attr: &AttrRef, target: &RelName) -> Arc<Vec<CoverChoice>> {
        let filter = || {
            Arc::new(
                self.covers_of(attr)
                    .iter()
                    .filter(|c| &c.source != target && self.h_prime.contains(&c.source))
                    .cloned()
                    .collect::<Vec<_>>(),
            )
        };
        if !self.cache_enabled {
            return filter();
        }
        match (self.cover_attr_ids.get(attr), self.h.rel_id(target)) {
            (Some(&aid), Some(tid)) => self.viable.get_or_insert_with((aid, tid), filter),
            // An attribute with no covers, or an undescribed target:
            // the filter is trivially cheap (empty or unfilterable) —
            // compute directly.
            _ => filter(),
        }
    }

    /// The relations of `Min(H_R)` that survive `delete-relation target`
    /// (Def. 3 III). Memoized per `(Min(H_R) relation set, target)` —
    /// views sharing an affected region share the survival set.
    pub fn survival_set(
        &self,
        min_relations: &BTreeSet<RelName>,
        target: &RelName,
    ) -> Arc<BTreeSet<RelName>> {
        let filter = || {
            Arc::new(
                min_relations
                    .iter()
                    .filter(|r| *r != target)
                    .cloned()
                    .collect::<BTreeSet<_>>(),
            )
        };
        if !self.cache_enabled {
            return filter();
        }
        let interned: Option<(RelSet, RelId)> = self.h.rel_id(target).and_then(|tid| {
            min_relations
                .iter()
                .map(|r| self.h.rel_id(r))
                .collect::<Option<Vec<RelId>>>()
                .map(|ids| (RelSet::from_ids(self.h.rel_count(), ids), tid))
        });
        match interned {
            Some(key) => self.survivors.get_or_insert_with(key, filter),
            // Relations outside `H(MKB)` have no ids; the filter is a
            // single pass — compute directly.
            None => filter(),
        }
    }

    /// The pre-change MKB the index was built from.
    pub fn mkb(&self) -> &'m MetaKnowledgeBase {
        self.mkb
    }

    /// The evolved MKB' the rewritings must be legal against.
    pub fn mkb_prime(&self) -> &'m MetaKnowledgeBase {
        self.mkb_prime
    }

    /// The full join-constraint hypergraph `H(MKB)` (pre-change).
    pub fn hypergraph(&self) -> &Hypergraph {
        &self.h
    }

    /// The capability-filtered post-change hypergraph `H'(MKB')` used by
    /// R-replacement (Def. 3): when `respect_capabilities` is set, only
    /// join-capable relations are vertices.
    pub fn h_prime(&self) -> &Hypergraph {
        &self.h_prime
    }

    /// The connected component of `H(MKB)` containing `rel`, or `None`
    /// when the relation is not described in the MKB. Two array lookups
    /// via the interner and the precomputed component index.
    pub fn component_of(&self, rel: &RelName) -> Option<&Hypergraph> {
        let id = self.h.rel_id(rel)?;
        Some(self.components[self.h.component_index(id) as usize].as_ref())
    }

    /// Intern a terminal set over `H'(MKB')`, or `None` when some
    /// terminal is not a vertex there (in which case every graph search
    /// over the set deterministically yields nothing).
    pub(crate) fn intern_terminals(&self, terminals: &BTreeSet<RelName>) -> Option<RelSet> {
        let mut set = self.h_prime.relset();
        for t in terminals {
            set.insert(self.h_prime.rel_id(t)?);
        }
        Some(set)
    }

    /// The interned `H'(MKB')` id of `rel`, when it is a vertex there.
    pub(crate) fn rel_id_prime(&self, rel: &RelName) -> Option<RelId> {
        self.h_prime.rel_id(rel)
    }

    /// Raw function-of covers for `attr` (declaration order), restricted
    /// to function-ofs with a single well-defined source relation.
    pub fn covers_of(&self, attr: &AttrRef) -> &[CoverChoice] {
        self.covers.get(attr).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Partial/complete constraints relating relations `a` and `b`, in
    /// either orientation, in MKB declaration order.
    pub fn pcs_between(&self, a: &RelName, b: &RelName) -> &[PartialComplete] {
        self.pcs_by_pair
            .get(&pair_key(a, b))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::travel_mkb;
    use eve_relational::AttrRef;

    #[test]
    fn index_matches_direct_mkb_lookups() {
        let mkb = travel_mkb();
        let opts = CvsOptions::default();
        let index = MkbIndex::new(&mkb, &mkb, &opts);

        // Hypergraph matches a direct build.
        assert_eq!(index.hypergraph(), &Hypergraph::build(&mkb));

        // Every described relation has a component, and the component
        // contains the relation.
        for desc in mkb.relations() {
            let comp = index
                .component_of(&desc.name)
                .expect("described => component");
            assert!(comp.contains(&desc.name));
        }
        assert!(index
            .component_of(&RelName::new("NoSuchRelation"))
            .is_none());

        // Covers mirror `covers_of` on the MKB.
        for f in mkb.function_ofs() {
            if f.source_relation().is_none() {
                continue;
            }
            let covers = index.covers_of(&f.target);
            assert!(
                covers.iter().any(|c| c.funcof_id == f.id),
                "cover {} missing from index",
                f.id
            );
        }
        assert!(index
            .covers_of(&AttrRef::new("Nowhere", "Nothing"))
            .is_empty());

        // PC buckets partition the full constraint list.
        let mut total = 0;
        for a in mkb.relations() {
            for b in mkb.relations().filter(|b| a.name <= b.name) {
                total += index.pcs_between(&a.name, &b.name).len();
            }
        }
        assert_eq!(total, mkb.pcs().len());
    }

    #[test]
    fn memo_hits_on_repeat_and_matches_uncached() {
        let mkb = travel_mkb();
        let opts = CvsOptions::default();
        let index = MkbIndex::new(&mkb, &mkb, &opts);
        let raw = MkbIndex::new(&mkb, &mkb, &opts).without_cache();

        let terminals: BTreeSet<RelName> = index
            .hypergraph()
            .relations()
            .iter()
            .take(2)
            .cloned()
            .collect();
        assert_eq!(terminals.len(), 2, "travel MKB has at least 2 relations");

        let cold = index.enumerate_trees(&terminals, 4, usize::MAX);
        let warm = index.enumerate_trees(&terminals, 4, usize::MAX);
        assert_eq!(cold, warm);
        assert_eq!(*cold, *raw.enumerate_trees(&terminals, 4, usize::MAX));
        // Second lookup was a hit; Arc is shared, not recomputed.
        assert!(Arc::ptr_eq(&cold, &warm));
        let stats = index.cache_stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        // The uncached index never counts anything.
        assert_eq!(raw.cache_stats(), CacheStats::default());

        // Different bounds are different keys.
        let narrower = index.enumerate_trees(&terminals, 1, usize::MAX);
        assert!(narrower.len() <= cold.len());

        // connect_tree caches negative answers too.
        let mut disconnected = terminals.clone();
        disconnected.insert(RelName::new("NoSuchRelation"));
        assert!(index.connect_tree(&disconnected, usize::MAX).is_none());
        assert!(index.connect_tree(&disconnected, usize::MAX).is_none());
        assert_eq!(
            index
                .connect_tree(&terminals, usize::MAX)
                .map(|t| (*t).clone()),
            raw.connect_tree(&terminals, usize::MAX)
                .map(|t| (*t).clone())
        );
    }

    #[test]
    fn tree_cache_serves_any_limit_from_one_prefix() {
        let mkb = travel_mkb();
        let opts = CvsOptions::default();
        let index = MkbIndex::new(&mkb, &mkb, &opts);
        let raw = MkbIndex::new(&mkb, &mkb, &opts).without_cache();

        let terminals: BTreeSet<RelName> = index
            .hypergraph()
            .relations()
            .iter()
            .take(2)
            .cloned()
            .collect();
        // Narrow, widen, narrow again: every answer must match a
        // cache-free enumeration at the same limit, whatever prefix the
        // cache happens to hold.
        for limit in [1usize, 3, 2, 8, 4, usize::MAX] {
            assert_eq!(
                *index.enumerate_trees(&terminals, limit, usize::MAX),
                *raw.enumerate_trees(&terminals, limit, usize::MAX),
                "limit={limit}"
            );
        }
    }

    #[test]
    fn pair_distances_match_uncached_and_cache_negatives() {
        let mkb = travel_mkb();
        let opts = CvsOptions::default();
        let index = MkbIndex::new(&mkb, &mkb, &opts);
        let raw = MkbIndex::new(&mkb, &mkb, &opts).without_cache();
        let rels: Vec<RelName> = mkb.relations().map(|d| d.name.clone()).collect();
        for a in &rels {
            for b in &rels {
                assert_eq!(index.pair_distance(a, b), raw.pair_distance(a, b));
                // Symmetric by construction.
                assert_eq!(index.pair_distance(a, b), index.pair_distance(b, a));
            }
        }
        let ghost = RelName::new("NoSuchRelation");
        assert_eq!(index.pair_distance(&rels[0], &ghost), None);
        assert_eq!(index.pair_distance(&rels[0], &ghost), None);
    }

    #[test]
    fn viable_covers_and_survival_sets_match_uncached() {
        let mkb = travel_mkb();
        let opts = CvsOptions::default();
        let index = MkbIndex::new(&mkb, &mkb, &opts);
        let raw = MkbIndex::new(&mkb, &mkb, &opts).without_cache();

        for f in mkb.function_ofs() {
            for desc in mkb.relations() {
                let cached = index.viable_covers(&f.target, &desc.name);
                assert_eq!(*cached, *raw.viable_covers(&f.target, &desc.name));
                for c in cached.iter() {
                    assert_ne!(c.source, desc.name);
                    assert!(index.h_prime().contains(&c.source));
                }
            }
        }

        let all: BTreeSet<RelName> = mkb.relations().map(|d| d.name.clone()).collect();
        for desc in mkb.relations() {
            let s = index.survival_set(&all, &desc.name);
            assert!(!s.contains(&desc.name));
            assert_eq!(s.len(), all.len() - 1);
            assert_eq!(*s, *raw.survival_set(&all, &desc.name));
        }
        // Warm pass over the same keys is all hits.
        let before = index.cache_stats();
        for desc in mkb.relations() {
            index.survival_set(&all, &desc.name);
        }
        let after = index.cache_stats();
        assert_eq!(after.misses, before.misses);
        assert!(after.hits > before.hits);
    }

    #[test]
    fn h_prime_respects_capabilities() {
        let mkb = travel_mkb();
        let respect = MkbIndex::new(&mkb, &mkb, &CvsOptions::default());
        let ignore = MkbIndex::new(
            &mkb,
            &mkb,
            &CvsOptions {
                respect_capabilities: false,
                ..CvsOptions::default()
            },
        );
        // Ignoring capabilities, every described relation is a vertex.
        assert_eq!(ignore.h_prime().relations().len(), mkb.relation_count());
        // Respecting them keeps exactly the join-capable subset.
        for desc in mkb.relations() {
            assert_eq!(
                respect.h_prime().contains(&desc.name),
                desc.capabilities.join
            );
        }
    }
}
