//! A per-change index over the meta knowledge base.
//!
//! Every step of the CVS algorithm consults the MKB: R-mapping walks the
//! join-constraint hypergraph `H(MKB)` (Def. 2), R-replacement looks up
//! function-of covers and the capability-filtered hypergraph `H'(MKB')`
//! (Def. 3), and extent inference scans partial/complete constraints.
//! Before this module, each synchronization call rebuilt all of that
//! from scratch — once **per view** — even though the underlying MKB
//! only changes once per capability change.
//!
//! [`MkbIndex`] hoists those derived structures out of the per-view
//! loop: it is built **once per capability change** (from the pre-change
//! MKB and the evolved MKB') and then threaded by reference through
//! mapping, replacement, rewriting, extent inference, and attribute
//! deletion. Synchronizing `n` affected views touches the MKB-derived
//! state `O(1)` times instead of `O(n)`.
//!
//! The index *borrows* both MKBs (`MkbIndex<'m>`), so constructing a
//! throwaway index — which the legacy non-indexed entry points do for
//! API compatibility — never clones a knowledge base.

use crate::options::CvsOptions;
use crate::replacement::CoverChoice;
use eve_hypergraph::Hypergraph;
use eve_misd::{MetaKnowledgeBase, PartialComplete};
use eve_relational::{AttrRef, RelName};
use std::collections::BTreeMap;

/// Precomputed, read-only derived state for one capability change.
///
/// Built by [`MkbIndex::new`] from the pre-change MKB and the evolved
/// MKB'. All accessors are cheap lookups; nothing is recomputed after
/// construction.
#[derive(Debug)]
pub struct MkbIndex<'m> {
    mkb: &'m MetaKnowledgeBase,
    mkb_prime: &'m MetaKnowledgeBase,
    /// The full join-constraint hypergraph `H(MKB)` over the pre-change MKB.
    h: Hypergraph,
    /// Connected components of `h`, and which component each relation is in.
    components: Vec<Hypergraph>,
    component_ids: BTreeMap<RelName, usize>,
    /// `H'(MKB')`: the post-change hypergraph, restricted to join-capable
    /// relations when the options say capabilities must be respected.
    h_prime: Hypergraph,
    /// Function-of covers grouped by the attribute they re-derive. Raw
    /// (unfiltered) covers in MKB declaration order; consumers filter by
    /// target relation / `h_prime` membership as their definitions require.
    covers: BTreeMap<AttrRef, Vec<CoverChoice>>,
    /// Partial/complete constraints keyed by the (unordered) relation pair
    /// they relate; each bucket preserves MKB declaration order.
    pcs_by_pair: BTreeMap<(RelName, RelName), Vec<&'m PartialComplete>>,
}

fn pair_key(a: &RelName, b: &RelName) -> (RelName, RelName) {
    if a <= b {
        (a.clone(), b.clone())
    } else {
        (b.clone(), a.clone())
    }
}

impl<'m> MkbIndex<'m> {
    /// Build the index for one capability change: `mkb` is the state the
    /// views were defined against, `mkb_prime` the evolved state they must
    /// be rewritten against. For read-only uses (e.g. R-mapping outside a
    /// change), pass the same MKB for both.
    pub fn new(
        mkb: &'m MetaKnowledgeBase,
        mkb_prime: &'m MetaKnowledgeBase,
        opts: &CvsOptions,
    ) -> Self {
        let h = Hypergraph::build(mkb);
        let components = h.components();
        let mut component_ids = BTreeMap::new();
        for (id, comp) in components.iter().enumerate() {
            for rel in comp.relations() {
                component_ids.insert(rel.clone(), id);
            }
        }
        let h_prime = Hypergraph::build_filtered(mkb_prime, |desc| {
            !opts.respect_capabilities || desc.capabilities.join
        });
        let mut covers: BTreeMap<AttrRef, Vec<CoverChoice>> = BTreeMap::new();
        for f in mkb.function_ofs() {
            let Some(source) = f.source_relation() else {
                continue;
            };
            covers
                .entry(f.target.clone())
                .or_default()
                .push(CoverChoice {
                    funcof_id: f.id.clone(),
                    source,
                    replacement: f.expr.clone(),
                });
        }
        let mut pcs_by_pair: BTreeMap<(RelName, RelName), Vec<&'m PartialComplete>> =
            BTreeMap::new();
        for pc in mkb.pcs() {
            pcs_by_pair
                .entry(pair_key(&pc.left.relation, &pc.right.relation))
                .or_default()
                .push(pc);
        }
        MkbIndex {
            mkb,
            mkb_prime,
            h,
            components,
            component_ids,
            h_prime,
            covers,
            pcs_by_pair,
        }
    }

    /// The pre-change MKB the index was built from.
    pub fn mkb(&self) -> &'m MetaKnowledgeBase {
        self.mkb
    }

    /// The evolved MKB' the rewritings must be legal against.
    pub fn mkb_prime(&self) -> &'m MetaKnowledgeBase {
        self.mkb_prime
    }

    /// The full join-constraint hypergraph `H(MKB)` (pre-change).
    pub fn hypergraph(&self) -> &Hypergraph {
        &self.h
    }

    /// The capability-filtered post-change hypergraph `H'(MKB')` used by
    /// R-replacement (Def. 3): when `respect_capabilities` is set, only
    /// join-capable relations are vertices.
    pub fn h_prime(&self) -> &Hypergraph {
        &self.h_prime
    }

    /// The connected component of `H(MKB)` containing `rel`, or `None`
    /// when the relation is not described in the MKB.
    pub fn component_of(&self, rel: &RelName) -> Option<&Hypergraph> {
        self.component_ids.get(rel).map(|id| &self.components[*id])
    }

    /// Raw function-of covers for `attr` (declaration order), restricted
    /// to function-ofs with a single well-defined source relation.
    pub fn covers_of(&self, attr: &AttrRef) -> &[CoverChoice] {
        self.covers.get(attr).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Partial/complete constraints relating relations `a` and `b`, in
    /// either orientation, in MKB declaration order.
    pub fn pcs_between(&self, a: &RelName, b: &RelName) -> &[&'m PartialComplete] {
        self.pcs_by_pair
            .get(&pair_key(a, b))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::travel_mkb;
    use eve_relational::AttrRef;

    #[test]
    fn index_matches_direct_mkb_lookups() {
        let mkb = travel_mkb();
        let opts = CvsOptions::default();
        let index = MkbIndex::new(&mkb, &mkb, &opts);

        // Hypergraph matches a direct build.
        assert_eq!(index.hypergraph(), &Hypergraph::build(&mkb));

        // Every described relation has a component, and the component
        // contains the relation.
        for desc in mkb.relations() {
            let comp = index
                .component_of(&desc.name)
                .expect("described => component");
            assert!(comp.contains(&desc.name));
        }
        assert!(index
            .component_of(&RelName::new("NoSuchRelation"))
            .is_none());

        // Covers mirror `covers_of` on the MKB.
        for f in mkb.function_ofs() {
            if f.source_relation().is_none() {
                continue;
            }
            let covers = index.covers_of(&f.target);
            assert!(
                covers.iter().any(|c| c.funcof_id == f.id),
                "cover {} missing from index",
                f.id
            );
        }
        assert!(index
            .covers_of(&AttrRef::new("Nowhere", "Nothing"))
            .is_empty());

        // PC buckets partition the full constraint list.
        let mut total = 0;
        for a in mkb.relations() {
            for b in mkb.relations().filter(|b| a.name <= b.name) {
                total += index.pcs_between(&a.name, &b.name).len();
            }
        }
        assert_eq!(total, mkb.pcs().len());
    }

    #[test]
    fn h_prime_respects_capabilities() {
        let mkb = travel_mkb();
        let respect = MkbIndex::new(&mkb, &mkb, &CvsOptions::default());
        let ignore = MkbIndex::new(
            &mkb,
            &mkb,
            &CvsOptions {
                respect_capabilities: false,
                ..CvsOptions::default()
            },
        );
        // Ignoring capabilities, every described relation is a vertex.
        assert_eq!(ignore.h_prime().relations().len(), mkb.relation_count());
        // Respecting them keeps exactly the join-capable subset.
        for desc in mkb.relations() {
            assert_eq!(
                respect.h_prime().contains(&desc.name),
                desc.capabilities.join
            );
        }
    }
}
