//! The **R-replacement** set (Def. 3 of the paper): candidate join
//! expressions `Max(V_{j,R})` built from `H'_R(MKB')` that can stand in
//! for the affected part `Max(V_R)` of the view.
//!
//! Each candidate must (Def. 3):
//!
//! * (I) be a selection over a join of `H'` relations along `H'` join
//!   constraints;
//! * (II) not contain `R`;
//! * (III) contain every relation and join constraint of `Min(H_R)` that
//!   survives dropping `R`;
//! * (IV) contain a **cover** — a relation `S` with a function-of
//!   constraint `F_{R.A, S.B}` *in the old MKB* — for every indispensable,
//!   replaceable attribute `A` of `R` used by the view;
//! * (V) carry `C'_Max/Min`, obtained from `C_Max/Min` by substituting
//!   `R`'s attributes with their replacements, or dropping dispensable
//!   clauses whose attributes could not be replaced.
//!
//! The full candidate set is exponential; following the minimality spirit
//! of Def. 2 we enumerate minimal connection trees (per cover
//! combination, with parallel-join-constraint variants), bounded by
//! [`CvsOptions`]. Dispensable attributes are covered *opportunistically*
//! when a cover exists — exactly what Example 10 does for `Customer.Age`
//! (dispensable, yet replaced through `F3` because `Accident-Ins` happens
//! to cover it).

use crate::error::CvsError;
use crate::index::MkbIndex;
use crate::mapping::RMapping;
use crate::options::CvsOptions;
use eve_esql::{CondItem, ViewDefinition};
use eve_hypergraph::{ConnectionTree, RelId, RelSet};
use eve_misd::JoinConstraint;
use eve_relational::{AttrRef, RelName, ScalarExpr};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::sync::Arc;

/// A chosen cover for one attribute of the dropped relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoverChoice {
    /// The function-of constraint used (e.g. `F2`).
    pub funcof_id: String,
    /// The cover relation `S`.
    pub source: RelName,
    /// The replacement expression `f(S.B)`.
    pub replacement: ScalarExpr,
}

/// One element of the R-replacement set: everything needed to rebuild the
/// view around `Max(V_{j,R})`.
#[derive(Debug, Clone, PartialEq)]
pub struct Replacement {
    /// Chosen covers: dropped attribute → cover. Attributes absent from
    /// the map had no cover; components using them were dropped (they
    /// were dispensable, or the candidate would have been rejected).
    /// Shared (`Arc`) across every candidate of one cover combination —
    /// combination-level data is combination-owned, so per-tree
    /// candidates clone a pointer, not a map.
    pub covers: Arc<BTreeMap<AttrRef, CoverChoice>>,
    /// The relations `R_1, …, R_k` of `Max(V_{j,R})`.
    pub relations: BTreeSet<RelName>,
    /// The join constraints of `Max(V_{j,R})` (surviving `Min` joins plus
    /// the connection tree).
    pub joins: Vec<JoinConstraint>,
    /// `C'_Max/Min` (Def. 3 V), with substitutions applied. Shared like
    /// [`Replacement::covers`].
    pub c_max_min: Arc<Vec<CondItem>>,
    /// Conditions of `C_Max/Min` dropped because they referenced an
    /// uncovered (dispensable) attribute of `R`. Shared like
    /// [`Replacement::covers`].
    pub dropped_conditions: Arc<Vec<CondItem>>,
}

/// How an attribute of `R` is used across the view, aggregated over all
/// components referencing it.
#[derive(Debug, Clone, Copy, Default)]
struct AttrUsage {
    /// Some indispensable component references it.
    required: bool,
    /// Some indispensable component referencing it is non-replaceable.
    frozen: bool,
    /// Some *replaceable* component references it — only then is a cover
    /// worth pulling in (non-replaceable components are never
    /// substituted; Fig. 3 semantics).
    replace_worthy: bool,
}

fn classify_attrs(view: &ViewDefinition, target: &RelName) -> BTreeMap<AttrRef, AttrUsage> {
    let mut usage: BTreeMap<AttrRef, AttrUsage> = BTreeMap::new();
    let mut note = |attr: AttrRef, dispensable: bool, replaceable: bool| {
        let u = usage.entry(attr).or_default();
        if replaceable {
            u.replace_worthy = true;
        }
        if !dispensable {
            u.required = true;
            if !replaceable {
                u.frozen = true;
            }
        }
    };
    for item in &view.select {
        for attr in item.expr.attrs() {
            if &attr.relation == target {
                note(attr, item.params.dispensable, item.params.replaceable);
            }
        }
    }
    for cond in &view.conditions {
        for attr in cond.clause.attrs() {
            if &attr.relation == target {
                note(attr, cond.params.dispensable, cond.params.replaceable);
            }
        }
    }
    usage
}

/// Compute the R-replacement set for `view` under `delete-relation R`
/// (where `R = rm.target`), against a prebuilt [`MkbIndex`].
///
/// Covers come from the index's precomputed function-of map (looked up
/// in the **old** MKB, per Def. 3 IV) and `H'(MKB')` is the index's
/// cached capability-filtered hypergraph — nothing MKB-derived is
/// recomputed per view. Connection-tree enumeration, viable-cover
/// filtering and survival sets all go through the index's per-change
/// memo tables, so views sharing terminal sets reuse each other's
/// graph searches.
pub fn compute_replacements_indexed(
    view: &ViewDefinition,
    rm: &RMapping,
    index: &MkbIndex<'_>,
    opts: &CvsOptions,
) -> Result<Vec<Replacement>, CvsError> {
    let mut stream = ReplacementStream::new(view, rm, index, opts, usize::MAX)?;
    let mut out = Vec::new();
    while let Some(rep) = stream.next_candidate(&mut |_| false) {
        out.push(rep);
    }
    // Same single accumulation path as the budgeted search: counters
    // are read out of the stream, never counted in parallel.
    if crate::telem::enabled() && stream.disconnected_combos() > 0 {
        crate::telem::counter_add(
            "search.disconnected_combos",
            stream.disconnected_combos() as u64,
        );
    }
    if out.is_empty() {
        return Err(if stream.any_disconnected() {
            CvsError::Disconnected
        } else {
            CvsError::NoLegalRewriting
        });
    }
    Ok(out)
}

/// Admissible lower bounds on every candidate a cover combination can
/// still produce, computed *before* its connection trees are enumerated.
///
/// Each field is component-wise ≤ the corresponding quantity of any real
/// candidate from the combination, so a search that compares these
/// bounds against its current worst kept candidate can discard the whole
/// combination — trees, assembly, costing and all — without ever missing
/// a better rewriting (see DESIGN.md, "Budgeted rewriting search").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CandidateBound {
    /// ≤ `replacement.relations.len()` of any candidate. Every candidate
    /// contains all terminals, and a tree spanning two relations at
    /// shortest-path distance `d` touches ≥ `d + 1` relations.
    pub min_relations: usize,
    /// ≤ `replacement.joins.len()`: the surviving `Min` joins are always
    /// included, a tree over `t` terminals has ≥ `t − 1` edges, and ≥
    /// the largest pairwise shortest-path distance.
    pub min_joins: usize,
    /// ≤ the number of candidate relations outside the view's current
    /// FROM clause (terminals not already in FROM must be joined in).
    pub min_extra_relations: usize,
    /// ≤ the number of dropped conditions: Def. 3 (V) drops are decided
    /// per combination, before any tree is chosen, and assembly can only
    /// drop more.
    pub min_dropped_conditions: usize,
}

/// A cover combination, prepared for lazy expansion.
#[derive(Debug)]
struct PreparedCombo {
    covers: Arc<BTreeMap<AttrRef, CoverChoice>>,
    terminals: BTreeSet<RelName>,
    /// `terminals` interned over `H'(MKB')`, computed once at stream
    /// construction (`None` when some terminal is not a vertex there) —
    /// every chunked tree re-request probes the memo with this key
    /// instead of re-hashing relation names.
    terminal_key: Option<RelSet>,
    /// Some terminal pair is provably unreachable in `H'` (memoized
    /// pairwise shortest paths): tree enumeration would come back empty,
    /// so skip it and record the disconnection directly.
    provably_disconnected: bool,
    /// Hoisted Def. 3 (V) rewrite of `C_Max/Min` — it only depends on the
    /// cover combination, not on the tree. `None` means a required
    /// condition survives uncovered: no tree of this combination can
    /// yield a candidate.
    cmm: Option<(Vec<CondItem>, Vec<CondItem>)>,
    bound: CandidateBound,
}

/// The combination currently being expanded tree-by-tree.
#[derive(Debug)]
struct ActiveCombo {
    /// Ordinal of the combination, part of the duplicate key: distinct
    /// combinations have pairwise-distinct `covers` maps (each is a
    /// distinct choice vector over per-attribute options with unique
    /// function-of ids), so two equal candidates always share a
    /// combination.
    ord: u32,
    covers: Arc<BTreeMap<AttrRef, CoverChoice>>,
    trees: Arc<Vec<ConnectionTree>>,
    tree_pos: usize,
    c_max_min: Arc<Vec<CondItem>>,
    dropped_conditions: Arc<Vec<CondItem>>,
}

/// Lazy generator over the (cover combination × connection tree) choice
/// space of Def. 3.
///
/// Candidates come out in exactly the order the eager implementation
/// materialised them (combination order, then tree order within a
/// combination), so draining the stream reproduces the legacy
/// R-replacement list verbatim. The caller may additionally:
///
/// * skip a whole combination via the `prune_combo` callback of
///   [`ReplacementStream::next_candidate`], consulted with the
///   combination's [`CandidateBound`] before its trees are enumerated;
/// * bound the total number of trees enumerated (`max_trees`), after
///   which the stream ends and reports
///   [`ReplacementStream::tree_budget_exhausted`].
pub(crate) struct ReplacementStream<'a, 'm> {
    index: &'a MkbIndex<'m>,
    opts: &'a CvsOptions,
    survivors: Arc<BTreeSet<RelName>>,
    /// `survivors` interned over `H'(MKB')`, computed once — every
    /// candidate's relation set is `tree ∪ survivors`, so its interned
    /// key is built by adding the tree's few relations to this base
    /// instead of re-hashing the merged set.
    survivor_key: Option<RelSet>,
    surviving_joins: Vec<JoinConstraint>,
    combos: Vec<PreparedCombo>,
    combo_idx: usize,
    current: Option<ActiveCombo>,
    /// Duplicate filter over interned candidate identities:
    /// `(combination ordinal, relation bitset over H', join-id rank
    /// sequence)`. Candidate equality reduces to this key — covers and
    /// `C'_Max/Min` are combination-level, relations and joins are fully
    /// captured by the bitset and the rank sequence — so the legacy
    /// deep-equality scan over every emitted `Replacement` collapses to
    /// one hash probe, with no retained clones.
    seen: HashSet<(u32, RelSet, Vec<u32>)>,
    /// Join-constraint id → dense rank, grown on first sight.
    join_rank: HashMap<String, u32>,
    /// Deep-equality fallback for candidates whose relations do not all
    /// intern over `H'` (unreachable in practice: every emitted
    /// candidate's relations are `H'` vertices). Internability is a
    /// function of candidate content, so the two filters never need to
    /// compare across each other.
    emitted_fallback: Vec<Replacement>,
    max_trees: usize,
    trees_enumerated: usize,
    combos_pruned: usize,
    disconnected_combos: usize,
    any_disconnected: bool,
    tree_budget_exhausted: bool,
}

impl<'a, 'm> ReplacementStream<'a, 'm> {
    /// Classify the view's use of `R`, resolve covers and prepare the
    /// cover combinations. Fails eagerly with the same classification
    /// errors the eager implementation raised
    /// ([`CvsError::IndispensableNotReplaceable`], [`CvsError::NoCover`]).
    pub(crate) fn new(
        view: &ViewDefinition,
        rm: &'a RMapping,
        index: &'a MkbIndex<'m>,
        opts: &'a CvsOptions,
        max_trees: usize,
    ) -> Result<Self, CvsError> {
        let target = &rm.target;

        // --- attribute classification & cover lookup (Def. 3 IV) -------
        let usage = classify_attrs(view, target);
        // Frozen attributes make the view incurable (P4).
        for (attr, u) in &usage {
            if u.frozen {
                return Err(CvsError::IndispensableNotReplaceable {
                    component: attr.to_string(),
                });
            }
        }

        // Per attribute: the list of viable covers (source relation alive
        // in H' and distinct from R). Attributes used only by
        // non-replaceable components never take a cover — those
        // components can only be kept (impossible once R is gone) or
        // dropped.
        let mut cover_options: Vec<(AttrRef, Vec<CoverChoice>, bool)> = Vec::new();
        for (attr, u) in &usage {
            let covers: Vec<CoverChoice> = if u.replace_worthy {
                // Memoized Def. 3 (IV) filter: source distinct from `R`
                // and alive in `H'`.
                index.viable_covers(attr, target).to_vec()
            } else {
                Vec::new()
            };
            if u.required && covers.is_empty() {
                return Err(CvsError::NoCover(attr.clone()));
            }
            if !covers.is_empty() {
                cover_options.push((attr.clone(), covers, u.required));
            }
        }

        // --- enumerate cover combinations -------------------------------
        // For required attributes every option is a cover; for dispensable
        // ones we also allow "no cover" (drop the components), tried last
        // so opportunistic covering is preferred.
        let mut combinations: Vec<BTreeMap<AttrRef, CoverChoice>> = vec![BTreeMap::new()];
        for (attr, covers, required) in &cover_options {
            let mut next = Vec::new();
            for combo in &combinations {
                for c in covers {
                    let mut combo = combo.clone();
                    combo.insert(attr.clone(), c.clone());
                    next.push(combo);
                    if next.len() >= opts.max_cover_combinations {
                        break;
                    }
                }
                if !required && next.len() < opts.max_cover_combinations {
                    next.push(combo.clone()); // the "leave uncovered" branch
                }
                if next.len() >= opts.max_cover_combinations {
                    break;
                }
            }
            combinations = next;
        }

        let survivors = index.survival_set(&rm.max_relations, target);
        let surviving_joins = rm.surviving_joins();
        // FROM minus the dropped relation, for the extra-relations bound.
        let from_rels: BTreeSet<RelName> = view
            .from
            .iter()
            .map(|f| f.relation.clone())
            .filter(|r| r != target)
            .collect();

        let combos = combinations
            .into_iter()
            .map(|covers| {
                let mut terminals: BTreeSet<RelName> = (*survivors).clone();
                terminals.extend(covers.values().map(|c| c.source.clone()));
                // Intern once; the pairwise loop and every chunked tree
                // request below run on ids.
                let terminal_ids: Vec<Option<RelId>> =
                    terminals.iter().map(|t| index.rel_id_prime(t)).collect();
                let terminal_key: Option<RelSet> = index.intern_terminals(&terminals);

                // Pairwise reachability and diameter over the terminals,
                // through the index's memoized shortest paths. A terminal
                // that is not a vertex of `H'` is unreachable from
                // everything, exactly as the legacy name-keyed lookup
                // reported.
                let mut provably_disconnected = false;
                let mut max_dist = 0usize;
                'pairs: for i in 0..terminal_ids.len() {
                    for j in i + 1..terminal_ids.len() {
                        let d = match (terminal_ids[i], terminal_ids[j]) {
                            (Some(a), Some(b)) => index.pair_distance_ids(a, b),
                            _ => None,
                        };
                        match d {
                            None => {
                                provably_disconnected = true;
                                break 'pairs;
                            }
                            Some(d) => max_dist = max_dist.max(d),
                        }
                    }
                }

                let cmm = rewrite_c_max_min(rm, &covers, target);
                let covers = Arc::new(covers);
                let t = terminals.len();
                let bound = CandidateBound {
                    min_relations: if t == 0 { 0 } else { t.max(max_dist + 1) },
                    min_joins: surviving_joins.len().max(t.saturating_sub(1)).max(max_dist),
                    min_extra_relations: terminals
                        .iter()
                        .filter(|r| !from_rels.contains(*r))
                        .count(),
                    min_dropped_conditions: cmm.as_ref().map(|(_, d)| d.len()).unwrap_or(0),
                };
                PreparedCombo {
                    covers,
                    terminals,
                    terminal_key,
                    provably_disconnected,
                    cmm,
                    bound,
                }
            })
            .collect();

        let survivor_key = index.intern_terminals(&survivors);
        Ok(ReplacementStream {
            index,
            opts,
            survivors,
            survivor_key,
            surviving_joins,
            combos,
            combo_idx: 0,
            current: None,
            seen: HashSet::new(),
            join_rank: HashMap::new(),
            emitted_fallback: Vec::new(),
            max_trees,
            trees_enumerated: 0,
            combos_pruned: 0,
            disconnected_combos: 0,
            any_disconnected: false,
            tree_budget_exhausted: false,
        })
    }

    /// Advance to the next candidate replacement, or `None` when the
    /// choice space (or the tree budget) is exhausted.
    ///
    /// `prune_combo` is consulted once per viable cover combination,
    /// with its admissible [`CandidateBound`], *before* its connection
    /// trees are enumerated; returning `true` skips the combination
    /// (counted in [`ReplacementStream::combos_pruned`]). Pass
    /// `&mut |_| false` for the exhaustive legacy behaviour.
    pub(crate) fn next_candidate(
        &mut self,
        prune_combo: &mut dyn FnMut(&CandidateBound) -> bool,
    ) -> Option<Replacement> {
        loop {
            if let Some(cur) = &mut self.current {
                while cur.tree_pos < cur.trees.len() {
                    let tree = &cur.trees[cur.tree_pos];
                    cur.tree_pos += 1;
                    // Def. 3 (III): include the surviving Min(H_R) joins.
                    let mut joins = self.surviving_joins.clone();
                    for jc in &tree.joins {
                        if !joins.iter().any(|j| j.id == jc.id) {
                            joins.push(jc.clone());
                        }
                    }
                    let mut relations = tree.relations.clone();
                    relations.extend(self.survivors.iter().cloned());
                    // Duplicate filter on the interned identity; order of
                    // `joins` is significant (candidate equality is
                    // positional), hence a rank *sequence*, not a set.
                    let rel_key = self.survivor_key.clone().and_then(|mut set| {
                        for t in &tree.relations {
                            set.insert(self.index.rel_id_prime(t)?);
                        }
                        Some(set)
                    });
                    match rel_key {
                        Some(rel_key) => {
                            let ranks: Vec<u32> = joins
                                .iter()
                                .map(|j| match self.join_rank.get(&j.id) {
                                    Some(&r) => r,
                                    None => {
                                        let next = self.join_rank.len() as u32;
                                        self.join_rank.insert(j.id.clone(), next);
                                        next
                                    }
                                })
                                .collect();
                            if !self.seen.insert((cur.ord, rel_key, ranks)) {
                                continue;
                            }
                        }
                        None => {
                            let dup = self.emitted_fallback.iter().any(|e| {
                                e.covers == cur.covers
                                    && e.relations == relations
                                    && e.joins == joins
                                    && e.c_max_min == cur.c_max_min
                                    && e.dropped_conditions == cur.dropped_conditions
                            });
                            if dup {
                                continue;
                            }
                        }
                    }
                    let candidate = Replacement {
                        covers: cur.covers.clone(),
                        relations,
                        joins,
                        c_max_min: cur.c_max_min.clone(),
                        dropped_conditions: cur.dropped_conditions.clone(),
                    };
                    if candidate
                        .relations
                        .iter()
                        .any(|r| self.index.rel_id_prime(r).is_none())
                    {
                        self.emitted_fallback.push(candidate.clone());
                    }
                    return Some(candidate);
                }
                self.current = None;
            }

            // Advance to the next cover combination.
            if self.combo_idx >= self.combos.len() {
                return None;
            }
            let combo = &self.combos[self.combo_idx];
            let combo_ord = self.combo_idx as u32;
            self.combo_idx += 1;

            if combo.provably_disconnected {
                // Enumeration over these terminals is provably empty.
                self.any_disconnected = true;
                self.disconnected_combos += 1;
                continue;
            }
            let Some((c_max_min, dropped_conditions)) = combo.cmm.clone() else {
                // Def. 3 (V) fails for *every* tree of this combination;
                // only its connectivity signal matters for the final
                // error verdict, so probe with a single tree.
                if !combo.terminals.is_empty()
                    && self
                        .index
                        .enumerate_trees_interned(
                            combo.terminal_key.as_ref(),
                            &combo.terminals,
                            1,
                            self.opts.max_path_edges,
                        )
                        .is_empty()
                {
                    self.any_disconnected = true;
                }
                continue;
            };
            if prune_combo(&combo.bound) {
                self.combos_pruned += 1;
                continue;
            }

            let trees: Arc<Vec<ConnectionTree>> = if combo.terminals.is_empty() {
                // Nothing to keep and nothing to cover: Max(V_R)
                // disappears entirely (all its work was dispensable).
                Arc::new(vec![ConnectionTree {
                    relations: BTreeSet::new(),
                    joins: Vec::new(),
                }])
            } else {
                let remaining = self.max_trees.saturating_sub(self.trees_enumerated);
                if remaining == 0 {
                    // Combinations remain but the tree budget is spent.
                    self.tree_budget_exhausted = true;
                    return None;
                }
                let chunk = self.opts.max_trees_per_combination.min(remaining);
                // Memoized per (terminal set, hop bound): a second view
                // sharing this combination's terminals reuses the walk,
                // and smaller limits are served from the cached prefix.
                let trees = self.index.enumerate_trees_interned(
                    combo.terminal_key.as_ref(),
                    &combo.terminals,
                    chunk,
                    self.opts.max_path_edges,
                );
                if trees.is_empty() {
                    self.any_disconnected = true;
                    self.disconnected_combos += 1;
                    continue;
                }
                self.trees_enumerated += trees.len();
                if chunk < self.opts.max_trees_per_combination && trees.len() == chunk {
                    // The per-combination limit was clipped by the global
                    // budget and the clipped enumeration filled up.
                    self.tree_budget_exhausted = true;
                }
                trees
            };

            self.current = Some(ActiveCombo {
                ord: combo_ord,
                covers: combo.covers.clone(),
                trees,
                tree_pos: 0,
                c_max_min: Arc::new(c_max_min),
                dropped_conditions: Arc::new(dropped_conditions),
            });
        }
    }

    /// Did any combination's tree enumeration come back (provably)
    /// empty? Distinguishes [`CvsError::Disconnected`] from
    /// [`CvsError::NoLegalRewriting`] when no candidate survives.
    pub(crate) fn any_disconnected(&self) -> bool {
        self.any_disconnected
    }

    /// Connection trees enumerated so far (across all combinations).
    pub(crate) fn trees_enumerated(&self) -> usize {
        self.trees_enumerated
    }

    /// Combinations skipped by the caller's prune callback.
    pub(crate) fn combos_pruned(&self) -> usize {
        self.combos_pruned
    }

    /// Combinations whose tree enumeration was (provably or actually)
    /// empty. Counted here and only read out by the caller, so the
    /// `search.disconnected_combos` counter and `SearchStats` can
    /// never drift apart.
    pub(crate) fn disconnected_combos(&self) -> usize {
        self.disconnected_combos
    }

    /// Did the global tree budget cut the enumeration short?
    pub(crate) fn tree_budget_exhausted(&self) -> bool {
        self.tree_budget_exhausted
    }
}

/// Def. 3 (V): rewrite `C_Max/Min` under a cover combination. Returns
/// `(c_max_min, dropped_conditions)`, or `None` when a required
/// condition survives uncovered (the combination cannot produce a legal
/// rewriting). Tree-independent, so hoisted to once per combination.
fn rewrite_c_max_min(
    rm: &RMapping,
    combo: &BTreeMap<AttrRef, CoverChoice>,
    target: &RelName,
) -> Option<(Vec<CondItem>, Vec<CondItem>)> {
    let mut c_max_min = Vec::new();
    let mut dropped_conditions = Vec::new();
    for cond in &rm.c_max_min {
        let mut clause = cond.clause.clone();
        // Non-replaceable conditions are never substituted (Fig. 3:
        // `CR = false` means "left unchanged").
        if cond.params.replaceable {
            for (attr, cover) in combo {
                clause = clause.substitute(attr, &cover.replacement);
            }
        }
        if clause.relations().contains(target) {
            if cond.params.dispensable {
                dropped_conditions.push(cond.clone());
                continue;
            }
            // A required condition survived uncovered.
            return None;
        }
        c_max_min.push(CondItem {
            clause,
            params: cond.params,
        });
    }
    Some((c_max_min, dropped_conditions))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::compute_r_mapping;
    use eve_esql::parse_view;
    use eve_hypergraph::Hypergraph;
    use eve_misd::{evolve, CapabilityChange, MetaKnowledgeBase};

    use crate::testutil::travel_mkb;

    fn eq5_view() -> ViewDefinition {
        parse_view(
            "CREATE VIEW Customer-Passengers-Asia AS
             SELECT C.Name (false, true), C.Age (true, true),
                    P.Participant (true, true), P.TourID (true, true)
             FROM Customer C (true, true), FlightRes F (true, true), Participant P (true, true)
             WHERE (C.Name = F.PName) (false, true) AND (F.Dest = 'Asia')
               AND (P.StartDate = F.Date) AND (P.Loc = 'Asia')",
        )
        .unwrap()
    }

    fn setup() -> (
        MetaKnowledgeBase,
        MetaKnowledgeBase,
        RMapping,
        ViewDefinition,
    ) {
        let mkb = travel_mkb();
        let customer = RelName::new("Customer");
        let h = Hypergraph::build(&mkb);
        let h_r = h.component_of(&customer).unwrap();
        let view = eq5_view();
        let rm = compute_r_mapping(&view, &customer, &h_r, &CvsOptions::default());
        let mkb2 = evolve(&mkb, &CapabilityChange::DeleteRelation(customer)).unwrap();
        (mkb, mkb2, rm, view)
    }

    #[test]
    fn example_9_covers_found() {
        // Paper Ex. 9 Step 1: Cover(Customer.Name) =
        // {Accident-Ins (F2), Participant (F4), FlightRes (F1)}.
        let (mkb, mkb2, rm, view) = setup();
        let _ = &rm;
        let usage_attr = AttrRef::new("Customer", "Name");
        let covers: BTreeSet<RelName> = mkb
            .covers_of(&usage_attr)
            .filter_map(|f| f.source_relation())
            .collect();
        assert_eq!(
            covers,
            ["Accident-Ins", "Participant", "FlightRes"]
                .into_iter()
                .map(RelName::new)
                .collect()
        );
        let _ = (mkb2, view);
    }

    #[test]
    fn example_9_replacements() {
        // The candidates must include FlightRes ⋈ Accident-Ins (cover F2)
        // and the trivial FlightRes cover (F1). All candidates contain
        // FlightRes (= Min(H'_Customer), Def. 3 III) and never Customer.
        let (mkb, mkb2, rm, view) = setup();
        let opts = CvsOptions::default();
        let index = MkbIndex::new(&mkb, &mkb2, &opts);
        let reps = compute_replacements_indexed(&view, &rm, &index, &opts).unwrap();
        assert!(!reps.is_empty());
        let customer = RelName::new("Customer");
        for r in &reps {
            assert!(!r.relations.contains(&customer), "Def. 3 (II) violated");
            assert!(
                r.relations.contains(&RelName::new("FlightRes")),
                "Def. 3 (III) violated"
            );
            // C'_Max/Min must be Customer-free.
            for c in r.c_max_min.iter() {
                assert!(!c.clause.relations().contains(&customer));
            }
        }
        // The Accident-Ins solution of Ex. 10 (using JC6).
        let via_ins = reps.iter().find(|r| {
            r.covers
                .get(&AttrRef::new("Customer", "Name"))
                .map(|c| c.funcof_id == "F2")
                .unwrap_or(false)
        });
        let via_ins = via_ins.expect("Accident-Ins candidate of Ex. 10 missing");
        assert!(via_ins.joins.iter().any(|j| j.id == "JC6"));
        // Opportunistic Age cover (F3) — Ex. 10's refinement Eq. (13).
        assert_eq!(
            via_ins
                .covers
                .get(&AttrRef::new("Customer", "Age"))
                .map(|c| c.funcof_id.as_str()),
            Some("F3")
        );

        // The FlightRes solution (cover F1): with Age left uncovered it
        // needs no relation beyond FlightRes itself.
        let via_flight = reps.iter().find(|r| {
            r.covers
                .get(&AttrRef::new("Customer", "Name"))
                .map(|c| c.funcof_id == "F1")
                .unwrap_or(false)
                && !r.covers.contains_key(&AttrRef::new("Customer", "Age"))
        });
        let via_flight = via_flight.expect("FlightRes candidate missing");
        assert_eq!(via_flight.relations.len(), 1);
    }

    #[test]
    fn example_9_participant_cover_unusable_without_path() {
        // Paper Ex. 9 (2): "the cover (Participant, …) cannot be used as
        // replacement as there is no connected path in H'(MKB') that
        // contains both the cover and the relation FlightRes" — once
        // Customer is erased, every Participant—FlightRes path is gone
        // (Fig. 4, right).
        let mkb = travel_mkb();
        let customer = RelName::new("Customer");
        let view = eq5_view();
        let h = Hypergraph::build(&mkb);
        let h_r = h.component_of(&customer).unwrap();
        let rm = compute_r_mapping(&view, &customer, &h_r, &CvsOptions::default());
        let mkb2 = evolve(&mkb, &CapabilityChange::DeleteRelation(customer)).unwrap();
        let opts = CvsOptions::default();
        let index = MkbIndex::new(&mkb, &mkb2, &opts);
        let reps = compute_replacements_indexed(&view, &rm, &index, &opts).unwrap();
        // No candidate may use the Participant cover: in H'(MKB'),
        // Participant and FlightRes are disconnected (Fig. 4 right).
        for r in &reps {
            if let Some(c) = r.covers.get(&AttrRef::new("Customer", "Name")) {
                assert_ne!(c.funcof_id, "F4", "disconnected cover used: {r:?}");
            }
        }
    }

    #[test]
    fn frozen_attribute_fails() {
        let (mkb, mkb2, _, _) = setup();
        let view = parse_view(
            "CREATE VIEW V AS SELECT C.Name (AD = false, AR = false), F.Dest
             FROM Customer C, FlightRes F WHERE C.Name = F.PName",
        )
        .unwrap();
        let customer = RelName::new("Customer");
        let h = Hypergraph::build(&mkb);
        let h_r = h.component_of(&customer).unwrap();
        let rm = compute_r_mapping(&view, &customer, &h_r, &CvsOptions::default());
        let opts = CvsOptions::default();
        let index = MkbIndex::new(&mkb, &mkb2, &opts);
        let err = compute_replacements_indexed(&view, &rm, &index, &opts).unwrap_err();
        assert!(matches!(err, CvsError::IndispensableNotReplaceable { .. }));
    }

    #[test]
    fn no_cover_fails() {
        // Customer.Phone has no function-of constraint: an indispensable
        // Phone cannot be replaced.
        let (mkb, mkb2, _, _) = setup();
        let view = parse_view(
            "CREATE VIEW V AS SELECT C.Phone (AD = false, AR = true), F.Dest
             FROM Customer C, FlightRes F WHERE C.Name = F.PName",
        )
        .unwrap();
        let customer = RelName::new("Customer");
        let h = Hypergraph::build(&mkb);
        let h_r = h.component_of(&customer).unwrap();
        let rm = compute_r_mapping(&view, &customer, &h_r, &CvsOptions::default());
        let opts = CvsOptions::default();
        let index = MkbIndex::new(&mkb, &mkb2, &opts);
        let err = compute_replacements_indexed(&view, &rm, &index, &opts).unwrap_err();
        assert_eq!(err, CvsError::NoCover(AttrRef::new("Customer", "Phone")));
    }

    #[test]
    fn one_step_limit_prunes_long_chains() {
        // With max_path_edges = 1 (the SVS baseline) the Accident-Ins
        // candidate remains reachable (JC6 is a direct edge from
        // FlightRes), so it should still be found; candidates needing
        // longer chains would be pruned (exercised further in the
        // workload/experiment tests).
        let (mkb, mkb2, rm, view) = setup();
        let opts = CvsOptions::svs_baseline();
        let index = MkbIndex::new(&mkb, &mkb2, &opts);
        let reps = compute_replacements_indexed(&view, &rm, &index, &opts).unwrap();
        assert!(reps
            .iter()
            .any(|r| r.relations.contains(&RelName::new("Accident-Ins"))));
    }
}
