//! The **R-replacement** set (Def. 3 of the paper): candidate join
//! expressions `Max(V_{j,R})` built from `H'_R(MKB')` that can stand in
//! for the affected part `Max(V_R)` of the view.
//!
//! Each candidate must (Def. 3):
//!
//! * (I) be a selection over a join of `H'` relations along `H'` join
//!   constraints;
//! * (II) not contain `R`;
//! * (III) contain every relation and join constraint of `Min(H_R)` that
//!   survives dropping `R`;
//! * (IV) contain a **cover** — a relation `S` with a function-of
//!   constraint `F_{R.A, S.B}` *in the old MKB* — for every indispensable,
//!   replaceable attribute `A` of `R` used by the view;
//! * (V) carry `C'_Max/Min`, obtained from `C_Max/Min` by substituting
//!   `R`'s attributes with their replacements, or dropping dispensable
//!   clauses whose attributes could not be replaced.
//!
//! The full candidate set is exponential; following the minimality spirit
//! of Def. 2 we enumerate minimal connection trees (per cover
//! combination, with parallel-join-constraint variants), bounded by
//! [`CvsOptions`]. Dispensable attributes are covered *opportunistically*
//! when a cover exists — exactly what Example 10 does for `Customer.Age`
//! (dispensable, yet replaced through `F3` because `Accident-Ins` happens
//! to cover it).

use crate::error::CvsError;
use crate::index::MkbIndex;
use crate::mapping::RMapping;
use crate::options::CvsOptions;
use eve_esql::{CondItem, ViewDefinition};
use eve_hypergraph::ConnectionTree;
use eve_misd::JoinConstraint;
use eve_relational::{AttrRef, RelName, ScalarExpr};
use std::collections::{BTreeMap, BTreeSet};

/// A chosen cover for one attribute of the dropped relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoverChoice {
    /// The function-of constraint used (e.g. `F2`).
    pub funcof_id: String,
    /// The cover relation `S`.
    pub source: RelName,
    /// The replacement expression `f(S.B)`.
    pub replacement: ScalarExpr,
}

/// One element of the R-replacement set: everything needed to rebuild the
/// view around `Max(V_{j,R})`.
#[derive(Debug, Clone, PartialEq)]
pub struct Replacement {
    /// Chosen covers: dropped attribute → cover. Attributes absent from
    /// the map had no cover; components using them were dropped (they
    /// were dispensable, or the candidate would have been rejected).
    pub covers: BTreeMap<AttrRef, CoverChoice>,
    /// The relations `R_1, …, R_k` of `Max(V_{j,R})`.
    pub relations: BTreeSet<RelName>,
    /// The join constraints of `Max(V_{j,R})` (surviving `Min` joins plus
    /// the connection tree).
    pub joins: Vec<JoinConstraint>,
    /// `C'_Max/Min` (Def. 3 V), with substitutions applied.
    pub c_max_min: Vec<CondItem>,
    /// Conditions of `C_Max/Min` dropped because they referenced an
    /// uncovered (dispensable) attribute of `R`.
    pub dropped_conditions: Vec<CondItem>,
}

/// How an attribute of `R` is used across the view, aggregated over all
/// components referencing it.
#[derive(Debug, Clone, Copy, Default)]
struct AttrUsage {
    /// Some indispensable component references it.
    required: bool,
    /// Some indispensable component referencing it is non-replaceable.
    frozen: bool,
    /// Some *replaceable* component references it — only then is a cover
    /// worth pulling in (non-replaceable components are never
    /// substituted; Fig. 3 semantics).
    replace_worthy: bool,
}

fn classify_attrs(view: &ViewDefinition, target: &RelName) -> BTreeMap<AttrRef, AttrUsage> {
    let mut usage: BTreeMap<AttrRef, AttrUsage> = BTreeMap::new();
    let mut note = |attr: AttrRef, dispensable: bool, replaceable: bool| {
        let u = usage.entry(attr).or_default();
        if replaceable {
            u.replace_worthy = true;
        }
        if !dispensable {
            u.required = true;
            if !replaceable {
                u.frozen = true;
            }
        }
    };
    for item in &view.select {
        for attr in item.expr.attrs() {
            if &attr.relation == target {
                note(attr, item.params.dispensable, item.params.replaceable);
            }
        }
    }
    for cond in &view.conditions {
        for attr in cond.clause.attrs() {
            if &attr.relation == target {
                note(attr, cond.params.dispensable, cond.params.replaceable);
            }
        }
    }
    usage
}

/// Compute the R-replacement set for `view` under `delete-relation R`
/// (where `R = rm.target`), against a prebuilt [`MkbIndex`].
///
/// Covers come from the index's precomputed function-of map (looked up
/// in the **old** MKB, per Def. 3 IV) and `H'(MKB')` is the index's
/// cached capability-filtered hypergraph — nothing MKB-derived is
/// recomputed per view. Connection-tree enumeration, viable-cover
/// filtering and survival sets all go through the index's per-change
/// memo tables, so views sharing terminal sets reuse each other's
/// graph searches.
pub fn compute_replacements_indexed(
    view: &ViewDefinition,
    rm: &RMapping,
    index: &MkbIndex<'_>,
    opts: &CvsOptions,
) -> Result<Vec<Replacement>, CvsError> {
    let target = &rm.target;

    // --- attribute classification & cover lookup (Def. 3 IV) -----------
    let usage = classify_attrs(view, target);
    // Frozen attributes make the view incurable (P4).
    for (attr, u) in &usage {
        if u.frozen {
            return Err(CvsError::IndispensableNotReplaceable {
                component: attr.to_string(),
            });
        }
    }

    // Per attribute: the list of viable covers (source relation alive in
    // H' and distinct from R). Attributes used only by non-replaceable
    // components never take a cover — those components can only be kept
    // (impossible once R is gone) or dropped.
    let mut cover_options: Vec<(AttrRef, Vec<CoverChoice>, bool)> = Vec::new();
    for (attr, u) in &usage {
        let covers: Vec<CoverChoice> = if u.replace_worthy {
            // Memoized Def. 3 (IV) filter: source distinct from `R` and
            // alive in `H'`.
            index.viable_covers(attr, target).to_vec()
        } else {
            Vec::new()
        };
        if u.required && covers.is_empty() {
            return Err(CvsError::NoCover(attr.clone()));
        }
        if !covers.is_empty() {
            cover_options.push((attr.clone(), covers, u.required));
        }
    }

    // --- enumerate cover combinations -----------------------------------
    // For required attributes every option is a cover; for dispensable
    // ones we also allow "no cover" (drop the components), tried last so
    // opportunistic covering is preferred.
    let mut combinations: Vec<BTreeMap<AttrRef, CoverChoice>> = vec![BTreeMap::new()];
    for (attr, covers, required) in &cover_options {
        let mut next = Vec::new();
        for combo in &combinations {
            for c in covers {
                let mut combo = combo.clone();
                combo.insert(attr.clone(), c.clone());
                next.push(combo);
                if next.len() >= opts.max_cover_combinations {
                    break;
                }
            }
            if !required && next.len() < opts.max_cover_combinations {
                next.push(combo.clone()); // the "leave uncovered" branch
            }
            if next.len() >= opts.max_cover_combinations {
                break;
            }
        }
        combinations = next;
    }

    // --- build candidates per combination (Def. 3 I–III, V) -------------
    let survivors = index.survival_set(&rm.max_relations, target);
    let surviving_joins = rm.surviving_joins();
    let mut out: Vec<Replacement> = Vec::new();
    let mut any_disconnected = false;

    for combo in combinations {
        let mut terminals: BTreeSet<RelName> = (*survivors).clone();
        terminals.extend(combo.values().map(|c| c.source.clone()));

        let trees: std::sync::Arc<Vec<ConnectionTree>> = if terminals.is_empty() {
            // Nothing to keep and nothing to cover: Max(V_R) disappears
            // entirely (all its work was dispensable).
            std::sync::Arc::new(vec![ConnectionTree {
                relations: BTreeSet::new(),
                joins: Vec::new(),
            }])
        } else {
            // Memoized per (terminal set, limit, hop bound): a second
            // view sharing this combination's terminals reuses the walk.
            let trees = index.enumerate_trees(
                &terminals,
                opts.max_trees_per_combination,
                opts.max_path_edges,
            );
            if trees.is_empty() {
                any_disconnected = true;
                continue;
            }
            trees
        };

        for tree in trees.iter() {
            // Def. 3 (III): include the surviving Min(H_R) joins.
            let mut joins = surviving_joins.clone();
            for jc in &tree.joins {
                if !joins.iter().any(|j| j.id == jc.id) {
                    joins.push(jc.clone());
                }
            }
            let mut relations = tree.relations.clone();
            relations.extend(survivors.iter().cloned());

            // Def. 3 (V): rewrite C_Max/Min.
            let mut c_max_min = Vec::new();
            let mut dropped_conditions = Vec::new();
            let mut viable = true;
            for cond in &rm.c_max_min {
                let mut clause = cond.clause.clone();
                // Non-replaceable conditions are never substituted
                // (Fig. 3: `CR = false` means "left unchanged").
                if cond.params.replaceable {
                    for (attr, cover) in &combo {
                        clause = clause.substitute(attr, &cover.replacement);
                    }
                }
                if clause.relations().contains(target) {
                    if cond.params.dispensable {
                        dropped_conditions.push(cond.clone());
                        continue;
                    }
                    // A required condition survived uncovered: this
                    // combination cannot produce a legal rewriting.
                    viable = false;
                    break;
                }
                c_max_min.push(CondItem {
                    clause,
                    params: cond.params,
                });
            }
            if !viable {
                continue;
            }

            let candidate = Replacement {
                covers: combo.clone(),
                relations,
                joins,
                c_max_min,
                dropped_conditions,
            };
            if !out.contains(&candidate) {
                out.push(candidate);
            }
        }
    }

    if out.is_empty() {
        return Err(if any_disconnected {
            CvsError::Disconnected
        } else {
            CvsError::NoLegalRewriting
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::compute_r_mapping;
    use eve_esql::parse_view;
    use eve_hypergraph::Hypergraph;
    use eve_misd::{evolve, CapabilityChange, MetaKnowledgeBase};

    use crate::testutil::travel_mkb;

    fn eq5_view() -> ViewDefinition {
        parse_view(
            "CREATE VIEW Customer-Passengers-Asia AS
             SELECT C.Name (false, true), C.Age (true, true),
                    P.Participant (true, true), P.TourID (true, true)
             FROM Customer C (true, true), FlightRes F (true, true), Participant P (true, true)
             WHERE (C.Name = F.PName) (false, true) AND (F.Dest = 'Asia')
               AND (P.StartDate = F.Date) AND (P.Loc = 'Asia')",
        )
        .unwrap()
    }

    fn setup() -> (
        MetaKnowledgeBase,
        MetaKnowledgeBase,
        RMapping,
        ViewDefinition,
    ) {
        let mkb = travel_mkb();
        let customer = RelName::new("Customer");
        let h = Hypergraph::build(&mkb);
        let h_r = h.component_of(&customer).unwrap();
        let view = eq5_view();
        let rm = compute_r_mapping(&view, &customer, &h_r, &CvsOptions::default());
        let mkb2 = evolve(&mkb, &CapabilityChange::DeleteRelation(customer)).unwrap();
        (mkb, mkb2, rm, view)
    }

    #[test]
    fn example_9_covers_found() {
        // Paper Ex. 9 Step 1: Cover(Customer.Name) =
        // {Accident-Ins (F2), Participant (F4), FlightRes (F1)}.
        let (mkb, mkb2, rm, view) = setup();
        let _ = &rm;
        let usage_attr = AttrRef::new("Customer", "Name");
        let covers: BTreeSet<RelName> = mkb
            .covers_of(&usage_attr)
            .filter_map(|f| f.source_relation())
            .collect();
        assert_eq!(
            covers,
            ["Accident-Ins", "Participant", "FlightRes"]
                .into_iter()
                .map(RelName::new)
                .collect()
        );
        let _ = (mkb2, view);
    }

    #[test]
    fn example_9_replacements() {
        // The candidates must include FlightRes ⋈ Accident-Ins (cover F2)
        // and the trivial FlightRes cover (F1). All candidates contain
        // FlightRes (= Min(H'_Customer), Def. 3 III) and never Customer.
        let (mkb, mkb2, rm, view) = setup();
        let opts = CvsOptions::default();
        let index = MkbIndex::new(&mkb, &mkb2, &opts);
        let reps = compute_replacements_indexed(&view, &rm, &index, &opts).unwrap();
        assert!(!reps.is_empty());
        let customer = RelName::new("Customer");
        for r in &reps {
            assert!(!r.relations.contains(&customer), "Def. 3 (II) violated");
            assert!(
                r.relations.contains(&RelName::new("FlightRes")),
                "Def. 3 (III) violated"
            );
            // C'_Max/Min must be Customer-free.
            for c in &r.c_max_min {
                assert!(!c.clause.relations().contains(&customer));
            }
        }
        // The Accident-Ins solution of Ex. 10 (using JC6).
        let via_ins = reps.iter().find(|r| {
            r.covers
                .get(&AttrRef::new("Customer", "Name"))
                .map(|c| c.funcof_id == "F2")
                .unwrap_or(false)
        });
        let via_ins = via_ins.expect("Accident-Ins candidate of Ex. 10 missing");
        assert!(via_ins.joins.iter().any(|j| j.id == "JC6"));
        // Opportunistic Age cover (F3) — Ex. 10's refinement Eq. (13).
        assert_eq!(
            via_ins
                .covers
                .get(&AttrRef::new("Customer", "Age"))
                .map(|c| c.funcof_id.as_str()),
            Some("F3")
        );

        // The FlightRes solution (cover F1): with Age left uncovered it
        // needs no relation beyond FlightRes itself.
        let via_flight = reps.iter().find(|r| {
            r.covers
                .get(&AttrRef::new("Customer", "Name"))
                .map(|c| c.funcof_id == "F1")
                .unwrap_or(false)
                && !r.covers.contains_key(&AttrRef::new("Customer", "Age"))
        });
        let via_flight = via_flight.expect("FlightRes candidate missing");
        assert_eq!(via_flight.relations.len(), 1);
    }

    #[test]
    fn example_9_participant_cover_unusable_without_path() {
        // Paper Ex. 9 (2): "the cover (Participant, …) cannot be used as
        // replacement as there is no connected path in H'(MKB') that
        // contains both the cover and the relation FlightRes" — once
        // Customer is erased, every Participant—FlightRes path is gone
        // (Fig. 4, right).
        let mkb = travel_mkb();
        let customer = RelName::new("Customer");
        let view = eq5_view();
        let h = Hypergraph::build(&mkb);
        let h_r = h.component_of(&customer).unwrap();
        let rm = compute_r_mapping(&view, &customer, &h_r, &CvsOptions::default());
        let mkb2 = evolve(&mkb, &CapabilityChange::DeleteRelation(customer)).unwrap();
        let opts = CvsOptions::default();
        let index = MkbIndex::new(&mkb, &mkb2, &opts);
        let reps = compute_replacements_indexed(&view, &rm, &index, &opts).unwrap();
        // No candidate may use the Participant cover: in H'(MKB'),
        // Participant and FlightRes are disconnected (Fig. 4 right).
        for r in &reps {
            if let Some(c) = r.covers.get(&AttrRef::new("Customer", "Name")) {
                assert_ne!(c.funcof_id, "F4", "disconnected cover used: {r:?}");
            }
        }
    }

    #[test]
    fn frozen_attribute_fails() {
        let (mkb, mkb2, _, _) = setup();
        let view = parse_view(
            "CREATE VIEW V AS SELECT C.Name (AD = false, AR = false), F.Dest
             FROM Customer C, FlightRes F WHERE C.Name = F.PName",
        )
        .unwrap();
        let customer = RelName::new("Customer");
        let h = Hypergraph::build(&mkb);
        let h_r = h.component_of(&customer).unwrap();
        let rm = compute_r_mapping(&view, &customer, &h_r, &CvsOptions::default());
        let opts = CvsOptions::default();
        let index = MkbIndex::new(&mkb, &mkb2, &opts);
        let err = compute_replacements_indexed(&view, &rm, &index, &opts).unwrap_err();
        assert!(matches!(err, CvsError::IndispensableNotReplaceable { .. }));
    }

    #[test]
    fn no_cover_fails() {
        // Customer.Phone has no function-of constraint: an indispensable
        // Phone cannot be replaced.
        let (mkb, mkb2, _, _) = setup();
        let view = parse_view(
            "CREATE VIEW V AS SELECT C.Phone (AD = false, AR = true), F.Dest
             FROM Customer C, FlightRes F WHERE C.Name = F.PName",
        )
        .unwrap();
        let customer = RelName::new("Customer");
        let h = Hypergraph::build(&mkb);
        let h_r = h.component_of(&customer).unwrap();
        let rm = compute_r_mapping(&view, &customer, &h_r, &CvsOptions::default());
        let opts = CvsOptions::default();
        let index = MkbIndex::new(&mkb, &mkb2, &opts);
        let err = compute_replacements_indexed(&view, &rm, &index, &opts).unwrap_err();
        assert_eq!(err, CvsError::NoCover(AttrRef::new("Customer", "Phone")));
    }

    #[test]
    fn one_step_limit_prunes_long_chains() {
        // With max_path_edges = 1 (the SVS baseline) the Accident-Ins
        // candidate remains reachable (JC6 is a direct edge from
        // FlightRes), so it should still be found; candidates needing
        // longer chains would be pruned (exercised further in the
        // workload/experiment tests).
        let (mkb, mkb2, rm, view) = setup();
        let opts = CvsOptions::svs_baseline();
        let index = MkbIndex::new(&mkb, &mkb2, &opts);
        let reps = compute_replacements_indexed(&view, &rm, &index, &opts).unwrap();
        assert!(reps
            .iter()
            .any(|r| r.relations.contains(&RelName::new("Accident-Ins"))));
    }
}
