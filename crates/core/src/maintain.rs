//! Incremental view maintenance with counting — the warehouse substrate
//! the paper's setting assumes (§1: views are materialized at the user
//! site; §6: refs \[3, 7\] study maintenance after redefinition; classic
//! maintenance *between* redefinitions is what keeps the warehouse fresh
//! as ISs update their **content**, the other half of "updating not only
//! their content but also their capabilities").
//!
//! For SELECT-FROM-WHERE views, joins distribute over union, so a delta
//! on one base relation `R` yields the view delta by evaluating the view
//! with `R` replaced by `ΔR` (all other relations at their unchanged
//! state). Projection may collapse distinct base rows onto one output
//! tuple; the standard *counting* algorithm keeps per-tuple
//! multiplicities so deletions know when an output tuple really
//! disappears.
//!
//! [`CountedView`] holds the definition plus the counted extent;
//! [`CountedView::apply_delta`] maintains it in time proportional to the
//! delta (times the joined partners), not the base relations.

use eve_esql::ViewDefinition;
use eve_relational::{
    theta_join, AttrRef, Conjunction, Database, FuncRegistry, RelName, Relation, RelationalError,
    ScalarExpr, Schema, Tuple,
};
use std::collections::BTreeMap;

/// A content update of one base relation.
#[derive(Debug, Clone, Default)]
pub struct Delta {
    /// Tuples inserted (must be new — not present before the update).
    pub inserted: Vec<Tuple>,
    /// Tuples deleted (must have been present before the update).
    pub deleted: Vec<Tuple>,
}

impl Delta {
    /// An insert-only delta.
    pub fn inserts(tuples: impl IntoIterator<Item = Tuple>) -> Self {
        Delta {
            inserted: tuples.into_iter().collect(),
            deleted: Vec::new(),
        }
    }

    /// A delete-only delta.
    pub fn deletes(tuples: impl IntoIterator<Item = Tuple>) -> Self {
        Delta {
            inserted: Vec::new(),
            deleted: tuples.into_iter().collect(),
        }
    }
}

/// A materialized view with per-tuple multiplicities (the counting
/// algorithm's bookkeeping).
#[derive(Debug, Clone)]
pub struct CountedView {
    /// The view definition.
    pub definition: ViewDefinition,
    counts: BTreeMap<Tuple, usize>,
    output: Schema,
}

impl CountedView {
    /// Materialise with counts from the current database state.
    pub fn new(
        definition: ViewDefinition,
        db: &Database,
        funcs: &FuncRegistry,
    ) -> Result<Self, RelationalError> {
        let (counts, output) = eval_counted(&definition, db, funcs, None)?;
        Ok(CountedView {
            definition,
            counts,
            output,
        })
    }

    /// The set-semantics extent (tuples with positive count).
    pub fn extent(&self) -> Result<Relation, RelationalError> {
        Relation::from_rows(self.output.clone(), self.counts.keys().cloned())
    }

    /// Number of distinct tuples.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// True when the extent is empty.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Multiplicity of one output tuple.
    pub fn count_of(&self, t: &Tuple) -> usize {
        self.counts.get(t).copied().unwrap_or(0)
    }

    /// Maintain the view under a content update of `rel`.
    ///
    /// `db_after` must be the database state *after* the delta was
    /// applied to `rel` (other relations unchanged). Errors from the
    /// evaluation are propagated; a count underflow (a deletion of a
    /// tuple the view never derived) is reported as
    /// [`RelationalError::TypeMismatch`] with a descriptive message —
    /// it means the caller's delta contract was violated.
    pub fn apply_delta(
        &mut self,
        db_after: &Database,
        rel: &RelName,
        delta: &Delta,
        funcs: &FuncRegistry,
    ) -> Result<(), RelationalError> {
        if !self.definition.uses_relation(rel) {
            return Ok(()); // the view doesn't read this relation
        }
        // ΔV+ : view over (R ← inserted), others at their after-state —
        // valid because the inserted tuples join with partner states that
        // did not change in this delta.
        if !delta.inserted.is_empty() {
            let d = substitute_relation(db_after, rel, &delta.inserted)?;
            let (plus, _) = eval_counted(&self.definition, &d, funcs, Some(rel))?;
            for (t, c) in plus {
                *self.counts.entry(t).or_insert(0) += c;
            }
        }
        // ΔV− : view over (R ← deleted).
        if !delta.deleted.is_empty() {
            let d = substitute_relation(db_after, rel, &delta.deleted)?;
            let (minus, _) = eval_counted(&self.definition, &d, funcs, Some(rel))?;
            for (t, c) in minus {
                let existing = self.counts.get(&t).copied().unwrap_or(0);
                match existing.cmp(&c) {
                    std::cmp::Ordering::Greater => {
                        self.counts.insert(t, existing - c);
                    }
                    std::cmp::Ordering::Equal => {
                        self.counts.remove(&t);
                    }
                    std::cmp::Ordering::Less => {
                        return Err(RelationalError::TypeMismatch(format!(
                            "maintenance underflow for {t}: delta deletes more derivations \
                             than the view holds (delta contract violated)"
                        )));
                    }
                }
            }
        }
        Ok(())
    }
}

/// Clone `db` with `rel` replaced by the given tuples.
fn substitute_relation(
    db: &Database,
    rel: &RelName,
    tuples: &[Tuple],
) -> Result<Database, RelationalError> {
    let original = db.require(rel)?;
    let replacement = Relation::from_rows(original.schema().clone(), tuples.iter().cloned())?;
    let mut out = db.clone();
    out.put(rel.clone(), replacement);
    Ok(out)
}

/// Evaluate a view keeping per-output-tuple derivation counts.
///
/// `focus` is only used for error context; the evaluation itself is the
/// same join-select-project pipeline as `evaluate_view`, minus the final
/// deduplication.
fn eval_counted(
    view: &ViewDefinition,
    db: &Database,
    funcs: &FuncRegistry,
    focus: Option<&RelName>,
) -> Result<(BTreeMap<Tuple, usize>, Schema), RelationalError> {
    let _ = focus;
    // Join everything (conditions applied at the end — correctness over
    // speed; the deltas are small).
    let mut acc: Option<Relation> = None;
    for item in &view.from {
        let rel = db.require(&item.relation)?.clone();
        acc = Some(match acc {
            None => rel,
            Some(a) => theta_join(&a, &rel, &Conjunction::empty(), funcs)?,
        });
    }
    let acc = match acc {
        Some(a) => a,
        None => Relation::new(Schema::new()),
    };
    let cond = view.where_conjunction();
    let schema = acc.schema().clone();

    let names = view.interface_names();
    let columns: Vec<(AttrRef, ScalarExpr)> = view
        .select
        .iter()
        .zip(&names)
        .map(|(item, name)| {
            (
                AttrRef::new(view.name.as_str(), name.clone()),
                item.expr.clone(),
            )
        })
        .collect();

    let mut counts: BTreeMap<Tuple, usize> = BTreeMap::new();
    let mut out_types: Vec<Option<eve_relational::DataType>> = columns
        .iter()
        .map(|(_, e)| match e {
            ScalarExpr::Attr(a) => schema.type_of(a),
            ScalarExpr::Const(v) => v.data_type(),
            _ => None,
        })
        .collect();
    for t in acc.rows() {
        if !cond.eval(&schema, t, funcs)? {
            continue;
        }
        let mut vals = Vec::with_capacity(columns.len());
        for (i, (_, e)) in columns.iter().enumerate() {
            let v = e.eval(&schema, t, funcs)?;
            if out_types[i].is_none() {
                out_types[i] = v.data_type();
            }
            vals.push(v);
        }
        *counts.entry(Tuple::new(vals)).or_insert(0) += 1;
    }
    let output = Schema::from_columns(
        columns
            .iter()
            .zip(&out_types)
            .map(|((name, _), ty)| (name.clone(), ty.unwrap_or(eve_relational::DataType::Str)))
            .collect(),
    )?;
    Ok((counts, output))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::evaluate_view;
    use eve_esql::parse_view;
    use eve_relational::{AttributeDef, DataType, Value};

    fn base_db() -> Database {
        let mut db = Database::new();
        let orders = RelName::new("Orders");
        let schema = Schema::of_relation(
            &orders,
            &[
                AttributeDef::new("id", DataType::Int),
                AttributeDef::new("cust", DataType::Str),
                AttributeDef::new("total", DataType::Int),
            ],
        );
        db.put(
            orders,
            Relation::from_rows(
                schema,
                [(1, "ann", 50), (2, "ann", 200), (3, "bob", 120)]
                    .map(|(i, c, t)| Tuple::new(vec![Value::Int(i), Value::str(c), Value::Int(t)])),
            )
            .unwrap(),
        );
        let cust = RelName::new("Customers");
        let schema = Schema::of_relation(
            &cust,
            &[
                AttributeDef::new("name", DataType::Str),
                AttributeDef::new("city", DataType::Str),
            ],
        );
        db.put(
            cust,
            Relation::from_rows(
                schema,
                [("ann", "Detroit"), ("bob", "Boston")]
                    .map(|(n, c)| Tuple::new(vec![Value::str(n), Value::str(c)])),
            )
            .unwrap(),
        );
        db
    }

    fn big_spenders() -> ViewDefinition {
        parse_view(
            "CREATE VIEW BigCities AS
             SELECT C.city FROM Orders O, Customers C
             WHERE (O.cust = C.name) AND (O.total >= 100)",
        )
        .unwrap()
    }

    fn orders_tuple(i: i64, c: &str, t: i64) -> Tuple {
        Tuple::new(vec![Value::Int(i), Value::str(c), Value::Int(t)])
    }

    fn apply_to_db(db: &mut Database, rel: &RelName, delta: &Delta) {
        let mut r = db.get(rel).unwrap().clone();
        for t in &delta.deleted {
            let rows: Vec<Tuple> = r.rows().filter(|x| *x != t).cloned().collect();
            r = Relation::from_rows(r.schema().clone(), rows).unwrap();
        }
        for t in &delta.inserted {
            r.insert(t.clone()).unwrap();
        }
        db.put(rel.clone(), r);
    }

    #[test]
    fn counting_tracks_duplicate_derivations() {
        let funcs = FuncRegistry::new();
        let db = base_db();
        let cv = CountedView::new(big_spenders(), &db, &funcs).unwrap();
        // ann(200) → Detroit, bob(120) → Boston: counts 1 each.
        assert_eq!(cv.len(), 2);
        let detroit = Tuple::new(vec![Value::str("Detroit")]);
        assert_eq!(cv.count_of(&detroit), 1);
    }

    #[test]
    fn insert_then_delete_preserves_extent() {
        let funcs = FuncRegistry::new();
        let mut db = base_db();
        let orders = RelName::new("Orders");
        let mut cv = CountedView::new(big_spenders(), &db, &funcs).unwrap();

        // Insert another big ann order: Detroit count 1 → 2, extent same.
        let ins = Delta::inserts([orders_tuple(4, "ann", 500)]);
        apply_to_db(&mut db, &orders, &ins);
        cv.apply_delta(&db, &orders, &ins, &funcs).unwrap();
        let detroit = Tuple::new(vec![Value::str("Detroit")]);
        assert_eq!(cv.count_of(&detroit), 2);
        assert_eq!(cv.len(), 2);

        // Delete one of them: Detroit survives (the other derivation).
        let del = Delta::deletes([orders_tuple(2, "ann", 200)]);
        apply_to_db(&mut db, &orders, &del);
        cv.apply_delta(&db, &orders, &del, &funcs).unwrap();
        assert_eq!(cv.count_of(&detroit), 1);
        assert_eq!(cv.len(), 2);

        // Delete the last one: Detroit disappears.
        let del = Delta::deletes([orders_tuple(4, "ann", 500)]);
        apply_to_db(&mut db, &orders, &del);
        cv.apply_delta(&db, &orders, &del, &funcs).unwrap();
        assert_eq!(cv.count_of(&detroit), 0);
        assert_eq!(cv.len(), 1);

        // Final extent agrees with recomputation.
        let direct = evaluate_view(&big_spenders(), &db, &funcs).unwrap();
        assert_eq!(cv.extent().unwrap().row_set(), direct.row_set());
    }

    #[test]
    fn deltas_on_either_join_side() {
        let funcs = FuncRegistry::new();
        let mut db = base_db();
        let customers = RelName::new("Customers");
        let mut cv = CountedView::new(big_spenders(), &db, &funcs).unwrap();

        // A new customer with an existing order? No: orders reference
        // cust by name; add customer cat + order for cat.
        let ins_c = Delta::inserts([Tuple::new(vec![Value::str("cat"), Value::str("Chicago")])]);
        apply_to_db(&mut db, &customers, &ins_c);
        cv.apply_delta(&db, &customers, &ins_c, &funcs).unwrap();
        assert_eq!(cv.len(), 2); // no cat orders yet

        let orders = RelName::new("Orders");
        let ins_o = Delta::inserts([orders_tuple(9, "cat", 300)]);
        apply_to_db(&mut db, &orders, &ins_o);
        cv.apply_delta(&db, &orders, &ins_o, &funcs).unwrap();
        assert_eq!(cv.len(), 3);
        let direct = evaluate_view(&big_spenders(), &db, &funcs).unwrap();
        assert_eq!(cv.extent().unwrap().row_set(), direct.row_set());
    }

    #[test]
    fn irrelevant_relation_is_ignored() {
        let funcs = FuncRegistry::new();
        let mut db = base_db();
        let other = RelName::new("Other");
        let schema = Schema::of_relation(&other, &[AttributeDef::new("x", DataType::Int)]);
        db.put(other.clone(), Relation::new(schema));
        let mut cv = CountedView::new(big_spenders(), &db, &funcs).unwrap();
        let before = cv.len();
        // The delta's tuple does not even match Other's schema — but the
        // view never reads Other, so the delta must be skipped entirely.
        cv.apply_delta(
            &db,
            &other,
            &Delta::inserts([Tuple::new(vec![Value::Int(1), Value::Int(2)])]),
            &funcs,
        )
        .unwrap();
        assert_eq!(cv.len(), before);
    }

    #[test]
    fn underflow_reports_contract_violation() {
        let funcs = FuncRegistry::new();
        let mut db = base_db();
        let orders = RelName::new("Orders");
        let mut cv = CountedView::new(big_spenders(), &db, &funcs).unwrap();
        // "Delete" two tuples that were never there (each would derive
        // Detroit, which has only one real derivation): counts underflow.
        let phantom = Delta::deletes([orders_tuple(98, "ann", 998), orders_tuple(99, "ann", 999)]);
        apply_to_db(&mut db, &orders, &phantom); // no-op removals
        let err = cv.apply_delta(&db, &orders, &phantom, &funcs).unwrap_err();
        assert!(err.to_string().contains("underflow"), "{err}");
    }
}
