//! Incremental view maintenance with counting — the warehouse substrate
//! the paper's setting assumes (§1: views are materialized at the user
//! site; §6: refs \[3, 7\] study maintenance after redefinition; classic
//! maintenance *between* redefinitions is what keeps the warehouse fresh
//! as ISs update their **content**, the other half of "updating not only
//! their content but also their capabilities").
//!
//! For SELECT-FROM-WHERE views, joins distribute over union, so a delta
//! on one base relation `R` yields the view delta by evaluating the view
//! with `R` replaced by `ΔR` (all other relations at their unchanged
//! state). Projection may collapse distinct base rows onto one output
//! tuple; the standard *counting* algorithm keeps per-tuple
//! multiplicities so deletions know when an output tuple really
//! disappears.
//!
//! [`CountedView`] holds the definition plus the counted extent;
//! [`CountedView::apply_delta`] maintains it in time proportional to the
//! delta (times the joined partners), not the base relations.

use eve_esql::ViewDefinition;
use eve_relational::{
    theta_join, AttrRef, Conjunction, Database, FuncRegistry, RelName, Relation, RelationalError,
    ScalarExpr, Schema, Tuple,
};
use std::collections::{BTreeMap, BTreeSet};

/// A violated [`Delta`] contract, detected in [`CountedView::apply_delta`]
/// *before* the counts are touched — on error the view is left exactly
/// as it was, never with corrupted multiplicities.
///
/// The checks only need `db_after` (the post-delta base state): inserted
/// tuples must be present in it, deleted tuples must be gone from it,
/// and no tuple may be both inserted and deleted. A deletion of a tuple
/// the base never held is invisible to these checks (it is absent from
/// `db_after` either way); the counting algorithm itself catches that
/// case as an [`DeltaError::Underflow`] when the deletion claims more
/// derivations than the view holds.
#[derive(Debug, Clone)]
pub enum DeltaError {
    /// An `inserted` tuple is missing from `db_after`: the delta was not
    /// actually applied to the base relation.
    InsertedMissing {
        /// The updated base relation.
        relation: RelName,
        /// The offending tuple.
        tuple: Tuple,
    },
    /// A `deleted` tuple is still present in `db_after`.
    DeletedPresent {
        /// The updated base relation.
        relation: RelName,
        /// The offending tuple.
        tuple: Tuple,
    },
    /// A tuple appears in both `inserted` and `deleted` — the delta is
    /// ambiguous and under set semantics cannot describe a real update.
    Overlap {
        /// The updated base relation.
        relation: RelName,
        /// The offending tuple.
        tuple: Tuple,
    },
    /// A deletion claims more derivations of an output tuple than the
    /// view holds (count underflow): the delta deletes base tuples the
    /// view never derived from.
    Underflow {
        /// The output tuple whose count would go negative.
        tuple: Tuple,
    },
    /// The relational engine failed while evaluating the view delta.
    Eval(RelationalError),
}

impl std::fmt::Display for DeltaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeltaError::InsertedMissing { relation, tuple } => write!(
                f,
                "delta contract violated: inserted tuple {tuple} is missing from \
                 {relation} after the update"
            ),
            DeltaError::DeletedPresent { relation, tuple } => write!(
                f,
                "delta contract violated: deleted tuple {tuple} is still present in \
                 {relation} after the update"
            ),
            DeltaError::Overlap { relation, tuple } => write!(
                f,
                "delta contract violated: tuple {tuple} is both inserted and deleted \
                 in the {relation} delta"
            ),
            DeltaError::Underflow { tuple } => write!(
                f,
                "maintenance underflow for {tuple}: delta deletes more derivations \
                 than the view holds (delta contract violated)"
            ),
            DeltaError::Eval(e) => write!(f, "delta evaluation failed: {e}"),
        }
    }
}

impl std::error::Error for DeltaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DeltaError::Eval(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RelationalError> for DeltaError {
    fn from(e: RelationalError) -> Self {
        DeltaError::Eval(e)
    }
}

/// A content update of one base relation.
#[derive(Debug, Clone, Default)]
pub struct Delta {
    /// Tuples inserted (must be new — not present before the update).
    pub inserted: Vec<Tuple>,
    /// Tuples deleted (must have been present before the update).
    pub deleted: Vec<Tuple>,
}

impl Delta {
    /// An insert-only delta.
    pub fn inserts(tuples: impl IntoIterator<Item = Tuple>) -> Self {
        Delta {
            inserted: tuples.into_iter().collect(),
            deleted: Vec::new(),
        }
    }

    /// A delete-only delta.
    pub fn deletes(tuples: impl IntoIterator<Item = Tuple>) -> Self {
        Delta {
            inserted: Vec::new(),
            deleted: tuples.into_iter().collect(),
        }
    }
}

/// A materialized view with per-tuple multiplicities (the counting
/// algorithm's bookkeeping).
#[derive(Debug, Clone)]
pub struct CountedView {
    /// The view definition.
    pub definition: ViewDefinition,
    counts: BTreeMap<Tuple, usize>,
    output: Schema,
}

impl CountedView {
    /// Materialise with counts from the current database state.
    pub fn new(
        definition: ViewDefinition,
        db: &Database,
        funcs: &FuncRegistry,
    ) -> Result<Self, RelationalError> {
        let (counts, output) = eval_counted(&definition, db, funcs, None)?;
        Ok(CountedView {
            definition,
            counts,
            output,
        })
    }

    /// The set-semantics extent (tuples with positive count).
    pub fn extent(&self) -> Result<Relation, RelationalError> {
        Relation::from_rows(self.output.clone(), self.counts.keys().cloned())
    }

    /// Number of distinct tuples.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// True when the extent is empty.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Multiplicity of one output tuple.
    pub fn count_of(&self, t: &Tuple) -> usize {
        self.counts.get(t).copied().unwrap_or(0)
    }

    /// Maintain the view under a content update of `rel`.
    ///
    /// `db_after` must be the database state *after* the delta was
    /// applied to `rel` (other relations unchanged). The delta contract
    /// is validated against `db_after` before anything is computed (see
    /// [`DeltaError`]) and the count updates are staged and checked for
    /// underflow before being committed — on any error the view's counts
    /// are exactly as they were.
    pub fn apply_delta(
        &mut self,
        db_after: &Database,
        rel: &RelName,
        delta: &Delta,
        funcs: &FuncRegistry,
    ) -> Result<(), DeltaError> {
        if !self.definition.uses_relation(rel) {
            return Ok(()); // the view doesn't read this relation
        }
        validate_delta(db_after, rel, delta)?;
        // ΔV+ : view over (R ← inserted), others at their after-state —
        // valid because the inserted tuples join with partner states that
        // did not change in this delta. ΔV− : view over (R ← deleted).
        // Both are staged so underflow is detected before any mutation.
        let plus = if delta.inserted.is_empty() {
            BTreeMap::new()
        } else {
            let d = substitute_relation(db_after, rel, &delta.inserted)?;
            eval_counted(&self.definition, &d, funcs, Some(rel))?.0
        };
        let minus = if delta.deleted.is_empty() {
            BTreeMap::new()
        } else {
            let d = substitute_relation(db_after, rel, &delta.deleted)?;
            eval_counted(&self.definition, &d, funcs, Some(rel))?.0
        };
        for (t, c) in &minus {
            let available =
                self.counts.get(t).copied().unwrap_or(0) + plus.get(t).copied().unwrap_or(0);
            if available < *c {
                return Err(DeltaError::Underflow { tuple: t.clone() });
            }
        }
        for (t, c) in plus {
            *self.counts.entry(t).or_insert(0) += c;
        }
        for (t, c) in minus {
            let existing = self.counts.get(&t).copied().unwrap_or(0);
            if existing == c {
                self.counts.remove(&t);
            } else {
                self.counts.insert(t, existing - c);
            }
        }
        Ok(())
    }
}

/// Check the [`Delta`] contract against the post-update base state.
fn validate_delta(db_after: &Database, rel: &RelName, delta: &Delta) -> Result<(), DeltaError> {
    let deleted: BTreeSet<&Tuple> = delta.deleted.iter().collect();
    if let Some(t) = delta.inserted.iter().find(|t| deleted.contains(t)) {
        return Err(DeltaError::Overlap {
            relation: rel.clone(),
            tuple: t.clone(),
        });
    }
    let after = db_after.require(rel)?;
    if let Some(t) = delta.inserted.iter().find(|t| !after.contains(t)) {
        return Err(DeltaError::InsertedMissing {
            relation: rel.clone(),
            tuple: t.clone(),
        });
    }
    if let Some(t) = delta.deleted.iter().find(|t| after.contains(t)) {
        return Err(DeltaError::DeletedPresent {
            relation: rel.clone(),
            tuple: t.clone(),
        });
    }
    Ok(())
}

/// Clone `db` with `rel` replaced by the given tuples.
fn substitute_relation(
    db: &Database,
    rel: &RelName,
    tuples: &[Tuple],
) -> Result<Database, RelationalError> {
    let original = db.require(rel)?;
    let replacement = Relation::from_rows(original.schema().clone(), tuples.iter().cloned())?;
    let mut out = db.clone();
    out.put(rel.clone(), replacement);
    Ok(out)
}

/// Evaluate a view keeping per-output-tuple derivation counts.
///
/// `focus` is only used for error context; the evaluation itself is the
/// same join-select-project pipeline as `evaluate_view`, minus the final
/// deduplication.
fn eval_counted(
    view: &ViewDefinition,
    db: &Database,
    funcs: &FuncRegistry,
    focus: Option<&RelName>,
) -> Result<(BTreeMap<Tuple, usize>, Schema), RelationalError> {
    let _ = focus;
    // Join everything (conditions applied at the end — correctness over
    // speed; the deltas are small).
    let mut acc: Option<Relation> = None;
    for item in &view.from {
        let rel = db.require(&item.relation)?.clone();
        acc = Some(match acc {
            None => rel,
            Some(a) => theta_join(&a, &rel, &Conjunction::empty(), funcs)?,
        });
    }
    let acc = match acc {
        Some(a) => a,
        None => Relation::new(Schema::new()),
    };
    let cond = view.where_conjunction();
    let schema = acc.schema().clone();

    let names = view.interface_names();
    let columns: Vec<(AttrRef, ScalarExpr)> = view
        .select
        .iter()
        .zip(&names)
        .map(|(item, name)| {
            (
                AttrRef::new(view.name.as_str(), name.clone()),
                item.expr.clone(),
            )
        })
        .collect();

    let mut counts: BTreeMap<Tuple, usize> = BTreeMap::new();
    let mut out_types: Vec<Option<eve_relational::DataType>> = columns
        .iter()
        .map(|(_, e)| match e {
            ScalarExpr::Attr(a) => schema.type_of(a),
            ScalarExpr::Const(v) => v.data_type(),
            _ => None,
        })
        .collect();
    for t in acc.rows() {
        if !cond.eval(&schema, t, funcs)? {
            continue;
        }
        let mut vals = Vec::with_capacity(columns.len());
        for (i, (_, e)) in columns.iter().enumerate() {
            let v = e.eval(&schema, t, funcs)?;
            if out_types[i].is_none() {
                out_types[i] = v.data_type();
            }
            vals.push(v);
        }
        *counts.entry(Tuple::new(vals)).or_insert(0) += 1;
    }
    let output = Schema::from_columns(
        columns
            .iter()
            .zip(&out_types)
            .map(|((name, _), ty)| (name.clone(), ty.unwrap_or(eve_relational::DataType::Str)))
            .collect(),
    )?;
    Ok((counts, output))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::evaluate_view;
    use eve_esql::parse_view;
    use eve_relational::{AttributeDef, DataType, Value};

    fn base_db() -> Database {
        let mut db = Database::new();
        let orders = RelName::new("Orders");
        let schema = Schema::of_relation(
            &orders,
            &[
                AttributeDef::new("id", DataType::Int),
                AttributeDef::new("cust", DataType::Str),
                AttributeDef::new("total", DataType::Int),
            ],
        );
        db.put(
            orders,
            Relation::from_rows(
                schema,
                [(1, "ann", 50), (2, "ann", 200), (3, "bob", 120)]
                    .map(|(i, c, t)| Tuple::new(vec![Value::Int(i), Value::str(c), Value::Int(t)])),
            )
            .unwrap(),
        );
        let cust = RelName::new("Customers");
        let schema = Schema::of_relation(
            &cust,
            &[
                AttributeDef::new("name", DataType::Str),
                AttributeDef::new("city", DataType::Str),
            ],
        );
        db.put(
            cust,
            Relation::from_rows(
                schema,
                [("ann", "Detroit"), ("bob", "Boston")]
                    .map(|(n, c)| Tuple::new(vec![Value::str(n), Value::str(c)])),
            )
            .unwrap(),
        );
        db
    }

    fn big_spenders() -> ViewDefinition {
        parse_view(
            "CREATE VIEW BigCities AS
             SELECT C.city FROM Orders O, Customers C
             WHERE (O.cust = C.name) AND (O.total >= 100)",
        )
        .unwrap()
    }

    fn orders_tuple(i: i64, c: &str, t: i64) -> Tuple {
        Tuple::new(vec![Value::Int(i), Value::str(c), Value::Int(t)])
    }

    fn apply_to_db(db: &mut Database, rel: &RelName, delta: &Delta) {
        let mut r = db.get(rel).unwrap().clone();
        for t in &delta.deleted {
            let rows: Vec<Tuple> = r.rows().filter(|x| *x != t).cloned().collect();
            r = Relation::from_rows(r.schema().clone(), rows).unwrap();
        }
        for t in &delta.inserted {
            r.insert(t.clone()).unwrap();
        }
        db.put(rel.clone(), r);
    }

    #[test]
    fn counting_tracks_duplicate_derivations() {
        let funcs = FuncRegistry::new();
        let db = base_db();
        let cv = CountedView::new(big_spenders(), &db, &funcs).unwrap();
        // ann(200) → Detroit, bob(120) → Boston: counts 1 each.
        assert_eq!(cv.len(), 2);
        let detroit = Tuple::new(vec![Value::str("Detroit")]);
        assert_eq!(cv.count_of(&detroit), 1);
    }

    #[test]
    fn insert_then_delete_preserves_extent() {
        let funcs = FuncRegistry::new();
        let mut db = base_db();
        let orders = RelName::new("Orders");
        let mut cv = CountedView::new(big_spenders(), &db, &funcs).unwrap();

        // Insert another big ann order: Detroit count 1 → 2, extent same.
        let ins = Delta::inserts([orders_tuple(4, "ann", 500)]);
        apply_to_db(&mut db, &orders, &ins);
        cv.apply_delta(&db, &orders, &ins, &funcs).unwrap();
        let detroit = Tuple::new(vec![Value::str("Detroit")]);
        assert_eq!(cv.count_of(&detroit), 2);
        assert_eq!(cv.len(), 2);

        // Delete one of them: Detroit survives (the other derivation).
        let del = Delta::deletes([orders_tuple(2, "ann", 200)]);
        apply_to_db(&mut db, &orders, &del);
        cv.apply_delta(&db, &orders, &del, &funcs).unwrap();
        assert_eq!(cv.count_of(&detroit), 1);
        assert_eq!(cv.len(), 2);

        // Delete the last one: Detroit disappears.
        let del = Delta::deletes([orders_tuple(4, "ann", 500)]);
        apply_to_db(&mut db, &orders, &del);
        cv.apply_delta(&db, &orders, &del, &funcs).unwrap();
        assert_eq!(cv.count_of(&detroit), 0);
        assert_eq!(cv.len(), 1);

        // Final extent agrees with recomputation.
        let direct = evaluate_view(&big_spenders(), &db, &funcs).unwrap();
        assert_eq!(cv.extent().unwrap().row_set(), direct.row_set());
    }

    #[test]
    fn deltas_on_either_join_side() {
        let funcs = FuncRegistry::new();
        let mut db = base_db();
        let customers = RelName::new("Customers");
        let mut cv = CountedView::new(big_spenders(), &db, &funcs).unwrap();

        // A new customer with an existing order? No: orders reference
        // cust by name; add customer cat + order for cat.
        let ins_c = Delta::inserts([Tuple::new(vec![Value::str("cat"), Value::str("Chicago")])]);
        apply_to_db(&mut db, &customers, &ins_c);
        cv.apply_delta(&db, &customers, &ins_c, &funcs).unwrap();
        assert_eq!(cv.len(), 2); // no cat orders yet

        let orders = RelName::new("Orders");
        let ins_o = Delta::inserts([orders_tuple(9, "cat", 300)]);
        apply_to_db(&mut db, &orders, &ins_o);
        cv.apply_delta(&db, &orders, &ins_o, &funcs).unwrap();
        assert_eq!(cv.len(), 3);
        let direct = evaluate_view(&big_spenders(), &db, &funcs).unwrap();
        assert_eq!(cv.extent().unwrap().row_set(), direct.row_set());
    }

    #[test]
    fn irrelevant_relation_is_ignored() {
        let funcs = FuncRegistry::new();
        let mut db = base_db();
        let other = RelName::new("Other");
        let schema = Schema::of_relation(&other, &[AttributeDef::new("x", DataType::Int)]);
        db.put(other.clone(), Relation::new(schema));
        let mut cv = CountedView::new(big_spenders(), &db, &funcs).unwrap();
        let before = cv.len();
        // The delta's tuple does not even match Other's schema — but the
        // view never reads Other, so the delta must be skipped entirely.
        cv.apply_delta(
            &db,
            &other,
            &Delta::inserts([Tuple::new(vec![Value::Int(1), Value::Int(2)])]),
            &funcs,
        )
        .unwrap();
        assert_eq!(cv.len(), before);
    }

    #[test]
    fn underflow_reports_contract_violation() {
        let funcs = FuncRegistry::new();
        let mut db = base_db();
        let orders = RelName::new("Orders");
        let mut cv = CountedView::new(big_spenders(), &db, &funcs).unwrap();
        // "Delete" two tuples that were never there (each would derive
        // Detroit, which has only one real derivation): counts underflow.
        let phantom = Delta::deletes([orders_tuple(98, "ann", 998), orders_tuple(99, "ann", 999)]);
        apply_to_db(&mut db, &orders, &phantom); // no-op removals
        let before = cv.clone();
        let err = cv.apply_delta(&db, &orders, &phantom, &funcs).unwrap_err();
        assert!(matches!(err, DeltaError::Underflow { .. }), "{err:?}");
        assert!(err.to_string().contains("underflow"), "{err}");
        // The failed delta left the counts exactly as they were.
        assert_eq!(cv.counts, before.counts);
    }

    #[test]
    fn unapplied_insert_rejected_without_corrupting_counts() {
        let funcs = FuncRegistry::new();
        let db = base_db();
        let orders = RelName::new("Orders");
        let mut cv = CountedView::new(big_spenders(), &db, &funcs).unwrap();
        let before = cv.clone();
        // The delta claims an insert, but the caller never applied it to
        // the base: db_after does not contain the tuple.
        let ins = Delta::inserts([orders_tuple(7, "bob", 400)]);
        let err = cv.apply_delta(&db, &orders, &ins, &funcs).unwrap_err();
        assert!(matches!(err, DeltaError::InsertedMissing { .. }), "{err:?}");
        assert!(err.to_string().contains("missing from Orders"), "{err}");
        assert_eq!(cv.counts, before.counts);
    }

    #[test]
    fn unapplied_delete_rejected() {
        let funcs = FuncRegistry::new();
        let db = base_db();
        let orders = RelName::new("Orders");
        let mut cv = CountedView::new(big_spenders(), &db, &funcs).unwrap();
        // The delta claims tuple 2 was deleted, but db_after still has it.
        let del = Delta::deletes([orders_tuple(2, "ann", 200)]);
        let err = cv.apply_delta(&db, &orders, &del, &funcs).unwrap_err();
        assert!(matches!(err, DeltaError::DeletedPresent { .. }), "{err:?}");
        assert!(err.to_string().contains("still present"), "{err}");
    }

    #[test]
    fn overlapping_insert_and_delete_rejected() {
        let funcs = FuncRegistry::new();
        let db = base_db();
        let orders = RelName::new("Orders");
        let mut cv = CountedView::new(big_spenders(), &db, &funcs).unwrap();
        let t = orders_tuple(7, "bob", 400);
        let delta = Delta {
            inserted: vec![t.clone()],
            deleted: vec![t],
        };
        let err = cv.apply_delta(&db, &orders, &delta, &funcs).unwrap_err();
        assert!(matches!(err, DeltaError::Overlap { .. }), "{err:?}");
        assert!(
            err.to_string().contains("both inserted and deleted"),
            "{err}"
        );
    }

    #[test]
    fn delta_error_wraps_relational_errors() {
        let funcs = FuncRegistry::new();
        let db = base_db();
        let mut cv = CountedView::new(big_spenders(), &db, &funcs).unwrap();
        // The view reads Orders, but the database handed to apply_delta
        // is missing it entirely → the relational error surfaces as Eval.
        let empty = Database::new();
        let err = cv
            .apply_delta(
                &empty,
                &RelName::new("Orders"),
                &Delta::deletes([orders_tuple(1, "ann", 50)]),
                &funcs,
            )
            .unwrap_err();
        assert!(matches!(err, DeltaError::Eval(_)), "{err:?}");
        use std::error::Error;
        assert!(err.source().is_some());
    }
}
