//! Virtual time for deterministic simulation.
//!
//! Two places in the engine consult a clock: the [`SearchBudget`]
//! deadline check inside the CVS candidate search, and the
//! [`FailurePolicy::Degrade`] retry backoff. Under normal operation
//! both run on wall-clock time. Under the deterministic simulator
//! (`eve-sim`) wall time is a nondeterminism hole — the same seed
//! would truncate searches or pace retries differently from run to
//! run — so a **virtual clock** can be installed process-wide:
//!
//! * [`anchor`]/[`Anchor::elapsed`] replace `Instant::now()` +
//!   `Instant::elapsed`: with a virtual clock installed, elapsed time
//!   is the difference of virtual-nanosecond readings and advances
//!   only when someone calls [`VirtualClock::advance`] or [`sleep`].
//! * [`sleep`] replaces `std::thread::sleep`: with a virtual clock
//!   installed it advances virtual time instantly instead of blocking,
//!   so a `Degrade { backoff: 5s }` retry storm completes in
//!   microseconds of wall time while still observing deterministic
//!   virtual timestamps.
//!
//! The registry mirrors `eve-faults`: a process-global slot with
//! exclusive [`install`]/[`uninstall`] and a [`serial_guard`] for
//! tests that must not interleave. [`CvsOptions`] is `Copy`, so the
//! clock cannot ride on the options struct; a global also means
//! worker threads inside the search pool observe the same time source
//! without any plumbing through the parallel iterator.
//!
//! [`SearchBudget`]: crate::options::SearchBudget
//! [`FailurePolicy::Degrade`]: crate::options::FailurePolicy::Degrade
//! [`CvsOptions`]: crate::options::CvsOptions

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, RwLock};
use std::time::{Duration, Instant};

/// A deterministic time source: a monotone counter of virtual
/// nanoseconds that advances only on explicit request.
#[derive(Debug, Default)]
pub struct VirtualClock {
    nanos: AtomicU64,
}

impl VirtualClock {
    /// A fresh clock at virtual time zero.
    pub fn new() -> Arc<VirtualClock> {
        Arc::new(VirtualClock::default())
    }

    /// Current virtual time in nanoseconds since the clock's epoch.
    pub fn now_nanos(&self) -> u64 {
        self.nanos.load(Ordering::SeqCst)
    }

    /// Advance virtual time by `d`. Saturates at `u64::MAX` nanos.
    pub fn advance(&self, d: Duration) {
        let add = u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
        // fetch_update to saturate instead of wrapping.
        let _ = self
            .nanos
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |cur| {
                Some(cur.saturating_add(add))
            });
    }
}

/// Cheap flag so the hot search loop can skip the registry lock when
/// no virtual clock is installed (the overwhelmingly common case).
static VIRTUAL_ACTIVE: AtomicBool = AtomicBool::new(false);

fn slot() -> &'static RwLock<Option<Arc<VirtualClock>>> {
    static SLOT: OnceLock<RwLock<Option<Arc<VirtualClock>>>> = OnceLock::new();
    SLOT.get_or_init(|| RwLock::new(None))
}

/// Error returned by [`install`] when a clock is already installed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClockInstalled;

impl std::fmt::Display for ClockInstalled {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("a virtual clock is already installed")
    }
}

impl std::error::Error for ClockInstalled {}

/// Install `clock` as the process-wide time source. Exclusive: fails
/// if another virtual clock is already installed.
pub fn install(clock: Arc<VirtualClock>) -> Result<(), ClockInstalled> {
    let mut slot = slot().write().unwrap_or_else(|e| e.into_inner());
    if slot.is_some() {
        return Err(ClockInstalled);
    }
    *slot = Some(clock);
    VIRTUAL_ACTIVE.store(true, Ordering::SeqCst);
    Ok(())
}

/// Remove the installed virtual clock, returning it (if any). Wall
/// time becomes the time source again.
pub fn uninstall() -> Option<Arc<VirtualClock>> {
    let mut slot = slot().write().unwrap_or_else(|e| e.into_inner());
    VIRTUAL_ACTIVE.store(false, Ordering::SeqCst);
    slot.take()
}

/// True if a virtual clock is currently installed.
pub fn virtual_active() -> bool {
    VIRTUAL_ACTIVE.load(Ordering::SeqCst)
}

fn current() -> Option<Arc<VirtualClock>> {
    if !virtual_active() {
        return None;
    }
    slot()
        .read()
        .unwrap_or_else(|e| e.into_inner())
        .as_ref()
        .cloned()
}

/// Guard for tests that install/uninstall clocks: hold it for the
/// whole test body so concurrently running tests in the same binary
/// don't fight over the global slot.
pub fn serial_guard() -> MutexGuard<'static, ()> {
    static GUARD: OnceLock<Mutex<()>> = OnceLock::new();
    GUARD
        .get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

/// A point in time captured from whichever clock is active.
///
/// Captured by [`anchor`]; [`Anchor::elapsed`] measures against the
/// *same* time source the anchor was taken from, so a clock installed
/// or removed mid-measurement cannot produce a torn reading.
#[derive(Debug, Clone)]
pub enum Anchor {
    /// Wall-clock anchor (the default).
    Wall(Instant),
    /// Virtual anchor: the clock and the nanos at capture time.
    Virtual(Arc<VirtualClock>, u64),
}

impl Anchor {
    /// Time elapsed since the anchor was captured.
    pub fn elapsed(&self) -> Duration {
        match self {
            Anchor::Wall(i) => i.elapsed(),
            Anchor::Virtual(clock, at) => {
                Duration::from_nanos(clock.now_nanos().saturating_sub(*at))
            }
        }
    }
}

/// Capture the current time from the active source.
pub fn anchor() -> Anchor {
    match current() {
        Some(clock) => {
            let at = clock.now_nanos();
            Anchor::Virtual(clock, at)
        }
        None => Anchor::Wall(Instant::now()),
    }
}

/// Sleep for `d`: blocks the thread on wall time, or advances the
/// installed virtual clock instantly without blocking.
pub fn sleep(d: Duration) {
    match current() {
        Some(clock) => clock.advance(d),
        None => std::thread::sleep(d),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_anchor_measures_real_time() {
        let _guard = serial_guard();
        let a = anchor();
        assert!(matches!(a, Anchor::Wall(_)));
        std::thread::sleep(Duration::from_millis(2));
        assert!(a.elapsed() >= Duration::from_millis(2));
    }

    #[test]
    fn virtual_anchor_only_moves_on_advance() {
        let _guard = serial_guard();
        let clock = VirtualClock::new();
        install(clock.clone()).expect("no clock installed");
        let a = anchor();
        assert!(matches!(a, Anchor::Virtual(..)));
        // Wall time passes; virtual time does not.
        std::thread::sleep(Duration::from_millis(2));
        assert_eq!(a.elapsed(), Duration::ZERO);
        clock.advance(Duration::from_secs(5));
        assert_eq!(a.elapsed(), Duration::from_secs(5));
        // Virtual sleep advances instantly.
        let before = Instant::now();
        sleep(Duration::from_secs(3600));
        assert!(before.elapsed() < Duration::from_secs(5));
        assert_eq!(a.elapsed(), Duration::from_secs(3605));
        uninstall();
    }

    #[test]
    fn install_is_exclusive() {
        let _guard = serial_guard();
        install(VirtualClock::new()).expect("no clock installed");
        assert_eq!(install(VirtualClock::new()), Err(ClockInstalled));
        assert!(virtual_active());
        uninstall();
        assert!(!virtual_active());
    }

    #[test]
    fn anchor_survives_mid_measurement_uninstall() {
        let _guard = serial_guard();
        let clock = VirtualClock::new();
        install(clock.clone()).expect("no clock installed");
        let a = anchor();
        clock.advance(Duration::from_secs(1));
        uninstall();
        // The anchor still reads from the clock it was captured from.
        assert_eq!(a.elapsed(), Duration::from_secs(1));
    }
}
