//! The **SVS baseline**: the *simple* "one-step-away" view rewriting of
//! the authors' earlier work (\[4\] CASCON'97, \[12\] KRDB'97), against which
//! the paper positions CVS:
//!
//! > "rather than just providing simple so-called 'one-step-away' view
//! > rewritings [4, 12], our solution succeeds in determining possibly
//! > complex view rewrites through multiple join constraints given in
//! > the MKB."
//!
//! SVS only considers replacements reachable by a *single* join
//! constraint from the surviving view fragment — no chains, no Steiner
//! relations. It is implemented as CVS restricted to one-hop attachment
//! paths ([`CvsOptions::svs_baseline`]), which makes the comparison
//! experiments (`sweep-chain`) an exact ablation: the two algorithms
//! differ in nothing but the search radius.

use crate::cost::CostModel;
use crate::error::CvsError;
use crate::index::MkbIndex;
use crate::legal::LegalRewriting;
use crate::options::{CvsOptions, SearchBudget};
use crate::rewrite::{cvs_delete_relation_searched, SearchResult};
use eve_esql::ViewDefinition;
use eve_relational::RelName;

/// Synchronize `view` under `delete-relation target` using only
/// one-step-away rewritings, against a prebuilt [`MkbIndex`]: `opts` is
/// the caller's configuration (it must match what the index was built
/// with); only the search radius is clamped to one hop.
pub fn svs_delete_relation_indexed(
    view: &ViewDefinition,
    target: &RelName,
    index: &MkbIndex<'_>,
    opts: &CvsOptions,
) -> Result<Vec<LegalRewriting>, CvsError> {
    svs_delete_relation_searched(view, target, index, opts, false, None).map(|r| r.rewritings)
}

/// The streaming form of [`svs_delete_relation_indexed`], for the
/// engine. The search radius is clamped to one hop and — SVS being
/// defined as an *exhaustive* one-step search — any `deadline` in the
/// caller's budget is rejected (stripped), matching
/// [`CvsOptions::svs_baseline`]. The structural budgets (`top_k`,
/// `max_candidates`, `max_trees`) still apply: they bound *what is
/// kept*, with truncation reported, not silently timed out.
pub fn svs_delete_relation_searched(
    view: &ViewDefinition,
    target: &RelName,
    index: &MkbIndex<'_>,
    opts: &CvsOptions,
    require_p3: bool,
    cost_model: Option<&CostModel>,
) -> Result<SearchResult, CvsError> {
    let svs_opts = CvsOptions {
        max_path_edges: 1,
        budget: SearchBudget {
            deadline: None,
            ..opts.budget
        },
        ..*opts
    };
    cvs_delete_relation_searched(view, target, index, &svs_opts, require_p3, cost_model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::travel_mkb;
    use eve_esql::parse_view;
    use eve_misd::{evolve, parse_misd, CapabilityChange};

    #[test]
    fn svs_finds_direct_replacements() {
        // Accident-Ins is one JC hop (JC6) from FlightRes: SVS succeeds on
        // the paper's running example.
        let mkb = travel_mkb();
        let customer = RelName::new("Customer");
        let mkb2 = evolve(&mkb, &CapabilityChange::DeleteRelation(customer.clone())).unwrap();
        let view = parse_view(
            "CREATE VIEW V AS SELECT C.Name (false, true), F.Dest
             FROM Customer C, FlightRes F WHERE (C.Name = F.PName)",
        )
        .unwrap();
        assert!(crate::testutil::svs_dr(&view, &customer, &mkb, &mkb2).is_ok());
    }

    #[test]
    fn diamond_mkb_yields_alternative_rewritings() {
        // Cover D is reachable from B via two routes (B—X—D and B—Y—D):
        // CVS must propose one rewriting per route.
        let mkb = parse_misd(
            "RELATION IS1 A(x str, k str)
             RELATION IS2 B(k str, y str)
             RELATION IS3 X(k str)
             RELATION IS4 Y(k str)
             RELATION IS5 D(x str, k str)
             JOIN J0: A, B ON A.k = B.k
             JOIN J1: B, X ON B.k = X.k
             JOIN J2: X, D ON X.k = D.k
             JOIN J3: B, Y ON B.k = Y.k
             JOIN J4: Y, D ON Y.k = D.k
             FUNCOF F1: A.x = D.x
             FUNCOF F2: A.k = D.k",
        )
        .unwrap();
        let a = RelName::new("A");
        let mkb2 = evolve(&mkb, &CapabilityChange::DeleteRelation(a.clone())).unwrap();
        let view = parse_view(
            "CREATE VIEW V AS SELECT A.x (false, true), A.k (true, true), B.y
             FROM A, B WHERE (A.k = B.k)",
        )
        .unwrap();
        let rewritings =
            crate::testutil::cvs_dr(&view, &a, &mkb, &mkb2, &CvsOptions::default()).unwrap();
        let via_x = rewritings
            .iter()
            .any(|r| r.view.uses_relation(&RelName::new("X")));
        let via_y = rewritings
            .iter()
            .any(|r| r.view.uses_relation(&RelName::new("Y")));
        assert!(via_x && via_y, "{rewritings:#?}");
    }

    #[test]
    fn nojoin_cover_excluded_when_capabilities_respected() {
        // D covers A's attributes but advertises NOJOIN: with
        // respect_capabilities (default) the rewriting must fail; with
        // enforcement off it succeeds.
        let mkb = parse_misd(
            "RELATION IS1 A(x str, k str)
             RELATION IS2 B(k str, y str)
             RELATION IS4 D(x str, k str) NOJOIN
             JOIN J1: A, B ON A.k = B.k
             JOIN J3: B, D ON B.k = D.k
             FUNCOF F1: A.x = D.x
             FUNCOF F2: A.k = D.k",
        )
        .unwrap();
        let a = RelName::new("A");
        let mkb2 = evolve(&mkb, &CapabilityChange::DeleteRelation(a.clone())).unwrap();
        let view = parse_view(
            "CREATE VIEW V AS SELECT A.x (false, true), A.k (true, true), B.y FROM A, B WHERE (A.k = B.k)",
        )
        .unwrap();
        let strict = crate::testutil::cvs_dr(&view, &a, &mkb, &mkb2, &CvsOptions::default());
        assert!(strict.is_err(), "{strict:?}");
        let lax = crate::testutil::cvs_dr(
            &view,
            &a,
            &mkb,
            &mkb2,
            &CvsOptions {
                respect_capabilities: false,
                ..CvsOptions::default()
            },
        );
        assert!(lax.is_ok(), "{lax:?}");
    }

    #[test]
    fn svs_fails_where_cvs_succeeds_on_two_hop_chain() {
        // Chain A—B—C—D: the view joins A with B; A's attribute is covered
        // only by D, two hops from B. CVS chains JC2, JC3; SVS gives up.
        let mkb = parse_misd(
            "RELATION IS1 A(x str, k str)
             RELATION IS2 B(k str, y str)
             RELATION IS3 C(k str, z str)
             RELATION IS4 D(x str, k str)
             JOIN J1: A, B ON A.k = B.k
             JOIN J2: B, C ON B.k = C.k
             JOIN J3: C, D ON C.k = D.k
             FUNCOF F1: A.x = D.x
             FUNCOF F2: A.k = D.k",
        )
        .unwrap();
        let a = RelName::new("A");
        let mkb2 = evolve(&mkb, &CapabilityChange::DeleteRelation(a.clone())).unwrap();
        let view = parse_view(
            "CREATE VIEW V AS SELECT A.x (false, true), B.y FROM A, B WHERE (A.k = B.k)",
        )
        .unwrap();

        let cvs = crate::testutil::cvs_dr(&view, &a, &mkb, &mkb2, &CvsOptions::default());
        assert!(cvs.is_ok(), "{cvs:?}");
        let cvs = cvs.unwrap();
        // CVS routes B—C—D and substitutes A.x → D.x.
        assert!(cvs[0].view.to_string().contains("D.x"));

        let svs = crate::testutil::svs_dr(&view, &a, &mkb, &mkb2);
        assert!(matches!(svs, Err(CvsError::Disconnected)), "{svs:?}");
    }
}
