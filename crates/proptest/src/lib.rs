//! Workspace-local shim for the subset of the `proptest` 1.x API used by
//! EVE's property tests.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors this miniature property-testing engine instead of the real
//! `proptest` crate. It keeps the same surface syntax — the [`proptest!`]
//! macro, [`Strategy`] combinators (`prop_map`, `prop_filter`,
//! `prop_recursive`), [`prop_oneof!`], `Just`, `any::<bool>()`, integer
//! range strategies, regex-literal string strategies, and the
//! `collection` / `option` / `sample` helper modules — but intentionally
//! omits shrinking: a failing case reports its seed and generated inputs
//! instead of minimising them. Generation is fully deterministic per
//! test-function name and case index, so failures reproduce exactly.

use std::fmt::Debug;
use std::rc::Rc;

use rand::rngs::StdRng;
use rand::Rng;

/// Runner configuration; only the case count is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property was falsified.
    Fail(String),
    /// The case asked to be skipped (unused by the shim's combinators,
    /// kept so `Result<(), TestCaseError>` bodies match upstream).
    Reject(String),
}

impl TestCaseError {
    /// Construct a failure with the given reason.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(r) => write!(f, "{r}"),
            TestCaseError::Reject(r) => write!(f, "rejected: {r}"),
        }
    }
}

/// A generator of values of type `Self::Value`.
///
/// Unlike upstream proptest there is no value tree / shrinking: a
/// strategy is just a deterministic function of the RNG state.
pub trait Strategy {
    /// The type of generated values.
    type Value: Debug;

    /// Generate one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Retry generation until `pred` accepts the value.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            whence,
            pred,
        }
    }

    /// Build a recursive strategy: `recurse` receives a strategy for the
    /// sub-level and returns the strategy for the level above. `depth`
    /// bounds the nesting; the size hints are accepted for API
    /// compatibility but unused (no shrinking).
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut strat = leaf.clone();
        for _ in 0..depth {
            // Leaf is weighted 2:1 over recursion so generation terminates
            // with shallow trees most of the time, matching upstream's
            // size-budgeted behaviour closely enough for these tests.
            strat = Union::weighted(vec![(2, leaf.clone()), (1, recurse(strat).boxed())]).boxed();
        }
        strat
    }

    /// Type-erase into a clonable, shareable strategy handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// Clonable type-erased strategy (upstream's `BoxedStrategy`).
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        self.0.generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..1_000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter gave up after 1000 rejections: {}", self.whence);
    }
}

/// Weighted choice among boxed alternatives (backs [`prop_oneof!`]).
pub struct Union<T> {
    variants: Vec<(u32, BoxedStrategy<T>)>,
    total: u32,
}

impl<T> Union<T> {
    /// Equal-weight union.
    pub fn new(variants: Vec<BoxedStrategy<T>>) -> Self {
        Union::weighted(variants.into_iter().map(|v| (1, v)).collect())
    }

    /// Union with explicit weights.
    pub fn weighted(variants: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(
            !variants.is_empty(),
            "prop_oneof! needs at least one variant"
        );
        let total = variants.iter().map(|(w, _)| *w).sum();
        Union { variants, total }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            variants: self.variants.clone(),
            total: self.total,
        }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        let mut pick = rng.gen_range(0..self.total);
        for (w, s) in &self.variants {
            if pick < *w {
                return s.generate(rng);
            }
            pick -= w;
        }
        unreachable!("weights exhausted")
    }
}

/// Always produce a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized + Debug {
    /// Generate one arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rng.gen_bool(0.5)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                rng.gen::<u64>() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy for [`Arbitrary`] types; construct via [`any`].
#[derive(Debug, Clone, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T` (`any::<bool>()` etc.).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// A `&'static str` is interpreted as a regex over a small supported
/// subset: literals, `[...]` classes with ranges, groups, `?`, and
/// `{n}` / `{n,m}` counted repetition.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut StdRng) -> String {
        let ast = regex::parse(self);
        let mut out = String::new();
        regex::emit(&ast, rng, &mut out);
        out
    }
}

mod regex {
    //! Just enough regex to cover the patterns the test-suite uses
    //! (e.g. `"[A-Z][a-z]{1,6}(-[A-Z][a-z]{1,4})?"`). Parsed on every
    //! generation; these patterns are a handful of bytes, so caching
    //! would be noise.

    use rand::rngs::StdRng;
    use rand::Rng;

    pub enum Node {
        Seq(Vec<Node>),
        /// One term plus its repetition bounds.
        Repeat(Box<Node>, u32, u32),
        Class(Vec<char>),
        Literal(char),
    }

    pub fn parse(pattern: &str) -> Node {
        let chars: Vec<char> = pattern.chars().collect();
        let (node, consumed) = parse_seq(&chars, 0);
        assert!(
            consumed == chars.len(),
            "regex shim: trailing input in pattern {pattern:?}"
        );
        node
    }

    fn parse_seq(chars: &[char], mut i: usize) -> (Node, usize) {
        let mut items = Vec::new();
        while i < chars.len() && chars[i] != ')' {
            let term = match chars[i] {
                '[' => {
                    let (cls, next) = parse_class(chars, i + 1);
                    i = next;
                    Node::Class(cls)
                }
                '(' => {
                    let (inner, next) = parse_seq(chars, i + 1);
                    assert!(chars.get(next) == Some(&')'), "regex shim: unclosed group");
                    i = next + 1;
                    inner
                }
                '\\' => {
                    i += 2;
                    Node::Literal(chars[i - 1])
                }
                c => {
                    i += 1;
                    Node::Literal(c)
                }
            };
            let (lo, hi, next) = parse_quantifier(chars, i);
            i = next;
            if (lo, hi) == (1, 1) {
                items.push(term);
            } else {
                items.push(Node::Repeat(Box::new(term), lo, hi));
            }
        }
        (Node::Seq(items), i)
    }

    fn parse_class(chars: &[char], mut i: usize) -> (Vec<char>, usize) {
        let mut members = Vec::new();
        while chars[i] != ']' {
            if chars.get(i + 1) == Some(&'-') && chars.get(i + 2) != Some(&']') {
                let (lo, hi) = (chars[i], chars[i + 2]);
                members.extend((lo..=hi).filter(|c| c.is_ascii()));
                i += 3;
            } else {
                members.push(chars[i]);
                i += 1;
            }
        }
        (members, i + 1)
    }

    fn parse_quantifier(chars: &[char], i: usize) -> (u32, u32, usize) {
        match chars.get(i) {
            Some('?') => (0, 1, i + 1),
            Some('{') => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .expect("regex shim: unclosed {")
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                let (lo, hi) = match body.split_once(',') {
                    Some((lo, hi)) => (lo.parse().unwrap(), hi.parse().unwrap()),
                    None => {
                        let n = body.parse().unwrap();
                        (n, n)
                    }
                };
                (lo, hi, close + 1)
            }
            _ => (1, 1, i),
        }
    }

    pub fn emit(node: &Node, rng: &mut StdRng, out: &mut String) {
        match node {
            Node::Seq(items) => {
                for item in items {
                    emit(item, rng, out);
                }
            }
            Node::Repeat(inner, lo, hi) => {
                let n = rng.gen_range(*lo..=*hi);
                for _ in 0..n {
                    emit(inner, rng, out);
                }
            }
            Node::Class(members) => out.push(members[rng.gen_range(0..members.len())]),
            Node::Literal(c) => out.push(*c),
        }
    }
}

/// Size specifications accepted by the collection / sample strategies.
pub trait SizeBounds {
    /// Pick a concrete length.
    fn pick(&self, rng: &mut StdRng) -> usize;
}

impl SizeBounds for std::ops::Range<usize> {
    fn pick(&self, rng: &mut StdRng) -> usize {
        rng.gen_range(self.clone())
    }
}

impl SizeBounds for std::ops::RangeInclusive<usize> {
    fn pick(&self, rng: &mut StdRng) -> usize {
        rng.gen_range(self.clone())
    }
}

/// Collection strategies (`proptest::collection::{vec, btree_set}`).
pub mod collection {
    use super::{SizeBounds, Strategy};
    use rand::rngs::StdRng;
    use std::collections::BTreeSet;
    use std::fmt::Debug;

    /// `Vec` of values from `element`, length drawn from `size`.
    pub fn vec<S: Strategy, Z: SizeBounds>(element: S, size: Z) -> VecStrategy<S, Z> {
        VecStrategy { element, size }
    }

    /// `BTreeSet` of values from `element`; the target size is a best
    /// effort since duplicates collapse.
    pub fn btree_set<S, Z>(element: S, size: Z) -> BTreeSetStrategy<S, Z>
    where
        S: Strategy,
        S::Value: Ord,
        Z: SizeBounds,
    {
        BTreeSetStrategy { element, size }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S, Z> {
        element: S,
        size: Z,
    }

    impl<S: Strategy, Z: SizeBounds> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy returned by [`btree_set`].
    pub struct BTreeSetStrategy<S, Z> {
        element: S,
        size: Z,
    }

    impl<S, Z> Strategy for BTreeSetStrategy<S, Z>
    where
        S: Strategy,
        S::Value: Ord + Debug,
        Z: SizeBounds,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let target = self.size.pick(rng);
            let mut set = BTreeSet::new();
            // Duplicates collapse, so bound the attempts rather than loop
            // until the exact size is hit (the domain may be smaller).
            for _ in 0..target.saturating_mul(4).max(8) {
                if set.len() >= target {
                    break;
                }
                set.insert(self.element.generate(rng));
            }
            set
        }
    }
}

/// `proptest::option::of`.
pub mod option {
    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// `None` a quarter of the time, `Some(value)` otherwise — the same
    /// default weighting as upstream.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// Strategy returned by [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            if rng.gen_bool(0.25) {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// `proptest::sample::subsequence`.
pub mod sample {
    use super::{SizeBounds, Strategy};
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::fmt::Debug;

    /// A random subsequence of `elements` (order preserved) whose length
    /// is drawn from `size`.
    pub fn subsequence<T: Clone + Debug, Z: SizeBounds>(
        elements: Vec<T>,
        size: Z,
    ) -> Subsequence<T, Z> {
        Subsequence { elements, size }
    }

    /// Strategy returned by [`subsequence`].
    pub struct Subsequence<T, Z> {
        elements: Vec<T>,
        size: Z,
    }

    impl<T: Clone + Debug, Z: SizeBounds> Strategy for Subsequence<T, Z> {
        type Value = Vec<T>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let n = self.size.pick(rng).min(self.elements.len());
            // Reservoir-free selection: pick n distinct indices, keep order.
            let mut picked: Vec<usize> = Vec::with_capacity(n);
            while picked.len() < n {
                let idx = rng.gen_range(0..self.elements.len());
                if !picked.contains(&idx) {
                    picked.push(idx);
                }
            }
            picked.sort_unstable();
            picked
                .into_iter()
                .map(|i| self.elements[i].clone())
                .collect()
        }
    }
}

/// Deterministic case driver used by the [`proptest!`] macro expansion.
pub mod test_runner {
    use super::{ProptestConfig, TestCaseError};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fnv1a(name: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// Run `config.cases` deterministic cases; `body` returns the Debug
    /// rendering of the generated inputs plus the case outcome.
    pub fn run<F>(config: &ProptestConfig, name: &str, mut body: F)
    where
        F: FnMut(&mut StdRng) -> (String, Result<(), TestCaseError>),
    {
        let base = fnv1a(name);
        for case in 0..config.cases {
            let seed = base ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let mut rng = StdRng::seed_from_u64(seed);
            let (inputs, outcome) = body(&mut rng);
            match outcome {
                Ok(()) | Err(TestCaseError::Reject(_)) => {}
                Err(TestCaseError::Fail(reason)) => panic!(
                    "property '{name}' falsified at case {case} (seed {seed:#x})\n  \
                     inputs: {inputs}\n  {reason}"
                ),
            }
        }
    }
}

/// Everything the tests import via `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Any, Arbitrary, BoxedStrategy,
        Just, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Assert a condition inside a property body, failing the case (not the
/// whole process) with file/line context.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{} at {}:{}",
                format!($($fmt)*),
                file!(),
                line!()
            )));
        }
    };
}

/// Assert equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n    left: {:?}\n   right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "{}\n    left: {:?}\n   right: {:?}",
            format!($($fmt)*),
            l,
            r
        );
    }};
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@funcs ($cfg) $($rest)*);
    };
    (@funcs ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        #[test]
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            // Build each strategy once, bound to the argument name; the
            // per-case closure shadows the name with a generated value.
            $(let $arg = $strat;)+
            $crate::test_runner::run(&config, stringify!($name), |rng| {
                $(let $arg = $crate::Strategy::generate(&$arg, rng);)+
                let inputs = {
                    let mut s = String::new();
                    $(
                        if !s.is_empty() { s.push_str(", "); }
                        s.push_str(concat!(stringify!($arg), " = "));
                        s.push_str(&format!("{:?}", $arg));
                    )+
                    s
                };
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                })();
                (inputs, outcome)
            });
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@funcs ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn regex_shapes() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..200 {
            let s = crate::Strategy::generate(&"[A-Z][a-z]{1,6}(-[A-Z][a-z]{1,4})?", &mut rng);
            let parts: Vec<&str> = s.split('-').collect();
            assert!(parts.len() <= 2, "{s}");
            assert!(parts[0].len() >= 2 && parts[0].len() <= 7, "{s}");
            let short = crate::Strategy::generate(&"[a-d]{0,3}", &mut rng);
            assert!(short.len() <= 3 && short.chars().all(|c| ('a'..='d').contains(&c)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        fn combinators_compose(
            n in 1usize..5,
            flag in any::<bool>(),
            xs in crate::collection::vec(-5i64..5, 0..10),
            pick in crate::sample::subsequence(vec![1, 2, 3], 1..=3),
            opt in crate::option::of(0i64..3),
        ) {
            prop_assert!((1..5).contains(&n));
            prop_assert!(usize::from(flag) <= 1);
            prop_assert!(xs.len() < 10);
            prop_assert!(xs.iter().all(|x| (-5..5).contains(x)));
            prop_assert!(!pick.is_empty() && pick.windows(2).all(|w| w[0] < w[1]));
            if let Some(v) = opt {
                prop_assert!((0..3).contains(&v));
            }
            return Ok(());
        }

        fn oneof_and_recursive(v in prop_oneof![Just(0i64), 1i64..10].prop_map(|x| x * 2)) {
            prop_assert!(v == 0 || (2..20).contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "falsified")]
    fn failures_report_seed() {
        let config = ProptestConfig::with_cases(16);
        crate::test_runner::run(&config, "always_fails", |_rng| {
            ("x = 1".to_string(), Err(TestCaseError::fail("boom")))
        });
    }
}
