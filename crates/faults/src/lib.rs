//! Deterministic, seeded **fault injection** for the EVE sync pipeline,
//! vendored std-only like the workspace's other shim crates.
//!
//! The paper's setting is a large-scale space of *autonomous* — and
//! therefore unreliable — information sources; this crate makes that
//! unreliability reproducible on demand. A [`FaultPlan`] names *sites*
//! (instrumentation points like `view.sync` or `search.candidate`),
//! optionally narrows them to a *scope* (the view being synchronized),
//! and picks which *hit* of the site should fail and how:
//!
//! * [`FaultKind::Panic`] — `panic_any` an [`InjectedFault`] payload;
//! * [`FaultKind::Transient`] — same, but flagged retryable, so a
//!   `Degrade` failure policy will re-attempt the view;
//! * [`FaultKind::Delay`] — sleep, perturbing schedules without failing;
//! * [`FaultKind::Budget`] — report "budget exhausted" to the caller,
//!   which truncates the streaming search exactly like a real deadline.
//!
//! The registry mirrors the `eve-telemetry` facade pattern: a process
//! global behind [`install`]/[`uninstall`], an [`active`] check that is
//! one relaxed atomic load when nothing is installed, and a
//! [`serial_guard`] for tests that must not share the global. Downstream
//! crates call it through a `crate::faults` facade that compiles to
//! no-ops without their default-on `faults` feature.
//!
//! Hit counters are keyed per **(scope, site)**, not globally: whichever
//! worker thread synchronizes view `X`, the `n`-th hit of `X/view.sync`
//! is the same event, so a plan replays identically across 1/2/8-worker
//! schedules. The `EVE_FAULTS` environment variable holds a plan in the
//! textual [`FaultPlan::parse`] format and is loaded lazily on first use.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, Once, OnceLock, RwLock};
use std::time::Duration;

/// What an injected fault does at its site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Unwind with a non-retryable [`InjectedFault`] payload.
    Panic,
    /// Unwind with a *retryable* [`InjectedFault`] payload (a `Degrade`
    /// failure policy re-attempts the view).
    Transient,
    /// Sleep for the given duration, then continue normally.
    Delay(Duration),
    /// Tell the site its budget is exhausted ([`trip`] returns `true`);
    /// the streaming search truncates as if a deadline fired.
    Budget,
}

impl FaultKind {
    fn tag(&self) -> &'static str {
        match self {
            FaultKind::Panic => "panic",
            FaultKind::Transient => "transient",
            FaultKind::Delay(_) => "delay",
            FaultKind::Budget => "budget",
        }
    }
}

/// One addressed fault: *where* (site + optional scope), *when* (which
/// hit, optionally probabilistic), and *what* ([`FaultKind`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSpec {
    /// Site name, e.g. `view.sync` (see the DESIGN.md site table).
    pub site: String,
    /// Exact scope the site must be running under (the synchronizer
    /// scopes each view task by view name); `None` matches any scope.
    pub scope: Option<String>,
    /// Fire only on this 0-based hit of `(scope, site)`; `None` fires
    /// on every hit (subject to `permille`).
    pub hit: Option<u64>,
    /// Fire with probability `permille/1000`, decided by a deterministic
    /// hash of `(seed, scope, site, hit)`; `None` always fires.
    pub permille: Option<u16>,
    /// What happens when the spec fires.
    pub kind: FaultKind,
}

impl fmt::Display for FaultSpec {
    /// Renders back to the [`FaultPlan::parse`] entry grammar, so an
    /// unfired spec reported by [`uninstall`] can be pasted straight
    /// into `EVE_FAULTS` for a focused replay.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(scope) = &self.scope {
            write!(f, "{scope}/")?;
        }
        f.write_str(&self.site)?;
        if let Some(hit) = self.hit {
            write!(f, "#{hit}")?;
        }
        if let Some(p) = self.permille {
            write!(f, "%{p}")?;
        }
        match self.kind {
            FaultKind::Delay(d) => write!(f, "=delay:{}", d.as_millis()),
            kind => write!(f, "={}", kind.tag()),
        }
    }
}

/// A parse error from [`FaultPlan::parse`], carrying the offending entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanParseError(String);

impl fmt::Display for PlanParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid fault plan: {}", self.0)
    }
}

impl std::error::Error for PlanParseError {}

/// A deterministic fault schedule: a seed plus a list of [`FaultSpec`]s.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// Seed feeding the deterministic per-hit hash for probabilistic
    /// (`permille`) specs.
    pub seed: u64,
    /// The addressed faults, checked in order (first match fires).
    pub specs: Vec<FaultSpec>,
}

impl FaultPlan {
    /// An empty plan with the given seed (add specs via [`FaultPlan::with`]).
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            specs: Vec::new(),
        }
    }

    /// Append a spec (builder style).
    pub fn with(mut self, spec: FaultSpec) -> Self {
        self.specs.push(spec);
        self
    }

    /// Parse the textual plan format used by `EVE_FAULTS` and
    /// `eve-cli --faults`. Entries are `;`- or `,`-separated:
    ///
    /// ```text
    /// seed=42; CPA/view.sync#0=panic; search.candidate#2=budget; V2/view.sync=transient
    /// ```
    ///
    /// Entry grammar: `[scope '/'] site ['#' hit] ['%' permille] '=' kind`
    /// where `kind` is `panic`, `transient`, `budget`, or `delay[:millis]`
    /// (default 1 ms, capped at 10 s). Omitting `#hit` fires on every
    /// hit; `%permille` makes firing a deterministic coin flip.
    pub fn parse(text: &str) -> Result<FaultPlan, PlanParseError> {
        let mut plan = FaultPlan::default();
        for raw in text.split([';', ',']) {
            let entry = raw.trim();
            if entry.is_empty() {
                continue;
            }
            let (addr, kind_text) = entry
                .split_once('=')
                .ok_or_else(|| PlanParseError(format!("{entry:?}: missing '='")))?;
            let (addr, kind_text) = (addr.trim(), kind_text.trim());
            if addr == "seed" {
                plan.seed = kind_text
                    .parse()
                    .map_err(|_| PlanParseError(format!("{entry:?}: seed is not a u64")))?;
                continue;
            }
            let kind = match kind_text.split_once(':') {
                Some(("delay", ms)) => {
                    let ms: u64 = ms
                        .parse()
                        .map_err(|_| PlanParseError(format!("{entry:?}: bad delay millis")))?;
                    FaultKind::Delay(Duration::from_millis(ms.min(10_000)))
                }
                None => match kind_text {
                    "panic" => FaultKind::Panic,
                    "transient" => FaultKind::Transient,
                    "budget" => FaultKind::Budget,
                    "delay" => FaultKind::Delay(Duration::from_millis(1)),
                    other => {
                        return Err(PlanParseError(format!("{entry:?}: unknown kind {other:?}")))
                    }
                },
                Some(_) => {
                    return Err(PlanParseError(format!("{entry:?}: unknown kind")));
                }
            };
            let (addr, permille) = match addr.split_once('%') {
                Some((a, p)) => {
                    let p: u16 = p
                        .parse()
                        .map_err(|_| PlanParseError(format!("{entry:?}: bad permille")))?;
                    (a.trim(), Some(p.min(1000)))
                }
                None => (addr, None),
            };
            let (addr, hit) = match addr.split_once('#') {
                Some((a, h)) => {
                    let h: u64 = h
                        .parse()
                        .map_err(|_| PlanParseError(format!("{entry:?}: bad hit index")))?;
                    (a.trim(), Some(h))
                }
                None => (addr, None),
            };
            let (scope, site) = match addr.split_once('/') {
                Some((sc, si)) => (Some(sc.trim().to_string()), si.trim()),
                None => (None, addr),
            };
            if site.is_empty() {
                return Err(PlanParseError(format!("{entry:?}: empty site name")));
            }
            plan.specs.push(FaultSpec {
                site: site.to_string(),
                scope,
                hit,
                permille,
                kind,
            });
        }
        Ok(plan)
    }
}

/// The panic payload of an injected [`FaultKind::Panic`] /
/// [`FaultKind::Transient`] fault. Callers that contain unwinds (the
/// parpool task boundary) downcast the payload to this type to decide
/// retryability and to render a deterministic error message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectedFault {
    /// Site that fired.
    pub site: String,
    /// Scope the site was running under (empty outside any scope).
    pub scope: String,
    /// Hit index that fired.
    pub hit: u64,
    /// Whether the failure is retryable ([`FaultKind::Transient`]).
    pub transient: bool,
}

impl fmt::Display for InjectedFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "injected {} fault at {}{} (hit {})",
            if self.transient { "transient" } else { "panic" },
            if self.scope.is_empty() {
                String::new()
            } else {
                format!("{}/", self.scope)
            },
            self.site,
            self.hit
        )
    }
}

/// One fault that actually fired, for post-run introspection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FiredFault {
    /// Scope the site was running under (empty outside any scope).
    pub scope: String,
    /// Site that fired.
    pub site: String,
    /// Hit index that fired.
    pub hit: u64,
    /// The fault kind tag (`panic` / `transient` / `delay` / `budget`).
    pub kind: &'static str,
}

/// Summary handed back by [`uninstall`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultReport {
    /// Total faults injected over the plan's lifetime.
    pub injected: u64,
    /// Every fired fault, in firing order.
    pub fired: Vec<FiredFault>,
    /// Plan entries that never fired — dead fault sites (a scope that
    /// never synchronized, a hit index past the site's hit count, a
    /// site name the run never reached). Render with `Display` to get
    /// the plan-grammar entry back.
    pub unfired: Vec<FaultSpec>,
}

struct Registry {
    plan: FaultPlan,
    /// Per-(scope, site) hit counters — the addressing that keeps plans
    /// deterministic across worker counts (see the module docs).
    hits: Mutex<HashMap<(String, String), u64>>,
    injected: AtomicU64,
    fired: Mutex<Vec<FiredFault>>,
    /// Firing count per plan spec (index-aligned with `plan.specs`),
    /// feeding [`FaultReport::unfired`].
    spec_fired: Vec<AtomicU64>,
}

static ACTIVE: AtomicBool = AtomicBool::new(false);
static ENV_INIT: Once = Once::new();

fn registry() -> &'static RwLock<Option<Arc<Registry>>> {
    static REGISTRY: OnceLock<RwLock<Option<Arc<Registry>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| RwLock::new(None))
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // Injected panics unwind through sites while these locks are held;
    // recovering the guard keeps the registry usable afterwards.
    m.lock().unwrap_or_else(|e| e.into_inner())
}

fn install_unchecked(plan: FaultPlan) {
    let mut slot = registry().write().unwrap_or_else(|e| e.into_inner());
    let spec_fired = plan.specs.iter().map(|_| AtomicU64::new(0)).collect();
    *slot = Some(Arc::new(Registry {
        plan,
        hits: Mutex::new(HashMap::new()),
        injected: AtomicU64::new(0),
        fired: Mutex::new(Vec::new()),
        spec_fired,
    }));
    ACTIVE.store(true, Ordering::Release);
}

fn ensure_env_init() {
    ENV_INIT.call_once(|| {
        if let Ok(text) = std::env::var("EVE_FAULTS") {
            match FaultPlan::parse(&text) {
                Ok(plan) => install_unchecked(plan),
                Err(e) => eprintln!("EVE_FAULTS ignored: {e}"),
            }
        }
    });
}

/// Is a fault plan installed? After the one-time `EVE_FAULTS` check this
/// is a single relaxed atomic load — the only cost instrumented sites
/// pay when no plan is active.
#[inline]
pub fn active() -> bool {
    ensure_env_init();
    ACTIVE.load(Ordering::Relaxed)
}

/// Error returned by [`install`] when a plan is already installed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AlreadyInstalled;

impl fmt::Display for AlreadyInstalled {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a fault plan is already installed")
    }
}

impl std::error::Error for AlreadyInstalled {}

/// Install a fault plan process-wide. Fails when one is already active
/// (uninstall it first); tests serialize installs with [`serial_guard`].
pub fn install(plan: FaultPlan) -> Result<(), AlreadyInstalled> {
    ensure_env_init();
    let slot = registry().read().unwrap_or_else(|e| e.into_inner());
    if slot.is_some() {
        return Err(AlreadyInstalled);
    }
    drop(slot);
    install_unchecked(plan);
    Ok(())
}

/// Remove the installed plan, returning what fired (None when nothing
/// was installed).
pub fn uninstall() -> Option<FaultReport> {
    ensure_env_init();
    let mut slot = registry().write().unwrap_or_else(|e| e.into_inner());
    let reg = slot.take()?;
    ACTIVE.store(false, Ordering::Release);
    let report = FaultReport {
        injected: reg.injected.load(Ordering::Relaxed),
        fired: lock(&reg.fired).clone(),
        unfired: reg
            .plan
            .specs
            .iter()
            .zip(&reg.spec_fired)
            .filter(|(_, n)| n.load(Ordering::Relaxed) == 0)
            .map(|(spec, _)| spec.clone())
            .collect(),
    };
    Some(report)
}

/// Snapshot of the faults fired so far by the installed plan (empty when
/// none is installed) — lets a chaos test see which scopes were hit
/// without uninstalling mid-run.
pub fn fired() -> Vec<FiredFault> {
    let slot = registry().read().unwrap_or_else(|e| e.into_inner());
    slot.as_ref()
        .map(|r| lock(&r.fired).clone())
        .unwrap_or_default()
}

/// A process-wide guard serializing tests that install fault plans —
/// same contract as `eve_telemetry::serial_guard`.
pub fn serial_guard() -> MutexGuard<'static, ()> {
    static GUARD: Mutex<()> = Mutex::new(());
    GUARD.lock().unwrap_or_else(|e| e.into_inner())
}

thread_local! {
    static SCOPE: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// Run `f` with the named fault scope pushed on this thread (the
/// synchronizer scopes each view task by view name). The scope is popped
/// even when `f` unwinds, so an injected panic cannot leak it into the
/// next task this worker picks up.
pub fn scoped<R>(scope: &str, f: impl FnOnce() -> R) -> R {
    struct PopOnDrop;
    impl Drop for PopOnDrop {
        fn drop(&mut self) {
            SCOPE.with(|s| {
                s.borrow_mut().pop();
            });
        }
    }
    SCOPE.with(|s| s.borrow_mut().push(scope.to_string()));
    let _pop = PopOnDrop;
    f()
}

fn current_scope() -> String {
    SCOPE
        .with(|s| s.borrow().last().cloned())
        .unwrap_or_default()
}

/// splitmix64 over (seed, scope, site, hit): the deterministic coin for
/// `permille` specs.
fn mix(seed: u64, scope: &str, site: &str, hit: u64) -> u64 {
    let mut h = seed ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(hit.wrapping_add(1));
    for b in scope.bytes().chain([b'/']).chain(site.bytes()) {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
    }
    let mut z = h.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Count a hit of `site` under the current scope and return the fault
/// that fires, if any. Counting happens even when no spec matches — hit
/// indices address the site's full deterministic hit sequence.
pub fn check(site: &str) -> Option<FaultKind> {
    check_fired(site).map(|(kind, _)| kind)
}

/// Like [`check`], but also returns the [`FiredFault`] record for the
/// firing, so callers (e.g. the engine's flight-recorder hook) can
/// observe scope/site/hit without re-deriving them.
pub fn check_fired(site: &str) -> Option<(FaultKind, FiredFault)> {
    if !active() {
        return None;
    }
    let slot = registry().read().unwrap_or_else(|e| e.into_inner());
    let reg = Arc::clone(slot.as_ref()?);
    drop(slot);
    let scope = current_scope();
    let hit = {
        let mut hits = lock(&reg.hits);
        let counter = hits.entry((scope.clone(), site.to_string())).or_insert(0);
        let n = *counter;
        *counter += 1;
        n
    };
    for (idx, spec) in reg.plan.specs.iter().enumerate() {
        if spec.site != site {
            continue;
        }
        if let Some(sc) = &spec.scope {
            if *sc != scope {
                continue;
            }
        }
        if let Some(h) = spec.hit {
            if h != hit {
                continue;
            }
        }
        if let Some(p) = spec.permille {
            if mix(reg.plan.seed, &scope, site, hit) % 1000 >= p as u64 {
                continue;
            }
        }
        reg.injected.fetch_add(1, Ordering::Relaxed);
        reg.spec_fired[idx].fetch_add(1, Ordering::Relaxed);
        let fired = FiredFault {
            scope: scope.clone(),
            site: site.to_string(),
            hit,
            kind: spec.kind.tag(),
        };
        lock(&reg.fired).push(fired.clone());
        return Some((spec.kind, fired));
    }
    None
}

/// Execute a fault [`check`] returned: delay sleeps and returns `false`,
/// budget returns `true` (the site truncates its search), panic and
/// transient unwind with an [`InjectedFault`] payload.
pub fn execute(site: &str, kind: FaultKind) -> bool {
    match kind {
        FaultKind::Delay(d) => {
            std::thread::sleep(d);
            false
        }
        FaultKind::Budget => true,
        FaultKind::Panic | FaultKind::Transient => {
            let scope = current_scope();
            let hit = {
                // check() already advanced the counter past this hit.
                let slot = registry().read().unwrap_or_else(|e| e.into_inner());
                slot.as_ref()
                    .map(|r| {
                        lock(&r.hits)
                            .get(&(scope.clone(), site.to_string()))
                            .copied()
                            .unwrap_or(1)
                            .saturating_sub(1)
                    })
                    .unwrap_or(0)
            };
            std::panic::panic_any(InjectedFault {
                site: site.to_string(),
                scope,
                hit,
                transient: kind == FaultKind::Transient,
            })
        }
    }
}

/// [`check`] + [`execute`] in one call: the shape instrumented sites
/// use. Returns `true` exactly when a budget-exhaustion fault fired.
pub fn trip(site: &str) -> bool {
    match check(site) {
        None => false,
        Some(kind) => execute(site, kind),
    }
}

/// Downcast a caught panic payload to the injected-fault description
/// (None for organic panics).
pub fn injected(payload: &(dyn std::any::Any + Send)) -> Option<&InjectedFault> {
    payload.downcast_ref::<InjectedFault>()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_the_readme_example() {
        let plan =
            FaultPlan::parse("seed=42; CPA/view.sync#0=panic, search.candidate#2=budget;V2/view.sync=transient ; index.build%250=delay:5")
                .expect("parses");
        assert_eq!(plan.seed, 42);
        assert_eq!(plan.specs.len(), 4);
        assert_eq!(plan.specs[0].scope.as_deref(), Some("CPA"));
        assert_eq!(plan.specs[0].site, "view.sync");
        assert_eq!(plan.specs[0].hit, Some(0));
        assert_eq!(plan.specs[0].kind, FaultKind::Panic);
        assert_eq!(plan.specs[1].scope, None);
        assert_eq!(plan.specs[1].kind, FaultKind::Budget);
        assert_eq!(plan.specs[2].hit, None);
        assert_eq!(plan.specs[2].kind, FaultKind::Transient);
        assert_eq!(plan.specs[3].permille, Some(250));
        assert_eq!(
            plan.specs[3].kind,
            FaultKind::Delay(Duration::from_millis(5))
        );
    }

    #[test]
    fn parse_rejects_malformed_entries() {
        assert!(FaultPlan::parse("view.sync").is_err());
        assert!(FaultPlan::parse("=panic").is_err());
        assert!(FaultPlan::parse("view.sync=explode").is_err());
        assert!(FaultPlan::parse("view.sync#x=panic").is_err());
        assert!(FaultPlan::parse("seed=notanumber").is_err());
        assert!(FaultPlan::parse("").expect("empty ok").specs.is_empty());
    }

    #[test]
    fn hits_are_counted_per_scope() {
        let _serial = serial_guard();
        let _ = uninstall();
        install(FaultPlan::parse("A/site.x#1=budget").unwrap()).unwrap();
        // Global (unscoped) hits do not advance A's counter.
        assert!(!trip("site.x"));
        assert!(!trip("site.x"));
        scoped("A", || {
            assert!(!trip("site.x"), "A hit 0 must not fire");
            assert!(trip("site.x"), "A hit 1 fires");
            assert!(!trip("site.x"), "A hit 2 must not fire");
        });
        scoped("B", || {
            assert!(!trip("site.x"), "B's counter is independent");
        });
        let report = uninstall().unwrap();
        assert_eq!(report.injected, 1);
        assert_eq!(
            report.fired,
            vec![FiredFault {
                scope: "A".into(),
                site: "site.x".into(),
                hit: 1,
                kind: "budget"
            }]
        );
    }

    #[test]
    fn injected_panic_carries_payload_and_pops_scope() {
        let _serial = serial_guard();
        let _ = uninstall();
        install(FaultPlan::parse("V/site.y#0=transient").unwrap()).unwrap();
        let caught = std::panic::catch_unwind(|| scoped("V", || trip("site.y")));
        let payload = caught.expect_err("must unwind");
        let fault = injected(payload.as_ref()).expect("typed payload");
        assert_eq!(
            fault,
            &InjectedFault {
                site: "site.y".into(),
                scope: "V".into(),
                hit: 0,
                transient: true
            }
        );
        assert_eq!(
            fault.to_string(),
            "injected transient fault at V/site.y (hit 0)"
        );
        // The unwind popped the scope.
        assert_eq!(current_scope(), "");
        uninstall().unwrap();
    }

    #[test]
    fn permille_is_deterministic_for_a_seed() {
        let _serial = serial_guard();
        let run = |seed: u64| -> Vec<u64> {
            let _ = uninstall();
            install(FaultPlan {
                seed,
                specs: vec![FaultSpec {
                    site: "site.z".into(),
                    scope: None,
                    hit: None,
                    permille: Some(300),
                    kind: FaultKind::Budget,
                }],
            })
            .unwrap();
            let mut fired_at = Vec::new();
            for i in 0..200u64 {
                if trip("site.z") {
                    fired_at.push(i);
                }
            }
            uninstall().unwrap();
            fired_at
        };
        let a = run(7);
        assert_eq!(a, run(7), "same seed, same firings");
        assert!(
            !a.is_empty() && a.len() < 200,
            "~30% firing rate, got {}",
            a.len()
        );
        assert_ne!(a, run(8), "different seed, different firings");
    }

    #[test]
    fn unfired_specs_are_reported_and_render_to_the_grammar() {
        let _serial = serial_guard();
        let _ = uninstall();
        let plan = FaultPlan::parse(
            "seed=9; A/site.x#0=budget; ghost.site=panic; B/site.x#7%500=delay:25",
        )
        .unwrap();
        install(plan).unwrap();
        scoped("A", || {
            assert!(trip("site.x"));
        });
        let report = uninstall().unwrap();
        assert_eq!(report.injected, 1);
        // The fired spec is absent; the dead ones come back verbatim.
        let rendered: Vec<String> = report.unfired.iter().map(|s| s.to_string()).collect();
        assert_eq!(
            rendered,
            vec!["ghost.site=panic", "B/site.x#7%500=delay:25"]
        );
        // Display round-trips through the parser.
        for (spec, text) in report.unfired.iter().zip(&rendered) {
            let reparsed = FaultPlan::parse(text).unwrap();
            assert_eq!(&reparsed.specs[0], spec);
        }
    }

    #[test]
    fn install_is_exclusive_and_uninstall_reports() {
        let _serial = serial_guard();
        let _ = uninstall();
        assert_eq!(uninstall(), None);
        install(FaultPlan::new(1)).unwrap();
        assert!(active());
        assert_eq!(install(FaultPlan::new(2)), Err(AlreadyInstalled));
        assert_eq!(uninstall(), Some(FaultReport::default()));
        assert!(!active());
    }
}
