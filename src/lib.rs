//! # EVE — Evolvable View Environment
//!
//! Umbrella crate for the reproduction of *"The CVS Algorithm for View
//! Synchronization in Evolvable Large-Scale Information Systems"* (Nica,
//! Lee, Rundensteiner, EDBT 1998).
//!
//! Re-exports the component crates under stable module names:
//!
//! * [`relational`] — in-memory relational engine (values, algebra, extent
//!   comparison);
//! * [`esql`] — the E-SQL language (SQL + view-evolution preferences);
//! * [`misd`] — the MISD information-source description model and the meta
//!   knowledge base (MKB);
//! * [`hypergraph`] — the hypergraph `H(MKB)` over which CVS searches;
//! * [`cvs`] — the CVS view-synchronization algorithm, the SVS baseline,
//!   and the end-to-end synchronizer;
//! * [`workload`] — the paper's travel-agency fixture and synthetic
//!   generators;
//! * [`telemetry`] — hierarchical spans, the metrics registry, and the
//!   trace sinks instrumenting the whole sync pipeline;
//! * [`faults`] — deterministic, seeded fault injection (panic /
//!   transient / delay / budget) addressed by site name + hit count,
//!   driving the retry/degrade failure policies;
//! * [`sim`] — the deterministic whole-system simulator (seeded
//!   schedules over changes, rollbacks, queries and fault episodes,
//!   with continuous invariant checking and schedule shrinking).
//!
//! See `README.md` for a quickstart, `DESIGN.md` for the system inventory,
//! and `EXPERIMENTS.md` for the paper-versus-measured record.
//!
//! ## Example
//!
//! ```
//! use eve::prelude::*;
//! use eve::misd::parse_misd;
//! use eve::relational::RelName;
//!
//! let mkb = parse_misd(
//!     "RELATION StoreIS orders(id int, customer str)
//!      RELATION LogisticsIS shipments(order_id int, recipient str)
//!      JOIN J1: orders, shipments ON orders.id = shipments.order_id
//!      FUNCOF F1: orders.customer = shipments.recipient
//!      FUNCOF F2: orders.id = shipments.order_id",
//! ).expect("well-formed MISD");
//!
//! let view = parse_view(
//!     "CREATE VIEW Buyers (VE = superset) AS
//!      SELECT O.customer (false, true), O.id (true, true), S.order_id (true, true)
//!      FROM orders O (true, true), shipments S (true, true)
//!      WHERE (O.id = S.order_id) (false, true)",
//! ).expect("well-formed E-SQL");
//!
//! let mut sync = SynchronizerBuilder::new(mkb)
//!     .with_view(view).expect("valid view")
//!     .build();
//! let outcome = sync
//!     .apply(&CapabilityChange::DeleteRelation(RelName::new("orders")))
//!     .expect("MKB evolves");
//! assert_eq!(outcome.rewritten(), 1);
//! assert!(!sync.view("Buyers").unwrap().uses_relation(&RelName::new("orders")));
//! ```

#![forbid(unsafe_code)]

pub use eve_core as cvs;
pub use eve_esql as esql;
pub use eve_faults as faults;
pub use eve_hypergraph as hypergraph;
pub use eve_misd as misd;
pub use eve_relational as relational;
pub use eve_sim as sim;
pub use eve_telemetry as telemetry;
pub use eve_workload as workload;

/// Commonly used items, for `use eve::prelude::*`.
pub mod prelude {
    pub use eve_core::{
        ChangeOutcome, CostModel, CvsOptions, FailurePolicy, LegalRewriting, SyncReport,
        Synchronizer, SynchronizerBuilder,
    };
    pub use eve_esql::{parse_view, ViewDefinition};
    pub use eve_misd::{CapabilityChange, MetaKnowledgeBase};
    pub use eve_relational::{Database, ExtentRelation, FuncRegistry, Value};
}
