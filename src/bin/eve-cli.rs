//! `eve-cli` — command-line front end to the EVE view synchronizer.
//!
//! ```text
//! eve-cli mkb <mkb.misd>                          # parse + validate + summarise an MKB
//! eve-cli dot <mkb.misd>                          # hypergraph H(MKB) as Graphviz DOT
//! eve-cli views <views.esql> [--mkb <mkb.misd>]   # parse/validate/typecheck E-SQL views
//! eve-cli sync --mkb <mkb.misd> --views <views.esql> \
//!          (--change "delete-relation Customer" [--change ...] | --snapshot <new.misd>)
//!          [--at-version <n>] [--cost] [--require-p3] [--explain]
//!          [--trace] [--trace-out <trace.jsonl>] [--faults "<plan>"] [--fail-fast]
//! eve-cli history --mkb <mkb.misd> --views <views.esql> \
//!          --change "<op> ..." [--change ...]     # version chain + delta summaries
//! eve-cli metrics-serve [--addr 127.0.0.1:9187] [--requests <n>] \
//!          [--mkb <mkb.misd> --views <views.esql> --change "<op> ..." [--change ...]]
//! eve-cli simulate [--seed <n>] [--steps <n>] [--profile smoke|standard|soak] \
//!          [--destructive] [--canary <n>] [--artifact <file>] [--no-shrink] \
//!          [--replay <artifact>]
//! ```
//!
//! `sync --at-version <n>` time-travels after the changes apply: instead
//! of the final surviving views it prints the views as recorded at chain
//! version `n` (0 = the initial state, `i` = after the `i`-th change),
//! reconstructed from the synchronizer's structurally-shared version
//! chain. `history` applies the changes and renders the whole chain —
//! one line per version with the change that produced it and the delta
//! summary of what the incremental index maintenance did (constraints
//! dropped, maps shared vs rebuilt).
//!
//! `--trace` prints the per-phase timing tree (apply → per-view sync →
//! index build → tree enumeration → ranking) and a metrics summary after
//! the sync report; `--trace-out <file>` additionally streams every span
//! and final metric as JSON lines to `<file>`. Either flag enables the
//! telemetry pipeline for the run.
//!
//! `--faults "<plan>"` installs a deterministic fault plan for the run
//! (grammar: `[scope/]site[#hit][%permille]=panic|transient|budget|`
//! `delay[:millis]`, entries separated by `;`, plus an optional
//! `seed=N` entry) and switches the synchronizer to the
//! `Degrade` failure policy, so injected view failures are contained,
//! retried, and reported instead of aborting the process. `--fail-fast`
//! keeps the default fail-fast policy even under a fault plan. A fault
//! report (sites fired, faults injected) is printed after the run.
//!
//! `--flight-recorder <dump.jsonl>` arms the telemetry flight recorder
//! for the sync: recent spans, counter deltas, and fault firings are
//! kept in bounded per-thread rings, and when a view fails — `FailFast`
//! surfacing a `SyncPanic` or `Degrade` landing a failed view — the
//! merged window is written to `<dump.jsonl>` as a canonical (sorted,
//! timing-free) JSONL crash dump that is byte-identical across reruns
//! and worker counts for the same pinned fault seed.
//!
//! `simulate` runs the deterministic whole-system simulator: a seeded
//! schedule of capability changes, queries, previews, rollbacks,
//! virtual-clock ticks, and fault episodes, with invariants checked
//! continuously. The seed is echoed first (a fresh one is drawn from
//! the system clock when `--seed` is omitted) and the outcome digest
//! printed last — the same seed, steps, and profile reproduce the
//! digest byte-for-byte, whatever `EVE_PARALLELISM` is. On an invariant
//! violation the exit code is 1 and a self-contained repro artifact
//! (config + schedule + flight-recorder dump) is written; unless
//! `--no-shrink` is given the schedule is then delta-debugged to a
//! minimal failing core, saved next to the artifact as `<file>.min`.
//! `--replay <artifact>` re-executes a saved artifact's schedule
//! instead of generating one.
//!
//! `metrics-serve` exposes the telemetry registry over HTTP
//! (`/metrics` in Prometheus text format, `/snapshot` as JSON,
//! `/health`); with a workload (`--mkb`/`--views`/`--change`) it runs
//! one sync first so there is something to scrape, and `--requests <n>`
//! exits after `n` requests (for smoke tests).
//!
//! File formats: the MISD textual format (`RELATION`/`JOIN`/`FUNCOF`/
//! `PC`/`ORDER` statements) and E-SQL (`CREATE VIEW …` statements,
//! semicolon-separated). Changes use the paper's operator notation, e.g.
//! `delete-attribute Customer.Addr` or `rename-relation Tour -> Trip`.

use eve::cvs::{
    explain_rewriting_with_stats, CostModel, CvsOptions, FailurePolicy, SynchronizerBuilder,
    ViewOutcome,
};
use eve::esql::{parse_views, validate_view};
use eve::hypergraph::{dot, Hypergraph};
use eve::misd::{check_mkb, check_view, parse_misd, CapabilityChange, MetaKnowledgeBase};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("mkb") => cmd_mkb(&args[1..]),
        Some("dot") => cmd_dot(&args[1..]),
        Some("views") => cmd_views(&args[1..]),
        Some("sync") => cmd_sync(&args[1..]),
        Some("history") => cmd_history(&args[1..]),
        Some("metrics-serve") => cmd_metrics_serve(&args[1..]),
        Some("simulate") => cmd_simulate(&args[1..]),
        _ => {
            eprintln!(
                "usage:\n  eve-cli mkb <mkb.misd>\n  eve-cli dot <mkb.misd>\n  \
                 eve-cli views <views.esql> [--mkb <mkb.misd>]\n  \
                 eve-cli sync --mkb <mkb.misd> --views <views.esql> \
                 (--change \"<op> ...\" [--change ...] | --snapshot <new.misd>) \
                 [--at-version <n>] \
                 [--cost] [--require-p3] [--explain] [--trace] [--trace-out <trace.jsonl>] \
                 [--faults \"<plan>\"] [--fail-fast] [--flight-recorder <dump.jsonl>]\n  \
                 eve-cli history --mkb <mkb.misd> --views <views.esql> \
                 --change \"<op> ...\" [--change ...]\n  \
                 eve-cli metrics-serve [--addr <host:port>] [--requests <n>] \
                 [--mkb <mkb.misd> --views <views.esql> --change \"<op> ...\" [--change ...]]\n  \
                 eve-cli simulate [--seed <n>] [--steps <n>] \
                 [--profile smoke|standard|soak] [--destructive] [--canary <n>] \
                 [--artifact <file>] [--no-shrink] [--replay <artifact>]"
            );
            ExitCode::from(2)
        }
    }
}

fn read(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))
}

fn load_mkb(path: &str) -> Result<MetaKnowledgeBase, String> {
    let text = read(path)?;
    parse_misd(&text).map_err(|e| format!("{path}: {e}"))
}

fn fail(msg: String) -> ExitCode {
    eprintln!("error: {msg}");
    ExitCode::FAILURE
}

fn cmd_mkb(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else {
        return fail("mkb: missing file argument".into());
    };
    let mkb = match load_mkb(path) {
        Ok(m) => m,
        Err(e) => return fail(e),
    };
    let type_errors = check_mkb(&mkb);
    println!(
        "{path}: {} relations, {} join constraints, {} function-of, {} PC, {} order",
        mkb.relation_count(),
        mkb.joins().len(),
        mkb.function_ofs().len(),
        mkb.pcs().len(),
        mkb.orders().len()
    );
    let h = Hypergraph::build(&mkb);
    print!("{}", dot::component_summary(&h));
    if type_errors.is_empty() {
        println!("type check: ok");
        ExitCode::SUCCESS
    } else {
        for e in &type_errors {
            eprintln!("type error: {e}");
        }
        ExitCode::FAILURE
    }
}

fn cmd_dot(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else {
        return fail("dot: missing file argument".into());
    };
    match load_mkb(path) {
        Ok(mkb) => {
            print!("{}", dot::mkb_to_dot(&mkb));
            ExitCode::SUCCESS
        }
        Err(e) => fail(e),
    }
}

fn cmd_views(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else {
        return fail("views: missing file argument".into());
    };
    let mkb = match flag_value(args, "--mkb") {
        Some(p) => match load_mkb(&p) {
            Ok(m) => Some(m),
            Err(e) => return fail(e),
        },
        None => None,
    };
    let text = match read(path) {
        Ok(t) => t,
        Err(e) => return fail(e),
    };
    let views = match parse_views(&text) {
        Ok(v) => v,
        Err(e) => return fail(format!("{path}: {e}")),
    };
    let mut bad = false;
    for v in &views {
        let mut problems: Vec<String> = validate_view(v).iter().map(|e| e.to_string()).collect();
        if let Some(m) = &mkb {
            problems.extend(check_view(v, m).iter().map(|e| e.to_string()));
        }
        if problems.is_empty() {
            println!(
                "{}: ok ({} columns, {} relations)",
                v.name,
                v.select.len(),
                v.from.len()
            );
        } else {
            bad = true;
            for p in problems {
                eprintln!("{}: {p}", v.name);
            }
        }
    }
    if bad {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn flag_values(args: &[String], flag: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if args[i] == flag {
            if let Some(v) = args.get(i + 1) {
                out.push(v.clone());
                i += 1;
            }
        }
        i += 1;
    }
    out
}

/// `history`: apply a change sequence and render the resulting version
/// chain — one line per version with the producing change and, when the
/// index was maintained incrementally, the delta summary.
fn cmd_history(args: &[String]) -> ExitCode {
    let Some(mkb_path) = flag_value(args, "--mkb") else {
        return fail("history: missing --mkb <file>".into());
    };
    let Some(views_path) = flag_value(args, "--views") else {
        return fail("history: missing --views <file>".into());
    };
    let change_texts = flag_values(args, "--change");
    if change_texts.is_empty() {
        return fail("history: at least one --change \"<op> ...\" required".into());
    }
    let mkb = match load_mkb(&mkb_path) {
        Ok(m) => m,
        Err(e) => return fail(e),
    };
    let views_text = match read(&views_path) {
        Ok(t) => t,
        Err(e) => return fail(e),
    };
    let views = match parse_views(&views_text) {
        Ok(v) => v,
        Err(e) => return fail(format!("{views_path}: {e}")),
    };
    let changes: Vec<CapabilityChange> = match change_texts
        .iter()
        .map(|t| CapabilityChange::parse(t).map_err(|e| format!("--change {t:?}: {e}")))
        .collect()
    {
        Ok(c) => c,
        Err(e) => return fail(e),
    };
    let mut builder = SynchronizerBuilder::new(mkb);
    for v in views {
        builder = match builder.with_view(v.clone()) {
            Ok(b) => b,
            Err(e) => return fail(format!("view {}: {e}", v.name)),
        };
    }
    let mut sync = builder.build();
    if let Err(e) = sync.apply_all(&changes) {
        return fail(format!("MKB evolution failed: {e}"));
    }
    println!("version chain (head v{}):", sync.version());
    for entry in sync.chain() {
        let label = match entry.change() {
            Some(c) => c.to_string(),
            None => "initial".to_string(),
        };
        println!(
            "v{}: {label} ({} relations, {} views, {} disabled)",
            entry.version,
            entry.snapshot.mkb.relation_count(),
            entry.snapshot.views.len(),
            entry.snapshot.disabled.len()
        );
        if let Some(d) = &entry.delta {
            println!("    delta {d}");
        }
    }
    ExitCode::SUCCESS
}

fn cmd_sync(args: &[String]) -> ExitCode {
    let Some(mkb_path) = flag_value(args, "--mkb") else {
        return fail("sync: missing --mkb <file>".into());
    };
    let Some(views_path) = flag_value(args, "--views") else {
        return fail("sync: missing --views <file>".into());
    };
    let change_texts = flag_values(args, "--change");
    let snapshot_path = flag_value(args, "--snapshot");
    if change_texts.is_empty() && snapshot_path.is_none() {
        return fail(
            "sync: at least one --change \"<op> ...\" or a --snapshot <mkb.misd> required".into(),
        );
    }
    let at_version = match flag_value(args, "--at-version") {
        Some(v) => match v.parse::<usize>() {
            Ok(n) => Some(n),
            Err(_) => {
                return fail(format!(
                    "sync: --at-version {v:?}: expected a version number"
                ))
            }
        },
        None => None,
    };
    let use_cost = args.iter().any(|a| a == "--cost");
    let require_p3 = args.iter().any(|a| a == "--require-p3");
    let explain = args.iter().any(|a| a == "--explain");
    let trace = args.iter().any(|a| a == "--trace");
    let trace_out = flag_value(args, "--trace-out");
    let faults_plan = flag_value(args, "--faults");
    let fail_fast = args.iter().any(|a| a == "--fail-fast");
    let flight_path = flag_value(args, "--flight-recorder");

    let mkb = match load_mkb(&mkb_path) {
        Ok(m) => m,
        Err(e) => return fail(e),
    };
    let views_text = match read(&views_path) {
        Ok(t) => t,
        Err(e) => return fail(e),
    };
    let views = match parse_views(&views_text) {
        Ok(v) => v,
        Err(e) => return fail(format!("{views_path}: {e}")),
    };
    let changes: Vec<CapabilityChange> = match change_texts
        .iter()
        .map(|t| CapabilityChange::parse(t).map_err(|e| format!("--change {t:?}: {e}")))
        .collect()
    {
        Ok(c) => c,
        Err(e) => return fail(e),
    };

    // A fault plan without --fail-fast switches to the Degrade policy so
    // injected failures are contained per view instead of aborting.
    let mut options = CvsOptions::default();
    if faults_plan.is_some() && !fail_fast {
        options.failure = FailurePolicy::degrade();
    }
    let faults_active = if let Some(plan_text) = &faults_plan {
        let plan = match eve::faults::FaultPlan::parse(plan_text) {
            Ok(p) => p,
            Err(e) => return fail(format!("--faults: {e}")),
        };
        if eve::faults::install(plan).is_err() {
            return fail("--faults: a fault plan is already installed".into());
        }
        // Under Degrade, injected faults are caught at the parpool task
        // boundary, but the default panic hook would still print a
        // backtrace for each one — silence those while letting organic
        // panics report as usual. Under --fail-fast the injected panic
        // is the diagnostic for the abort, so the hook stays.
        if !fail_fast {
            let default_hook = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                if eve::faults::injected(info.payload()).is_none() {
                    default_hook(info);
                }
            }));
        }
        true
    } else {
        false
    };

    let mut builder = SynchronizerBuilder::new(mkb)
        .with_options(options)
        .require_p3(require_p3);
    if use_cost {
        builder = builder.with_cost_model(CostModel::default());
    }
    for v in views {
        builder = match builder.with_view(v.clone()) {
            Ok(b) => b,
            Err(e) => return fail(format!("view {}: {e}", v.name)),
        };
    }
    // Telemetry is installed before the synchronizer runs so every span —
    // apply, per-view sync, index build, tree enumeration, ranking — lands
    // in the collector and (with --trace-out) the JSONL file.
    let collector = if trace || trace_out.is_some() {
        let collector = eve::telemetry::Collector::new();
        let mut sinks: Vec<std::sync::Arc<dyn eve::telemetry::Sink>> = vec![collector.clone()];
        if let Some(path) = &trace_out {
            match eve::telemetry::JsonlSink::create(path) {
                Ok(sink) => sinks.push(std::sync::Arc::new(sink)),
                Err(e) => return fail(format!("cannot create {path}: {e}")),
            }
        }
        if eve::telemetry::install(sinks).is_err() {
            return fail("trace: telemetry pipeline already installed".into());
        }
        Some(collector)
    } else {
        None
    };
    // The flight recorder rides on the telemetry hooks, so it needs a
    // pipeline even when no trace sink was requested: install a
    // sink-less one just for the recorder's benefit.
    let flight_pipeline = flight_path.is_some() && collector.is_none() && {
        if eve::telemetry::install(vec![]).is_err() {
            return fail("--flight-recorder: telemetry pipeline already installed".into());
        }
        true
    };
    if let Some(path) = &flight_path {
        if eve::telemetry::flight_install(4096, Some(path.into())).is_err() {
            return fail("--flight-recorder: a flight recorder is already installed".into());
        }
    }

    let mut sync = builder.build();
    // Snapshot originals so explanations can diff against them — cheap
    // Arc handles into the synchronizer's copy-on-write state.
    let originals = sync.view_snapshots();
    let applied = if let Some(snap_path) = snapshot_path {
        match load_mkb(&snap_path) {
            Ok(snapshot) => sync.sync_to(&snapshot),
            Err(e) => return fail(e),
        }
    } else {
        sync.apply_all(&changes)
    };
    let code = match applied {
        Ok(report) => {
            for outcome in &report.outcomes {
                println!("{outcome}");
                println!(
                    "  index cache: {} hits, {} misses",
                    outcome.cache.hits, outcome.cache.misses
                );
                for (name, view_outcome) in &outcome.views {
                    if let ViewOutcome::Rewritten { stats, .. } = view_outcome {
                        println!(
                            "  search {name}: {} generated, {} pruned, {} kept, {} trees{}",
                            stats.generated,
                            stats.pruned,
                            stats.kept,
                            stats.trees_enumerated,
                            if stats.budget_exhausted {
                                " (budget exhausted)"
                            } else {
                                ""
                            }
                        );
                    }
                }
                if explain {
                    for (name, view_outcome) in &outcome.views {
                        if let ViewOutcome::Rewritten { chosen, stats, .. } = view_outcome {
                            if let Some((_, orig)) = originals.iter().find(|(n, _)| n == name) {
                                println!("explanation for {name}:");
                                print!(
                                    "{}",
                                    explain_rewriting_with_stats(orig, chosen, Some(stats))
                                );
                            }
                        }
                    }
                    println!();
                }
            }
            match at_version {
                Some(n) => {
                    // Time-travel: reconstruct the requested chain version
                    // and print its views instead of the final state.
                    let Some(past) = sync.at_version(n) else {
                        return fail(format!(
                            "sync: --at-version {n} out of range (head is v{})",
                            sync.version()
                        ));
                    };
                    match past.chain().last().and_then(|e| e.change()) {
                        Some(c) => println!("views at version {n} (after {c}):"),
                        None => println!("views at version {n} (initial state):"),
                    }
                    for v in past.views() {
                        println!("\n{v}");
                    }
                }
                None => {
                    println!("surviving views:");
                    for v in sync.views() {
                        println!("\n{v}");
                    }
                }
            }
            let failed: usize = report.outcomes.iter().map(|o| o.failed()).sum();
            if report.disabled() > 0 {
                eprintln!(
                    "\n{} view(s) disabled ({} of them failed)",
                    report.disabled(),
                    failed
                );
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(e) => fail(format!("MKB evolution failed: {e}")),
    };
    if faults_active {
        if let Some(fault_report) = eve::faults::uninstall() {
            println!(
                "\nfault report: {} fault(s) injected",
                fault_report.injected
            );
            for f in &fault_report.fired {
                if f.scope.is_empty() {
                    println!("  {} at {} (hit {})", f.kind, f.site, f.hit);
                } else {
                    println!("  {} at {}/{} (hit {})", f.kind, f.scope, f.site, f.hit);
                }
            }
        }
    }
    if let Some(path) = &flight_path {
        if eve::telemetry::flight_last_dump().is_some() {
            eprintln!("flight dump written to {path}");
        }
        eve::telemetry::flight_uninstall();
    }
    if let Some(collector) = collector {
        // Uninstall flushes the final metric lines into the JSONL sink
        // and hands back the registry snapshot for the summary.
        let snapshot = eve::telemetry::uninstall();
        if trace {
            println!("\ntrace:");
            print!("{}", eve::telemetry::render_tree(&collector.spans()));
            if let Some(snapshot) = &snapshot {
                println!("metrics:");
                print!("{}", eve::telemetry::render_metrics(snapshot));
            }
        }
    } else if flight_pipeline {
        eve::telemetry::uninstall();
    }
    code
}

/// `metrics-serve`: expose the telemetry registry over HTTP. With a
/// workload (`--mkb`/`--views`/`--change`) one sync runs first so the
/// registry has counters, gauges, and histograms to scrape; without
/// one, the endpoint serves an empty (but valid) registry.
fn cmd_metrics_serve(args: &[String]) -> ExitCode {
    let addr = flag_value(args, "--addr").unwrap_or_else(|| "127.0.0.1:9187".to_string());
    let requests = match flag_value(args, "--requests") {
        Some(v) => match v.parse::<u64>() {
            Ok(n) => Some(n),
            Err(_) => return fail(format!("metrics-serve: --requests {v:?}: expected a count")),
        },
        None => None,
    };
    if eve::telemetry::install(vec![]).is_err() {
        return fail("metrics-serve: telemetry pipeline already installed".into());
    }

    // Optional workload: populate the registry with one real sync.
    if let Some(mkb_path) = flag_value(args, "--mkb") {
        let Some(views_path) = flag_value(args, "--views") else {
            return fail("metrics-serve: --mkb requires --views <file>".into());
        };
        let change_texts = flag_values(args, "--change");
        if change_texts.is_empty() {
            return fail("metrics-serve: --mkb requires at least one --change \"<op> ...\"".into());
        }
        let mkb = match load_mkb(&mkb_path) {
            Ok(m) => m,
            Err(e) => return fail(e),
        };
        let views_text = match read(&views_path) {
            Ok(t) => t,
            Err(e) => return fail(e),
        };
        let views = match parse_views(&views_text) {
            Ok(v) => v,
            Err(e) => return fail(format!("{views_path}: {e}")),
        };
        let changes: Vec<CapabilityChange> = match change_texts
            .iter()
            .map(|t| CapabilityChange::parse(t).map_err(|e| format!("--change {t:?}: {e}")))
            .collect()
        {
            Ok(c) => c,
            Err(e) => return fail(e),
        };
        let mut builder = SynchronizerBuilder::new(mkb);
        for v in views {
            builder = match builder.with_view(v.clone()) {
                Ok(b) => b,
                Err(e) => return fail(format!("view {}: {e}", v.name)),
            };
        }
        let mut sync = builder.build();
        if let Err(e) = sync.apply_all(&changes) {
            return fail(format!("MKB evolution failed: {e}"));
        }
    }

    let server = match eve::telemetry::serve::MetricsServer::bind(addr.as_str()) {
        Ok(s) => s,
        Err(e) => return fail(format!("metrics-serve: cannot bind {addr}: {e}")),
    };
    match server.local_addr() {
        Ok(local) => println!("eve-cli metrics-serve: listening on http://{local}"),
        Err(_) => println!("eve-cli metrics-serve: listening on http://{addr}"),
    }
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    match requests {
        Some(n) => {
            for _ in 0..n {
                if let Err(e) = server.handle_one() {
                    eprintln!("metrics-serve: connection error: {e}");
                }
            }
        }
        None => {
            // serve() only returns on a fatal accept error.
            if let Err(e) = server.serve() {
                eve::telemetry::uninstall();
                return fail(format!("metrics-serve: {e}"));
            }
        }
    }
    eve::telemetry::uninstall();
    ExitCode::SUCCESS
}

/// `simulate`: deterministic whole-system simulation with repro
/// artifacts and schedule shrinking on invariant violations.
fn cmd_simulate(args: &[String]) -> ExitCode {
    use eve::sim::{parse_artifact, render_artifact, run, run_trace, shrink, Profile, SimConfig};

    // Replay mode: the artifact carries the whole config.
    if let Some(path) = flag_value(args, "--replay") {
        let text = match read(&path) {
            Ok(t) => t,
            Err(e) => return fail(e),
        };
        let artifact = match parse_artifact(&text) {
            Ok(a) => a,
            Err(e) => return fail(format!("{path}: {e}")),
        };
        println!(
            "sim replay: seed={} profile={} trace={} actions (expecting [{}] at step {})",
            artifact.config.seed,
            artifact.config.profile.name(),
            artifact.trace.len(),
            artifact.violation.invariant,
            artifact.violation.step,
        );
        let report = run_trace(&artifact.config, &artifact.trace);
        println!("sim digest={}", report.digest_hex());
        return match report.violation {
            Some(v) if v.invariant == artifact.violation.invariant => {
                println!("sim replay: reproduced: {v}");
                ExitCode::FAILURE
            }
            Some(v) => {
                println!("sim replay: DIFFERENT violation: {v}");
                ExitCode::FAILURE
            }
            None => {
                println!("sim replay: did NOT reproduce (clean run)");
                ExitCode::SUCCESS
            }
        };
    }

    let seed = match flag_value(args, "--seed") {
        Some(v) => match v.parse::<u64>() {
            Ok(n) => n,
            Err(_) => return fail(format!("simulate: --seed {v:?}: expected an integer")),
        },
        // Fresh seed from the wall clock — echoed below so any run can
        // be reproduced exactly.
        None => std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x5EED),
    };
    let steps = match flag_value(args, "--steps") {
        Some(v) => match v.parse::<usize>() {
            Ok(n) => n,
            Err(_) => return fail(format!("simulate: --steps {v:?}: expected a count")),
        },
        None => 1000,
    };
    let profile = match flag_value(args, "--profile") {
        Some(v) => match Profile::parse(&v) {
            Some(p) => p,
            None => {
                return fail(format!(
                    "simulate: --profile {v:?}: expected smoke|standard|soak"
                ))
            }
        },
        None => Profile::Standard,
    };
    let mut config = SimConfig::new(seed, steps);
    config.profile = profile;
    config.destructive = args.iter().any(|a| a == "--destructive");
    config.canary = match flag_value(args, "--canary") {
        Some(v) => match v.parse::<u64>() {
            Ok(n) => Some(n),
            Err(_) => return fail(format!("simulate: --canary {v:?}: expected a count")),
        },
        None => None,
    };
    println!(
        "sim seed={seed} steps={steps} profile={}{}{}",
        profile.name(),
        if config.destructive {
            " destructive"
        } else {
            ""
        },
        match config.canary {
            Some(n) => format!(" canary={n}"),
            None => String::new(),
        },
    );

    // Arm the flight recorder so a violation comes with recent spans,
    // counters, and fault firings for post-mortem context.
    let flight_armed = eve::telemetry::flight_install(4096, None).is_ok();
    let report = run(&config);
    let flight_lines: Vec<String> = if report.violation.is_some() {
        eve::telemetry::flight_dump()
            .map(|d| d.lines().map(str::to_string).collect())
            .unwrap_or_default()
    } else {
        Vec::new()
    };
    if flight_armed {
        let _ = eve::telemetry::flight_uninstall();
    }

    let s = &report.stats;
    println!(
        "sim executed {} steps: {} changes, {} view registrations, {} queries, {} previews, \
         {} rollbacks, {} fault episodes ({} faults fired), {} replay checks, {} full sweeps, \
         {} skipped",
        report.steps_executed,
        s.changes,
        s.registrations,
        s.queries,
        s.previews,
        s.rollbacks,
        s.fault_episodes,
        s.faults_fired,
        s.replays,
        s.full_checks,
        s.skipped,
    );
    println!("sim digest={}", report.digest_hex());

    let Some(violation) = report.violation else {
        return ExitCode::SUCCESS;
    };
    eprintln!("sim INVARIANT VIOLATION: {violation}");

    let artifact_path =
        flag_value(args, "--artifact").unwrap_or_else(|| format!("sim-repro-{seed}.txt"));
    let text = render_artifact(&config, &report.trace, &violation, &flight_lines);
    if let Err(e) = std::fs::write(&artifact_path, &text) {
        return fail(format!("simulate: cannot write {artifact_path}: {e}"));
    }
    println!(
        "sim repro artifact: {artifact_path} ({} actions)",
        report.trace.len()
    );

    if !args.iter().any(|a| a == "--no-shrink") {
        let shrunk = shrink(&config, &report.trace, &violation, 500);
        println!(
            "sim shrunk schedule: {} -> {} actions ({} oracle runs): {}",
            report.trace.len(),
            shrunk.trace.len(),
            shrunk.runs,
            shrunk.violation,
        );
        let min_path = format!("{artifact_path}.min");
        let min_text = render_artifact(&config, &shrunk.trace, &shrunk.violation, &[]);
        if let Err(e) = std::fs::write(&min_path, &min_text) {
            return fail(format!("simulate: cannot write {min_path}: {e}"));
        }
        println!("sim shrunk artifact: {min_path}");
    }
    ExitCode::FAILURE
}
