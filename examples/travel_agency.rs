//! The paper's running example, end to end: the travel agency of
//! Example 1, the Fig. 2 MKB, the `Customer-Passengers-Asia` view of
//! Eq. (5), and the `delete-relation Customer` change of Examples 5–10 —
//! with every legal rewriting printed and the best one validated
//! empirically against generated IS data.
//!
//! ```text
//! cargo run --example travel_agency
//! ```

use eve::cvs::{empirical_extent, CvsOptions};
use eve::misd::{evolve, CapabilityChange};
use eve::relational::{FuncRegistry, RelName};
use eve::workload::TravelFixture;
use eve_bench::support::cvs_dr;

fn main() {
    let fixture = TravelFixture::new();
    let mkb = fixture.mkb();
    let view = TravelFixture::customer_passengers_asia_eq5();
    println!("original view (paper Eq. 5):\n{view}\n");

    // IS1 withdraws the Customer relation.
    let customer = RelName::new("Customer");
    let change = CapabilityChange::DeleteRelation(customer.clone());
    let mkb_prime = evolve(mkb, &change).expect("Customer is described");

    // Run CVS: R-mapping, R-replacement, assembly, extent verdicts.
    let rewritings = cvs_dr(&view, &customer, mkb, &mkb_prime, &CvsOptions::default())
        .expect("the paper shows this view is curable");
    println!("CVS found {} legal rewritings:\n", rewritings.len());
    for (i, r) in rewritings.iter().enumerate() {
        println!(
            "--- rewriting {} (V' {} V) ---\n{}\n",
            i + 1,
            r.verdict,
            r.view
        );
    }

    // Validate the first rewriting empirically: generate a consistent IS
    // state (data exists independently of the capability change) and
    // compare extents on the common interface.
    let db = fixture.database(42, 120);
    let funcs = FuncRegistry::new();
    let best = &rewritings[0];
    let observed = empirical_extent(&best.view, &view, &db, &funcs).expect("views evaluate");
    println!(
        "empirical check on a generated state (120 customers): V' {} V",
        observed.symbol()
    );
    assert!(
        observed.is_superset(),
        "the adopted rewriting must not lose tuples on this workload"
    );
}
