//! Quickstart: keep a view alive across a capability change.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Describes two information sources in the MISD textual format, defines
//! an E-SQL view with evolution preferences over them, then lets one IS
//! drop a relation — and shows EVE rewriting the view instead of
//! disabling it.

use eve::misd::parse_misd;
use eve::prelude::*;
use eve::relational::RelName;

fn main() {
    // 1. Describe the information space (the meta knowledge base).
    //    `orders` can be joined with `shipments`; if `orders` ever goes
    //    away, `customer` of an order can be recomputed from
    //    `shipments.recipient` (a function-of constraint).
    let mkb = parse_misd(
        "RELATION StoreIS orders(id int, customer str, total int)
         RELATION LogisticsIS shipments(order_id int, recipient str, city str)
         JOIN J1: orders, shipments ON orders.id = shipments.order_id
         FUNCOF F1: orders.customer = shipments.recipient
         FUNCOF F2: orders.id = shipments.order_id
         PC P1: shipments(order_id, recipient) superset orders(id, customer)",
    )
    .expect("MISD text is well-formed");

    // 2. Define a view in E-SQL. `(false, true)` = indispensable but
    //    replaceable; `VE = superset` allows the evolved extent to grow.
    let view = parse_view(
        "CREATE VIEW BigSpenders (VE = superset) AS
         SELECT O.customer (false, true), O.id (true, true),
                S.order_id (true, true), S.city (true, true)
         FROM orders O (true, true), shipments S (true, true)
         WHERE (O.id = S.order_id) (false, true) AND (O.total > 1000) (CD = true)",
    )
    .expect("E-SQL view parses");

    // 3. Register everything with the synchronizer.
    let mut sync = SynchronizerBuilder::new(mkb)
        .with_view(view)
        .expect("view is well-formed")
        .build();

    // 4. The store IS stops exporting `orders` — the change that kills
    //    classical views.
    let change = CapabilityChange::DeleteRelation(RelName::new("orders"));
    let outcome = sync.apply(&change).expect("MKB evolves");
    println!("{outcome}");

    // 5. The view survived, rewritten over `shipments` alone.
    let evolved = sync.view("BigSpenders").expect("view survived");
    println!("evolved definition:\n{evolved}");
    assert!(!evolved.uses_relation(&RelName::new("orders")));
}
