//! Replaying a schema-evolution log: a web-scale information space where
//! sources join, change and leave over time (the §1 motivation), with a
//! portfolio of views kept in synch throughout.
//!
//! ```text
//! cargo run --example schema_evolution_log
//! ```

use eve::cvs::CvsOptions;
use eve::workload::scenario::travel_scenario;

fn main() {
    let scenario = travel_scenario();
    println!(
        "replaying {} capability changes over {} views\n",
        scenario.changes.len(),
        scenario.views.len()
    );

    let (sync, report) = scenario
        .replay(CvsOptions::default())
        .expect("MKB evolution succeeds");

    for outcome in &report.outcomes {
        println!("{outcome}");
    }

    println!("final active views:");
    for v in sync.views() {
        println!("\n{v}");
    }
    println!(
        "\nviews disabled across the whole log: {} (classical view \
         technology would have disabled every affected view)",
        report.disabled()
    );
}
