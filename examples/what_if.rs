//! Operating an evolvable information space: *what-if* previews,
//! schema-snapshot diffing, evolution history and rollback.
//!
//! ```text
//! cargo run --example what_if
//! ```

use eve::cvs::{CvsOptions, SynchronizerBuilder, ViewOutcome};
use eve::misd::{infer_changes, parse_misd, render_misd, CapabilityChange};
use eve::relational::RelName;
use eve::workload::TravelFixture;

fn main() {
    let fixture = TravelFixture::new();
    let mut sync = SynchronizerBuilder::new(fixture.mkb().clone())
        .with_view(
            eve::esql::parse_view(
                "CREATE VIEW CPA AS
                 SELECT C.Name (false, true), F.PName (true, true), F.Dest (true, true)
                 FROM Customer C (true, true), FlightRes F (true, true)
                 WHERE (C.Name = F.PName) (false, true)",
            )
            .expect("view parses"),
        )
        .expect("view is well-formed")
        .with_options(CvsOptions::default())
        .build();

    // 1. What-if: what would deleting FlightRes do? (No mutation.)
    let preview = sync
        .preview(&CapabilityChange::DeleteRelation(RelName::new("FlightRes")))
        .expect("previews");
    println!("what-if delete-relation FlightRes:\n{preview}");
    assert!(sync.mkb().contains_relation(&RelName::new("FlightRes")));

    // 2. An IS publishes a fresh schema snapshot instead of announcing
    //    changes: diff it, inspect the inferred log, then sync to it.
    let snapshot_text: String = render_misd(fixture.mkb())
        .lines()
        .filter(|l| !l.contains("Customer"))
        .collect::<Vec<_>>()
        .join("\n");
    let snapshot = parse_misd(&snapshot_text).expect("snapshot parses");
    let diff = infer_changes(sync.mkb(), &snapshot);
    println!("inferred change log from the snapshot:");
    for ch in &diff.changes {
        println!("  {ch}");
    }
    let report = sync.sync_to(&snapshot).expect("syncs");
    for outcome in &report.outcomes {
        print!("{outcome}");
    }

    // 3. History: every applied change snapshots the whole state.
    println!("\nhistory ({} snapshots):", sync.history().len());
    for (i, snap) in sync.history().iter().enumerate() {
        match &snap.change {
            None => println!(
                "  {i}: initial state ({} relations)",
                snap.mkb.relation_count()
            ),
            Some(ch) => println!(
                "  {i}: after {ch} ({} relations)",
                snap.mkb.relation_count()
            ),
        }
    }

    // 4. Regret the change? Roll back.
    assert!(sync.rollback_to(0));
    println!(
        "\nrolled back: Customer described again = {}",
        sync.mkb().contains_relation(&RelName::new("Customer"))
    );
    let v = sync.view("CPA").expect("view restored");
    assert!(v.uses_relation(&RelName::new("Customer")));
    let _ = ViewOutcome::Unchanged; // (referenced for doc purposes)
}
