//! Auditing the view-extent property P3: for the Example 4 rewriting
//! (`delete-attribute Customer.Addr`, rerouted through `Person`), show
//! both the *symbolic* certificate derived from the PC constraint and an
//! *empirical* audit over many generated IS states.
//!
//! ```text
//! cargo run --example extent_audit
//! ```

use eve::cvs::{empirical_extent, CvsOptions};
use eve::misd::{evolve, CapabilityChange};
use eve::relational::{AttrRef, FuncRegistry};
use eve::workload::TravelFixture;
use eve_bench::support::sync_da;

fn main() {
    let fixture = TravelFixture::with_person();
    let mkb = fixture.mkb();
    let attr = AttrRef::new("Customer", "Addr");
    let change = CapabilityChange::DeleteAttribute(attr.clone());
    let mkb_prime = evolve(mkb, &change).expect("Customer.Addr exists");

    let view = TravelFixture::asia_customer_eq3();
    println!("original view (paper Eq. 3):\n{view}\n");

    let rewritings = sync_da(&view, &attr, mkb, &mkb_prime, &CvsOptions::default())
        .expect("Example 4 is curable");
    let best = &rewritings[0];
    println!("evolved view (paper Eq. 4):\n{}\n", best.view);
    println!(
        "symbolic verdict from the MKB's PC constraint: V' {} V  (P3 for VE = ⊇: {})",
        best.verdict,
        if best.satisfies_p3 {
            "certified"
        } else {
            "unverified"
        }
    );

    // Audit: the certificate must hold on EVERY state — sample many.
    let funcs = FuncRegistry::new();
    let mut tally = std::collections::BTreeMap::new();
    for seed in 0..25u64 {
        let db = fixture.database(seed, 40 + (seed as usize % 5) * 20);
        let observed = empirical_extent(&best.view, &view, &db, &funcs).expect("views evaluate");
        *tally.entry(observed.symbol()).or_insert(0usize) += 1;
        assert!(
            observed.is_superset(),
            "symbolic ⊇ certificate contradicted on seed {seed}"
        );
    }
    println!("\nempirical audit over 25 generated states (V' <rel> V):");
    for (symbol, count) in tally {
        println!("  {symbol}: {count}");
    }
    println!("\nthe symbolic ⊇ certificate held on every sampled state ✓");
}
