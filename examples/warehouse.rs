//! The full data-warehouse loop over an evolvable information space:
//!
//! 1. **materialise** a view with derivation counts;
//! 2. **maintain** it incrementally as ISs update their *content*
//!    (counting algorithm — no recomputation);
//! 3. survive a *capability* change (`delete-relation Customer`) by
//!    **synchronizing** the definition with CVS;
//! 4. **adapt** the materialization to the evolved definition (falling
//!    back to recomputation only when structurally necessary);
//! 5. observe the view-extent parameter `VE = ⊇` as a concrete
//!    `+N / −0` delta.
//!
//! ```text
//! cargo run --example warehouse
//! ```

use eve::cvs::{
    adapt_materialization, CountedView, Delta, MaterializedView, SynchronizerBuilder, ViewOutcome,
};
use eve::esql::parse_view;
use eve::misd::CapabilityChange;
use eve::relational::{FuncRegistry, RelName, Tuple, Value};
use eve::workload::TravelFixture;

fn main() {
    let fixture = TravelFixture::new();
    let funcs = FuncRegistry::new();
    let mut db = fixture.database(21, 100);

    // 1. Materialise with counts.
    let view = parse_view(
        "CREATE VIEW Asia-Passengers (VE = superset) AS
         SELECT C.Name (false, true), F.PName (true, true), F.Date (true, true)
         FROM Customer C (true, true), FlightRes F (true, true)
         WHERE (C.Name = F.PName) (false, true) AND (F.Dest = 'Asia') (CD = true)",
    )
    .expect("view parses");
    let mut counted = CountedView::new(view.clone(), &db, &funcs).expect("materialises");
    println!("materialised {} tuples (counted)", counted.len());

    // 2. Content update: five new Asia reservations land at IS4 —
    //    maintain incrementally.
    let fr = RelName::new("FlightRes");
    let today = eve::relational::func::DEFAULT_TODAY;
    let new_rows: Vec<Tuple> = (0..5)
        .map(|i| {
            Tuple::new(vec![
                Value::str(format!("cust{i:04}")),
                Value::str("NW"),
                Value::Int(9000 + i),
                Value::str("Detroit"),
                Value::str("Asia"),
                Value::Date(today + 400 + i),
            ])
        })
        .collect();
    let mut fr_rel = db.get(&fr).expect("FlightRes").clone();
    for t in &new_rows {
        fr_rel.insert(t.clone()).expect("arity");
    }
    db.put(fr.clone(), fr_rel);
    let delta = Delta::inserts(new_rows);
    counted
        .apply_delta(&db, &fr, &delta, &funcs)
        .expect("incremental maintenance");
    println!(
        "after 5 new reservations (incremental): {} tuples",
        counted.len()
    );

    // 3. Capability change: IS1 withdraws Customer — synchronize.
    let mut sync = SynchronizerBuilder::new(fixture.mkb().clone())
        .with_view(view.clone())
        .expect("view is well-formed")
        .build();
    let outcome = sync
        .apply(&CapabilityChange::DeleteRelation(RelName::new("Customer")))
        .expect("MKB evolves");
    let ViewOutcome::Rewritten { chosen, .. } = &outcome.views[0].1 else {
        panic!("expected a rewriting");
    };
    println!(
        "\ndefinition evolved (V' {} V):\n{}\n",
        chosen.verdict, chosen.view
    );

    // 4. Adapt the materialization to the evolved definition.
    let old_mv = MaterializedView {
        definition: view.clone(),
        data: counted.extent().expect("extent"),
    };
    let (new_extent, report) =
        adapt_materialization(&old_mv, &chosen.view, &db, &funcs).expect("adapts");
    println!("adaptation: {report}");

    // 5. VE = ⊇, observed: nothing the old extent had is lost (on the
    //    shared interface — here the definition swap reroutes columns,
    //    so compare sizes).
    println!(
        "extent: {} tuples before, {} after (V' ⊇ V)",
        old_mv.data.len(),
        new_extent.len()
    );
    assert!(new_extent.len() >= old_mv.data.len());
}
